//===- support/Options.h - MAO command-line option model --------*- C++ -*-===//
///
/// \file
/// Parsing of MAO's pass-invocation command line (paper Sec. III-A):
///
///   mao --mao=LFIND=trace[0]:ASM=o[/dev/null] in.s
///
/// Everything after an option's "--mao=" prefix is a ':'-separated list of
/// pass specifications. Each specification is PASSNAME or
/// PASSNAME=opt[value],opt[value],... The order of specifications defines
/// the pass invocation order. Options without the --mao= prefix are passed
/// through to the underlying assembler (in this reproduction: collected for
/// the driver to interpret).
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SUPPORT_OPTIONS_H
#define MAO_SUPPORT_OPTIONS_H

#include "support/Status.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mao {

/// Option values attached to one pass invocation, e.g. {"trace": "3"}.
class MaoOptionMap {
public:
  /// Inserts or overwrites option \p Name.
  void set(const std::string &Name, const std::string &Value) {
    Values[Name] = Value;
  }

  bool has(const std::string &Name) const { return Values.count(Name) != 0; }

  /// Returns the option's string value or \p Default when unset.
  std::string getString(const std::string &Name,
                        const std::string &Default = "") const;

  /// Returns the option parsed as a signed integer or \p Default when unset
  /// or unparsable.
  long getInt(const std::string &Name, long Default = 0) const;

  /// Returns the option parsed as a boolean ("", "1", "true", "on" are
  /// true; "0", "false", "off" are false) or \p Default when unset.
  bool getBool(const std::string &Name, bool Default = false) const;

  const std::map<std::string, std::string> &all() const { return Values; }

private:
  std::map<std::string, std::string> Values;
};

/// One requested pass invocation: a pass name plus its options.
struct PassRequest {
  std::string PassName;
  MaoOptionMap Options;
};

/// The fully parsed driver command line. Robustness flags mirror
/// pass/MaoPass.h's PipelineOptions; the policy is kept as a string here so
/// the support library stays independent of the pass layer.
///
/// Every flag is declared exactly once, in buildDriverOptions() — the same
/// declarative table parses the command line, renders `--mao-help`, and
/// produces did-you-mean suggestions for unknown flags.
struct MaoCommandLine {
  /// Pass invocations in command-line order (from --mao=).
  std::vector<PassRequest> Passes;
  /// --mao-passes=a,b(c=1) payloads, in command-line order. The syntax is
  /// the registry-validated pipeline spelling; the driver resolves these
  /// through PassRegistry::parsePipeline (the support layer cannot name
  /// passes) and appends them after the --mao= requests.
  std::vector<std::string> PassSpecs;
  /// Non---mao= options, passed through to the assembler layer.
  std::vector<std::string> Passthrough;
  /// Positional input files.
  std::vector<std::string> Inputs;
  /// --mao-help: print the generated flag reference and exit.
  bool Help = false;
  /// --mao-on-error={abort,rollback,skip}: what a failing pass does to the
  /// rest of the pipeline.
  std::string OnError = "abort";
  /// --mao-verify: run the IR verifier after every pass even under abort.
  bool Verify = false;
  /// --mao-pass-timeout-ms=N: per-pass wall-clock budget (0 = unlimited).
  long PassTimeoutMs = 0;
  /// --mao-jobs=N: worker count for shardable function passes and tuner
  /// candidate evaluation. 0 means "all hardware threads" (resolved by
  /// effectiveJobs()); output is bit-identical for every value, N only
  /// changes wall-clock.
  unsigned Jobs = 1;
  /// --mao-fault-inject=spec[@seed]: arm the fault injector.
  std::string FaultSpec;
  uint64_t FaultSeed = 1;
  /// --mao-relax={grow,optimal}: branch-displacement selection mode.
  /// "grow" is the paper's monotone grow-from-rel8 iteration; "optimal"
  /// additionally audits the converged layout and demotes rel32 branches
  /// whose displacement fits rel8 (see analysis/Relaxer.h).
  std::string RelaxMode = "grow";
  /// --mao-validate={off,structural,semantic}: per-pass validation level.
  /// "structural" runs the IR verifier after every pass; "semantic"
  /// additionally proves each pass preserved observable behaviour
  /// (check/SemanticValidator).
  std::string Validate = "off";
  /// --lint: run the MaoCheck linter instead of the pass pipeline.
  /// Exit codes: 0 clean, 1 findings, 2 internal error.
  bool Lint = false;
  /// --lint-werror: promote linter warnings to errors.
  bool LintWerror = false;
  /// --lint-no-interproc: disable call-graph summaries; every call falls
  /// back to the clobber-everything model and the ABI rules are off.
  bool LintNoInterproc = false;
  /// --lint-baseline=FILE: suppress findings whose fingerprints appear in
  /// FILE (one 16-hex-digit fingerprint at the start of each line).
  std::string LintBaseline;
  /// --lint-baseline-out=FILE: write all current findings' fingerprints to
  /// FILE; using it as --lint-baseline re-lints clean.
  std::string LintBaselineOut;
  /// --mao-sarif=FILE: also write diagnostics as a SARIF 2.1.0 log.
  std::string SarifPath;

  // Autotuning mode (see DESIGN.md "Autotuning" and src/tune).
  /// --tune: search pass parameterizations with the uarch simulator as the
  /// objective instead of running a fixed pipeline.
  bool Tune = false;
  /// --tune-budget=N|small|medium|large: candidate-evaluation budget.
  std::string TuneBudget = "medium";
  /// --tune-report=FILE: write the machine-readable JSON tuning report.
  std::string TuneReport;
  /// --tune-seed=N: search seed; the whole run is a deterministic function
  /// of (input, seed, budget, config) for every --mao-jobs value.
  uint64_t TuneSeed = 1;
  /// --tune-config={core2,opteron}: processor model scoring candidates.
  std::string TuneConfig = "core2";
  /// --tune-entry=NAME: function to emulate/score (default: bench_main,
  /// falling back to the first function in the unit).
  std::string TuneEntry;

  // Rule synthesis (see DESIGN.md "Rule synthesis" and src/synth).
  /// --synth: run the superoptimizer rule-synthesis loop over the input
  /// (plus generated workloads) instead of a pass pipeline, and print the
  /// emitted rule table.
  bool Synth = false;
  /// --synth-out=FILE: write the emitted PeepholeRules.def to FILE.
  std::string SynthOut;
  /// --synth-window=N: longest harvested window, in instructions (1..3).
  unsigned SynthWindow = 2;
  /// --synth-max-rules=N: cap on emitted rules.
  unsigned SynthMaxRules = 16;
  /// --synth-seed=N: recorded in rule provenance.
  uint64_t SynthSeed = 1;
  /// --synth-config={core2,opteron}: processor model scoring candidates.
  std::string SynthConfig = "core2";
  /// --synth-no-workloads: harvest only the input, not generated workloads.
  bool SynthNoWorkloads = false;
  /// --synth-rules=FILE: replace the synth rule group with the rules of
  /// FILE (a .def table, the shape maosynth emits) before optimizing.
  std::string SynthRules;
  /// --synth-verify: re-prove every active synth rule (symbolic oracle +
  /// SemanticValidator) and exit; the CI gate over the committed table.
  bool SynthVerify = false;
  /// --tune-synth-axis: let the tuner toggle the synth rule pass as a
  /// search axis (off by default so tune trajectories stay stable).
  bool TuneSynthAxis = false;
  /// --tune-layout-axis: let the tuner toggle the code-layout passes
  /// (hot/cold splitting, I-cache block reordering) as search axes (off
  /// by default for the same trajectory-stability reason).
  bool TuneLayoutAxis = false;

  // Observability (see DESIGN.md "Observability" and src/support/Stats.h).
  /// --mao-report=FILE: write the machine-readable run report as JSON
  /// ("-" for stdout). Non-timing sections are byte-identical for every
  /// --mao-jobs value.
  std::string ReportPath;
  /// --stats: print the human-readable run statistics table to stderr.
  bool Stats = false;
  /// --mao-trace-out=FILE: write a Chrome trace-event timeline of the run
  /// (one lane per worker thread; load with chrome://tracing or Perfetto).
  std::string TraceOut;
  /// --mao-trace-level=N: global trace verbosity for infrastructure
  /// tracing and for passes without an explicit trace[N] option.
  long TraceLevel = 0;

  // Service mode & persistent cache (see DESIGN.md "Service mode &
  // persistent cache" and src/serve).
  /// --cache-dir=DIR: persistent artifact cache; hits skip the pipeline
  /// and are byte-identical to a recompute.
  std::string CacheDir;
  /// --connect=SOCKET: send the run to a maod daemon at this unix socket,
  /// with bounded retry and transparent local fallback.
  std::string ConnectPath;
  /// --cache-verify: on a cache hit, recompute anyway and fail on any
  /// divergence (acceptance tests and paranoid builds).
  bool CacheVerify = false;
  /// --mao-encode-cache-budget=BYTES: cap the process-wide encode-length
  /// cache (0 = unlimited, the default).
  uint64_t EncodeCacheBudget = 0;
  /// --mao-score-cache-budget=BYTES: cap the tuner's score cache
  /// (0 = unlimited, the default).
  uint64_t ScoreCacheBudget = 0;
  /// --cache-budget=BYTES: cap the on-disk artifact cache, evicting
  /// oldest entries first (0 = unlimited, the default).
  uint64_t CacheBudget = 0;

  /// Worker count with the 0-means-hardware-concurrency rule applied.
  unsigned effectiveJobs() const;
};

/// Parses one --mao= payload ("LFIND=trace[0]:ASM=o[/dev/null]") into pass
/// requests appended to \p Out. Returns an error for malformed syntax.
MaoStatus parseMaoOption(const std::string &Payload,
                         std::vector<PassRequest> &Out);

/// Parses one comma-spelling pipeline payload ("zee,sched(window=8)") into
/// pass requests appended to \p Out. Pure syntax: pass names are not
/// validated here (the support layer does not know them); use
/// PassRegistry::parsePipeline for the validating front end.
MaoStatus parsePassListSyntax(const std::string &Payload,
                              std::vector<PassRequest> &Out);

/// Parses a full argv-style command line (excluding argv[0]).
ErrorOr<MaoCommandLine> parseCommandLine(const std::vector<std::string> &Args);

/// Renders the generated flag reference for the driver surface (the
/// `--mao-help` body): every registered flag with its help text.
std::string driverOptionHelp();

} // namespace mao

#endif // MAO_SUPPORT_OPTIONS_H
