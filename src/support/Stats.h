//===- support/Stats.h - Process-wide metrics registry ---------*- C++ -*-===//
//
// Part of the MAO reproduction project, under GPL v3 like the original MAO.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe metrics registry backing `--mao-report` and `mao --stats`.
///
/// Three instrument kinds are supported:
///   * StatCounter   — monotonically increasing uint64 (events, totals)
///   * StatGauge     — settable int64 (sizes, current values)
///   * StatHistogram — power-of-two bucketed distribution with count/sum/
///                     min/max
///
/// All instruments are updated with relaxed atomics, so concurrent shards
/// and tune workers can bump them without locks; because every published
/// value is a commutative reduction (sum, min, max), the totals are *exact*
/// and independent of thread scheduling. The registry hands out stable
/// references: once created, an instrument lives for the process lifetime,
/// so callers may cache `StatCounter &` across calls.
///
/// Naming convention: dotted lowercase paths ("pipeline.rollbacks",
/// "uarch.cycles"). Names prefixed with "time." hold wall-clock
/// micro-second accumulations; the run report segregates those into its
/// "timings" section so that every other section is byte-identical across
/// `--mao-jobs` values (the determinism contract of PR 2 extended to
/// observability).
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SUPPORT_STATS_H
#define MAO_SUPPORT_STATS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mao {

/// Monotonic event counter. add() is wait-free; value() is a racy-but-exact
/// snapshot (all updates are relaxed fetch_adds, so the final sum equals the
/// number of events regardless of interleaving).
class StatCounter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Last-writer-wins signed gauge for sizes and levels.
class StatGauge {
public:
  void set(int64_t N) { Value.store(N, std::memory_order_relaxed); }
  void add(int64_t N) { Value.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// Lock-free histogram over power-of-two buckets: bucket B counts samples
/// whose bit width is B, i.e. samples in [2^(B-1), 2^B). Count, sum, min
/// and max are tracked exactly (min/max via CAS loops).
class StatHistogram {
public:
  static constexpr unsigned NumBuckets = 33; // bit widths 0..32, 33 = huge

  struct Summary {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = 0; ///< 0 when Count == 0.
    uint64_t Max = 0;
    std::array<uint64_t, NumBuckets> Buckets{};
  };

  void record(uint64_t Sample);
  Summary summary() const;
  void reset();

private:
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
};

/// Point-in-time view of every registered instrument, sorted by name so two
/// snapshots of identical state render identically (the report-determinism
/// contract).
struct StatsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, int64_t>> Gauges;
  std::vector<std::pair<std::string, StatHistogram::Summary>> Histograms;
};

/// Find-or-create instrument registry. Creation takes a mutex; updates on
/// the returned references never do.
class StatsRegistry {
public:
  static StatsRegistry &instance();

  StatCounter &counter(std::string_view Name);
  StatGauge &gauge(std::string_view Name);
  StatHistogram &histogram(std::string_view Name);

  /// Sorted, deterministic snapshot of all instruments.
  StatsSnapshot snapshot() const;

  /// Zeroes every instrument (registrations survive; cached references
  /// stay valid). Used by tests and api::Session::resetGlobalStats to
  /// compare runs in one process.
  void reset();

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<StatCounter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<StatGauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<StatHistogram>, std::less<>>
      Histograms;
};

/// Renders a fixed-width human table of a snapshot (the body of
/// `mao --stats`).
std::string renderStatsTable(const StatsSnapshot &Snap);

} // namespace mao

#endif // MAO_SUPPORT_STATS_H
