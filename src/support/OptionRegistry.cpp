//===- support/OptionRegistry.cpp - Declarative flag registry ----------------==//

#include "support/OptionRegistry.h"

#include <algorithm>
#include <cstdlib>

using namespace mao;

unsigned mao::editDistance(const std::string &A, const std::string &B) {
  const size_t N = A.size(), M = B.size();
  std::vector<unsigned> Row(M + 1);
  for (size_t J = 0; J <= M; ++J)
    Row[J] = static_cast<unsigned>(J);
  for (size_t I = 1; I <= N; ++I) {
    unsigned Diag = Row[0];
    Row[0] = static_cast<unsigned>(I);
    for (size_t J = 1; J <= M; ++J) {
      unsigned Prev = Row[J];
      const unsigned Subst = Diag + (A[I - 1] == B[J - 1] ? 0 : 1);
      Row[J] = std::min({Row[J] + 1, Row[J - 1] + 1, Subst});
      Diag = Prev;
    }
  }
  return Row[M];
}

std::string mao::suggestNearest(const std::string &Name,
                                const std::vector<std::string> &Candidates) {
  std::string Best;
  unsigned BestDist = ~0u;
  for (const std::string &C : Candidates) {
    unsigned D = editDistance(Name, C);
    if (D < BestDist || (D == BestDist && C < Best)) {
      BestDist = D;
      Best = C;
    }
  }
  const unsigned Budget =
      std::max<unsigned>(2, static_cast<unsigned>(Name.size()) / 3);
  return BestDist <= Budget ? Best : std::string();
}

void OptionRegistry::addFlag(const std::string &Name, bool *Target,
                             const std::string &Help) {
  Definition Def;
  Def.Name = Name;
  Def.ValueKind = Kind::Flag;
  Def.Help = Help;
  Def.Apply = [Target](const std::string &) {
    *Target = true;
    return MaoStatus::success();
  };
  Definitions.push_back(std::move(Def));
}

void OptionRegistry::addString(const std::string &Name, std::string *Target,
                               const std::string &Help) {
  Definition Def;
  Def.Name = Name;
  Def.ValueKind = Kind::String;
  Def.Help = Help;
  Def.Apply = [Target](const std::string &Value) {
    *Target = Value;
    return MaoStatus::success();
  };
  Definitions.push_back(std::move(Def));
}

namespace {

ErrorOr<long> parseLong(const std::string &Name, const std::string &Value,
                        long Min) {
  char *End = nullptr;
  long Parsed = std::strtol(Value.c_str(), &End, 10);
  if (End == Value.c_str() || *End != '\0')
    return MaoStatus::error(Name + " expects an integer; got '" + Value + "'");
  if (Parsed < Min)
    return MaoStatus::error(Name + " expects a value >= " +
                            std::to_string(Min) + "; got '" + Value + "'");
  return Parsed;
}

} // namespace

void OptionRegistry::addInt(const std::string &Name, long *Target, long Min,
                            const std::string &Help) {
  Definition Def;
  Def.Name = Name;
  Def.ValueKind = Kind::Int;
  Def.Help = Help;
  Def.Apply = [Name, Target, Min](const std::string &Value) {
    ErrorOr<long> Parsed = parseLong(Name, Value, Min);
    if (!Parsed.ok())
      return MaoStatus::error(Parsed.message());
    *Target = *Parsed;
    return MaoStatus::success();
  };
  Definitions.push_back(std::move(Def));
}

void OptionRegistry::addUint(const std::string &Name, unsigned *Target,
                             unsigned Min, const std::string &Help) {
  Definition Def;
  Def.Name = Name;
  Def.ValueKind = Kind::Uint;
  Def.Help = Help;
  Def.Apply = [Name, Target, Min](const std::string &Value) {
    ErrorOr<long> Parsed = parseLong(Name, Value, static_cast<long>(Min));
    if (!Parsed.ok())
      return MaoStatus::error(Parsed.message());
    *Target = static_cast<unsigned>(*Parsed);
    return MaoStatus::success();
  };
  Definitions.push_back(std::move(Def));
}

void OptionRegistry::addEnum(const std::string &Name, std::string *Target,
                             std::vector<std::string> Allowed,
                             const std::string &Help) {
  Definition Def;
  Def.Name = Name;
  Def.ValueKind = Kind::Enum;
  Def.Help = Help;
  Def.Allowed = Allowed;
  Def.Apply = [Name, Target, Allowed](const std::string &Value) {
    if (std::find(Allowed.begin(), Allowed.end(), Value) == Allowed.end()) {
      std::string List;
      for (const std::string &A : Allowed)
        List += (List.empty() ? "" : ", ") + A;
      return MaoStatus::error(Name + " expects one of " + List + "; got '" +
                              Value + "'");
    }
    *Target = Value;
    return MaoStatus::success();
  };
  Definitions.push_back(std::move(Def));
}

void OptionRegistry::addCustom(
    const std::string &Name,
    std::function<MaoStatus(const std::string &)> Apply,
    const std::string &Help, bool ValueRequired) {
  Definition Def;
  Def.Name = Name;
  Def.ValueKind = Kind::Custom;
  Def.Help = Help;
  Def.Apply = std::move(Apply);
  Def.ValueRequired = ValueRequired;
  Definitions.push_back(std::move(Def));
}

std::string OptionRegistry::valueStub(const Definition &Def) {
  switch (Def.ValueKind) {
  case Kind::Flag:
    return Def.Name;
  case Kind::Int:
  case Kind::Uint:
    return Def.Name + "=N";
  case Kind::Enum: {
    std::string Values;
    for (const std::string &A : Def.Allowed)
      Values += (Values.empty() ? "" : ",") + A;
    return Def.Name + "={" + Values + "}";
  }
  case Kind::String:
  case Kind::Custom:
    return Def.Name + (Def.ValueRequired ? "=..." : "[=...]");
  }
  return Def.Name;
}

MaoStatus OptionRegistry::parse(const std::vector<std::string> &Args) const {
  for (const std::string &Arg : Args) {
    // Exact bare-name match first (flags, and customs that allow it).
    const Definition *Match = nullptr;
    std::string Value;
    for (const Definition &Def : Definitions) {
      if (Arg == Def.Name &&
          (Def.ValueKind == Kind::Flag ||
           (Def.ValueKind == Kind::Custom && !Def.ValueRequired))) {
        Match = &Def;
        break;
      }
      if (Def.ValueKind != Kind::Flag &&
          Arg.size() > Def.Name.size() + 1 &&
          Arg.compare(0, Def.Name.size(), Def.Name) == 0 &&
          Arg[Def.Name.size()] == '=') {
        Match = &Def;
        Value = Arg.substr(Def.Name.size() + 1);
        break;
      }
    }
    if (Match) {
      if (MaoStatus S = Match->Apply(Value))
        return S;
      continue;
    }

    if (!Arg.empty() && Arg[0] == '-') {
      // A registered name used with the wrong shape gets a precise error
      // before the typo machinery (e.g. `--lint=1` or a bare `--mao-jobs`).
      const std::string Stem = Arg.substr(0, Arg.find('='));
      for (const Definition &Def : Definitions) {
        if (Stem != Def.Name)
          continue;
        if (Def.ValueKind == Kind::Flag)
          return MaoStatus::error(Def.Name + " does not take a value");
        return MaoStatus::error(Def.Name + " requires a value: " +
                                valueStub(Def));
      }
      // Unknown double-dash arguments are almost always typos of our own
      // surface; suggest the nearest flag. Single-dash unknowns follow the
      // passthrough rule (they are assembler options in the mao driver).
      if (Arg.size() >= 2 && Arg[0] == '-' && Arg[1] == '-') {
        std::string Suggestion = suggestNearest(Stem, names());
        if (!Suggestion.empty())
          return MaoStatus::error("unknown option '" + Arg +
                                  "'; did you mean '" + Suggestion + "'?");
      }
      if (PassthroughOut) {
        PassthroughOut->push_back(Arg);
        continue;
      }
      return MaoStatus::error("unknown option '" + Arg + "'");
    }

    if (PositionalOut) {
      PositionalOut->push_back(Arg);
      continue;
    }
    return MaoStatus::error("unexpected positional argument '" + Arg + "'");
  }
  return MaoStatus::success();
}

std::string OptionRegistry::help() const {
  std::vector<const Definition *> Sorted;
  Sorted.reserve(Definitions.size());
  for (const Definition &Def : Definitions)
    Sorted.push_back(&Def);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Definition *A, const Definition *B) {
              return A->Name < B->Name;
            });
  std::string Out;
  for (const Definition *Def : Sorted) {
    std::string Stub = "  " + valueStub(*Def);
    if (Stub.size() < 34)
      Stub.resize(34, ' ');
    else
      Stub += "\n" + std::string(34, ' ');
    Out += Stub + Def->Help + "\n";
  }
  return Out;
}

std::vector<std::string> OptionRegistry::names() const {
  std::vector<std::string> Out;
  Out.reserve(Definitions.size());
  for (const Definition &Def : Definitions)
    Out.push_back(Def.Name);
  std::sort(Out.begin(), Out.end());
  return Out;
}
