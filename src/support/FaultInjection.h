//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
///
/// \file
/// A deterministic, seedable fault-injection facility used to exercise the
/// robustness layer: injection points in the parser, the binary encoder,
/// and the pass runner consult a process-wide FaultInjector and fail
/// artificially with a configured per-mille probability.
///
/// Determinism contract: each site owns an independent SplitMix64 stream
/// seeded from (seed ^ site), and draws from it once per shouldFail() call.
/// Because streams are per-site, the k-th decision at a site depends only on
/// the seed and k — not on how other sites interleave — so a run with the
/// same seed and same inputs reproduces the same failures exactly (the
/// property PipelineTest and maofuzz assert).
///
/// Configuration comes from an explicit configure() call (maofuzz, tests,
/// the --mao-fault-inject driver flag) or from the MAO_FAULT_INJECT
/// environment variable; the facility is disabled by default and costs one
/// predicted branch per injection point when disabled.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SUPPORT_FAULTINJECTION_H
#define MAO_SUPPORT_FAULTINJECTION_H

#include "support/Random.h"
#include "support/Status.h"

#include <array>
#include <mutex>
#include <string>

namespace mao {

/// Instrumented components. Keep in sync with faultSiteName(). The first
/// three are the PR 1 compute-path sites; the filesystem/protocol domain
/// (fswrite, fsrename, cacheread, frame) exercises the persistent artifact
/// cache and the maod framing layer:
///   * FsWrite   — a crash-safe cache write is cut short (short write),
///                 modelling a writer killed or a disk filling mid-write.
///   * FsRename  — the atomic publish rename fails, modelling a crash in
///                 the instant between temp write and rename.
///   * CacheRead — a read-back cache entry has one bit flipped, modelling
///                 on-disk corruption; the checksum trailer must catch it.
///   * Frame     — a protocol frame arrives truncated, modelling a peer
///                 that died mid-send or a cut connection.
enum class FaultSite : uint8_t {
  Parser = 0,
  Encoder = 1,
  PassRunner = 2,
  FsWrite = 3,
  FsRename = 4,
  CacheRead = 5,
  Frame = 6,
};
constexpr unsigned NumFaultSites = 7;

const char *faultSiteName(FaultSite Site);

/// Process-wide injector. Sites draw deterministic pseudo-random decisions.
class FaultInjector {
public:
  static FaultInjector &instance();

  /// Configures from a spec string: comma-separated "site:permille" pairs,
  /// e.g. "parser:10,encoder:5,pass:100" (pass = pass runner). Unlisted
  /// sites stay disabled. An empty spec disables everything.
  MaoStatus configure(const std::string &Spec, uint64_t Seed);

  /// Reads MAO_FAULT_INJECT ("spec@seed", e.g. "pass:100@42"; seed
  /// defaults to 1). Silently leaves the injector disabled when unset.
  void configureFromEnv();

  /// Disables all sites and clears counters.
  void reset();

  bool anySiteEnabled() const { return Armed; }
  bool siteEnabled(FaultSite Site) const {
    return Sites[static_cast<unsigned>(Site)].Enabled;
  }

  /// Draws the next decision for \p Site. Always false when disabled
  /// (without consuming randomness).
  bool shouldFail(FaultSite Site);

  /// RAII suspension: while at least one ScopedSuspend is alive,
  /// shouldFail() returns false without drawing. The transactional pass
  /// runner uses this during rollback replay — the replayed passes already
  /// succeeded once under injection, and re-injecting into the recovery
  /// path would make rollback itself fallible.
  class ScopedSuspend {
  public:
    ScopedSuspend() { ++instance().SuspendDepth; }
    ~ScopedSuspend() { --instance().SuspendDepth; }
    ScopedSuspend(const ScopedSuspend &) = delete;
    ScopedSuspend &operator=(const ScopedSuspend &) = delete;
  };

  bool suspended() const { return SuspendDepth > 0; }

  unsigned drawCount(FaultSite Site) const {
    return Sites[static_cast<unsigned>(Site)].Draws;
  }
  unsigned injectedCount(FaultSite Site) const {
    return Sites[static_cast<unsigned>(Site)].Failures;
  }
  unsigned totalInjected() const;

private:
  struct SiteState {
    bool Enabled = false;
    uint64_t Permille = 0;
    RandomSource Rng{0};
    unsigned Draws = 0;
    unsigned Failures = 0;
  };

  bool Armed = false;
  unsigned SuspendDepth = 0;
  std::array<SiteState, NumFaultSites> Sites;
  /// Guards the per-site RNG/counter state in shouldFail(): sites may be
  /// consulted from pool workers when the sharded pipeline runs with
  /// several jobs. The disabled fast path stays lock-free. (Note: draw
  /// *order* at a site is only deterministic when that site is consulted
  /// from one thread — which holds today: all draws happen on the
  /// orchestrating thread, shards never draw.)
  std::mutex DrawM;
};

} // namespace mao

#endif // MAO_SUPPORT_FAULTINJECTION_H
