//===- support/Stats.cpp - Process-wide metrics registry ------------------===//

#include "support/Stats.h"

#include <bit>
#include <cstdio>

using namespace mao;

void StatHistogram::record(uint64_t Sample) {
  unsigned Bucket = std::bit_width(Sample);
  if (Bucket >= NumBuckets)
    Bucket = NumBuckets - 1;
  Buckets[Bucket].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Sample, std::memory_order_relaxed);
  uint64_t Cur = Min.load(std::memory_order_relaxed);
  while (Sample < Cur &&
         !Min.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
  Cur = Max.load(std::memory_order_relaxed);
  while (Sample > Cur &&
         !Max.compare_exchange_weak(Cur, Sample, std::memory_order_relaxed))
    ;
}

StatHistogram::Summary StatHistogram::summary() const {
  Summary S;
  S.Count = Count.load(std::memory_order_relaxed);
  S.Sum = Sum.load(std::memory_order_relaxed);
  S.Min = S.Count ? Min.load(std::memory_order_relaxed) : 0;
  S.Max = Max.load(std::memory_order_relaxed);
  for (unsigned I = 0; I < NumBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  return S;
}

void StatHistogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Min.store(UINT64_MAX, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
}

StatsRegistry &StatsRegistry::instance() {
  static StatsRegistry R;
  return R;
}

StatCounter &StatsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<StatCounter>())
             .first;
  return *It->second;
}

StatGauge &StatsRegistry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(std::string(Name), std::make_unique<StatGauge>())
             .first;
  return *It->second;
}

StatHistogram &StatsRegistry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms
             .emplace(std::string(Name), std::make_unique<StatHistogram>())
             .first;
  return *It->second;
}

StatsSnapshot StatsRegistry::snapshot() const {
  StatsSnapshot Snap;
  std::lock_guard<std::mutex> Lock(M);
  Snap.Counters.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    Snap.Counters.emplace_back(Name, C->value());
  Snap.Gauges.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    Snap.Gauges.emplace_back(Name, G->value());
  Snap.Histograms.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms)
    Snap.Histograms.emplace_back(Name, H->summary());
  return Snap;
}

void StatsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

std::string mao::renderStatsTable(const StatsSnapshot &Snap) {
  std::string Out;
  char Buf[256];
  size_t Width = 8;
  for (const auto &[Name, V] : Snap.Counters)
    Width = std::max(Width, Name.size());
  for (const auto &[Name, V] : Snap.Gauges)
    Width = std::max(Width, Name.size());
  if (!Snap.Counters.empty()) {
    Out += "  counters:\n";
    for (const auto &[Name, V] : Snap.Counters) {
      std::snprintf(Buf, sizeof(Buf), "    %-*s %12llu\n", (int)Width,
                    Name.c_str(), (unsigned long long)V);
      Out += Buf;
    }
  }
  if (!Snap.Gauges.empty()) {
    Out += "  gauges:\n";
    for (const auto &[Name, V] : Snap.Gauges) {
      std::snprintf(Buf, sizeof(Buf), "    %-*s %12lld\n", (int)Width,
                    Name.c_str(), (long long)V);
      Out += Buf;
    }
  }
  if (!Snap.Histograms.empty()) {
    Out += "  histograms:\n";
    for (const auto &[Name, H] : Snap.Histograms) {
      std::snprintf(Buf, sizeof(Buf),
                    "    %-*s count=%llu sum=%llu min=%llu max=%llu\n",
                    (int)Width, Name.c_str(), (unsigned long long)H.Count,
                    (unsigned long long)H.Sum, (unsigned long long)H.Min,
                    (unsigned long long)H.Max);
      Out += Buf;
    }
  }
  return Out;
}
