//===- support/Timeline.cpp - Chrome trace-event timeline -----------------===//

#include "support/Timeline.h"

#include <algorithm>
#include <cstdio>

using namespace mao;

namespace {
std::atomic<Timeline *> ActiveTimeline{nullptr};

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}
} // namespace

Timeline *Timeline::active() {
  return ActiveTimeline.load(std::memory_order_acquire);
}

void Timeline::setActive(Timeline *T) {
  ActiveTimeline.store(T, std::memory_order_release);
}

uint64_t Timeline::nowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Start)
      .count();
}

void Timeline::record(const char *Category, std::string Name,
                      uint64_t BeginUs, uint64_t EndUs) {
  std::lock_guard<std::mutex> Lock(M);
  unsigned Lane;
  auto It = Lanes.find(std::this_thread::get_id());
  if (It != Lanes.end()) {
    Lane = It->second;
  } else {
    Lane = static_cast<unsigned>(Lanes.size());
    Lanes.emplace(std::this_thread::get_id(), Lane);
  }
  Events.push_back(Event{std::move(Name), Category, BeginUs,
                         EndUs >= BeginUs ? EndUs - BeginUs : 0, Lane});
}

size_t Timeline::eventCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

std::string Timeline::renderJson() const {
  std::vector<Event> Sorted;
  size_t NumLanes;
  {
    std::lock_guard<std::mutex> Lock(M);
    Sorted = Events;
    NumLanes = Lanes.size();
  }
  std::stable_sort(Sorted.begin(), Sorted.end(),
                   [](const Event &A, const Event &B) {
                     if (A.BeginUs != B.BeginUs)
                       return A.BeginUs < B.BeginUs;
                     return A.Lane < B.Lane;
                   });
  std::string Out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  Out += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
         "\"args\":{\"name\":\"mao\"}}";
  char Buf[128];
  for (size_t Lane = 0; Lane < NumLanes; ++Lane) {
    char LaneName[32];
    if (Lane == 0)
      std::snprintf(LaneName, sizeof(LaneName), "main");
    else
      std::snprintf(LaneName, sizeof(LaneName), "worker-%zu", Lane);
    std::snprintf(Buf, sizeof(Buf),
                  ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%zu,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                  Lane, LaneName);
    Out += Buf;
  }
  for (const Event &E : Sorted) {
    Out += ",\n{\"name\":\"";
    appendEscaped(Out, E.Name);
    std::snprintf(Buf, sizeof(Buf),
                  "\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%llu,"
                  "\"dur\":%llu,\"pid\":1,\"tid\":%u}",
                  E.Category, (unsigned long long)E.BeginUs,
                  (unsigned long long)E.DurationUs, E.Lane);
    Out += Buf;
  }
  Out += "\n]}\n";
  return Out;
}

bool Timeline::writeTo(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  const std::string Json = renderJson();
  const bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  return std::fclose(F) == 0 && Ok;
}
