//===- support/Random.h - Deterministic random source ----------*- C++ -*-===//
///
/// \file
/// SplitMix64-based random source. Experiments such as the Nopinizer (paper
/// Sec. III-E) must be repeatable given a seed, so all randomized components
/// share this small deterministic generator instead of std::mt19937's
/// platform-dependent distributions.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SUPPORT_RANDOM_H
#define MAO_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace mao {

/// Deterministic, seedable 64-bit generator (SplitMix64).
class RandomSource {
public:
  explicit RandomSource(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a positive bound");
    // Multiplicative range reduction; bias is negligible for our bounds.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Numer/Denom.
  bool nextChance(uint64_t Numer, uint64_t Denom) {
    assert(Denom != 0 && "zero denominator");
    return nextBelow(Denom) < Numer;
  }

private:
  uint64_t State;
};

} // namespace mao

#endif // MAO_SUPPORT_RANDOM_H
