//===- support/Arena.h - Bump allocation for IR and strings -----*- C++ -*-===//
///
/// \file
/// Chunked bump allocation for the IR hot path.
///
/// An Arena hands out raw storage from geometrically growing chunks and
/// frees everything at once when destroyed. Same-size blocks released back
/// to the arena are kept on per-size free lists so container churn (the
/// std::list node per MaoEntry) recycles storage instead of growing the
/// arena without bound during structural edits.
///
/// ArenaAllocator<T> adapts an Arena to the std allocator interface so
/// standard containers (MaoUnit's EntryList) can live in it. Allocators
/// compare equal iff they share the arena; move assignment propagates the
/// allocator so moving a MaoUnit moves the arena pointer, never the nodes.
///
/// StringInterner deduplicates strings (labels, symbol names) into
/// arena-backed storage and returns std::string_view handles that stay
/// valid for the arena's lifetime. Interning is idempotent: interning the
/// same characters twice returns a view of the same bytes, which makes the
/// views usable as cheap map keys with no per-lookup allocation.
///
/// Lifetime rules (see DESIGN.md, "Throughput core"):
///  - everything allocated from an Arena dies with the Arena;
///  - MaoUnit shares its Arena via shared_ptr so moved-from units and
///    cloned units each keep a consistent (arena, container) pair;
///  - interned views must not outlive the owning unit.
///
/// Thread safety: Arena::allocate/deallocate are NOT synchronized — the IR
/// serializes structural edits on MaoUnit::StructuralM already, and the
/// arena piggybacks on that lock. StringInterner::intern takes its own
/// mutex because reads (parsing, relaxation) happen outside structural
/// edits.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SUPPORT_ARENA_H
#define MAO_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace mao {

/// Chunked bump allocator with same-size free-list reuse.
class Arena {
public:
  explicit Arena(size_t FirstChunkBytes = 16 * 1024)
      : NextChunkBytes(FirstChunkBytes < MinChunkBytes ? MinChunkBytes
                                                       : FirstChunkBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  ~Arena() {
    for (char *Chunk : Chunks)
      ::operator delete(Chunk);
  }

  /// Returns \p Bytes of storage aligned to \p Align. Never returns null;
  /// throws std::bad_alloc on exhaustion like operator new.
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t)) {
    if (Bytes == 0)
      Bytes = 1;
    const size_t Rounded = roundUp(Bytes, Align);
    // Free-list hit: blocks are binned by (rounded size); alignment is
    // preserved because a recycled block was originally carved at >= Align
    // for its size class (we only bin blocks released via deallocate with
    // the same size they were allocated at). Bins only exist once
    // something has been deallocated, so allocation-only phases (parsing)
    // pay a single predicted branch here, not a hash lookup.
    if (!FreeBins.empty()) {
      for (FreeBin &Bin : FreeBins) {
        if (Bin.Size != Rounded || !Bin.Head)
          continue;
        void *Block = Bin.Head;
        std::memcpy(&Bin.Head, Block, sizeof(void *));
        return Block;
      }
    }
    uintptr_t Cur = reinterpret_cast<uintptr_t>(Ptr);
    uintptr_t Aligned = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
    if (Aligned + Rounded > reinterpret_cast<uintptr_t>(End)) {
      grow(Rounded + Align);
      Cur = reinterpret_cast<uintptr_t>(Ptr);
      Aligned = (Cur + Align - 1) & ~(uintptr_t(Align) - 1);
    }
    Ptr = reinterpret_cast<char *>(Aligned + Rounded);
    BytesLive += Rounded;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Returns a block to the same-size free list for reuse. \p Bytes and
  /// \p Align must match the allocate() call that produced \p Block. The
  /// free lists are intrusive — the link pointer lives in the freed block
  /// itself (roundUp guarantees every block holds at least one pointer) —
  /// so releasing a block never allocates and never hashes.
  void deallocate(void *Block, size_t Bytes,
                  size_t Align = alignof(std::max_align_t)) {
    if (!Block)
      return;
    if (Bytes == 0)
      Bytes = 1;
    const size_t Rounded = roundUp(Bytes, Align);
    for (FreeBin &Bin : FreeBins) {
      if (Bin.Size != Rounded)
        continue;
      std::memcpy(Block, &Bin.Head, sizeof(void *));
      Bin.Head = Block;
      return;
    }
    FreeBins.push_back({Rounded, nullptr});
    std::memcpy(Block, &FreeBins.back().Head, sizeof(void *));
    FreeBins.back().Head = Block;
  }

  /// Typed convenience: uninitialized storage for \p N objects of T.
  template <typename T> T *allocateArray(size_t N) {
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Total bytes handed out (net of free-list recycling it is an upper
  /// bound on live bytes); for stats/bench reporting.
  size_t bytesAllocated() const { return BytesLive; }

  /// Number of backing chunks — growth diagnostics.
  size_t chunkCount() const { return Chunks.size(); }

private:
  static constexpr size_t MinChunkBytes = 4 * 1024;
  static constexpr size_t MaxChunkBytes = 2 * 1024 * 1024;

  static size_t roundUp(size_t Bytes, size_t Align) {
    const size_t A = Align < sizeof(void *) ? sizeof(void *) : Align;
    return (Bytes + A - 1) & ~(A - 1);
  }

  void grow(size_t AtLeast) {
    size_t Size = NextChunkBytes;
    while (Size < AtLeast)
      Size *= 2;
    char *Chunk = static_cast<char *>(::operator new(Size));
    Chunks.push_back(Chunk);
    Ptr = Chunk;
    End = Chunk + Size;
    if (NextChunkBytes < MaxChunkBytes)
      NextChunkBytes *= 2;
  }

  /// One intrusive free list of same-size blocks; Head links through the
  /// first pointer-sized bytes of each freed block.
  struct FreeBin {
    size_t Size;
    void *Head;
  };

  std::vector<char *> Chunks;
  char *Ptr = nullptr;
  char *End = nullptr;
  size_t NextChunkBytes;
  size_t BytesLive = 0;
  /// Same-size free lists, linearly scanned: an IR arena sees a handful of
  /// distinct block sizes (list nodes, the occasional string), so a flat
  /// vector beats a hash map on both hit and miss.
  std::vector<FreeBin> FreeBins;
};

/// std-compatible allocator over an Arena. Containers using it must not
/// outlive the arena. Equality is identity of the arena, and the allocator
/// propagates on move assignment so container moves stay O(1) (the arena
/// pointer travels with the nodes).
template <typename T> class ArenaAllocator {
public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() = delete; // An arena is required; no default heap mode.
  explicit ArenaAllocator(Arena *A) : A(A) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U> &Other) : A(Other.arena()) {}

  T *allocate(size_t N) {
    return static_cast<T *>(A->allocate(N * sizeof(T), alignof(T)));
  }
  void deallocate(T *P, size_t N) { A->deallocate(P, N * sizeof(T), alignof(T)); }

  Arena *arena() const { return A; }

  template <typename U> bool operator==(const ArenaAllocator<U> &O) const {
    return A == O.arena();
  }
  template <typename U> bool operator!=(const ArenaAllocator<U> &O) const {
    return A != O.arena();
  }

private:
  Arena *A;
};

/// Deduplicating string pool over an Arena. intern() copies unseen strings
/// into arena storage and returns a view into that storage; interning equal
/// characters again returns a view of the same bytes. Views stay valid for
/// the arena's lifetime. Thread-safe (internal mutex) because parse and
/// relaxation intern concurrently under --mao-jobs.
class StringInterner {
public:
  explicit StringInterner(Arena *A) : A(A) {}

  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Returns the canonical arena-backed view for \p S.
  std::string_view intern(std::string_view S) {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Pool.find(S);
    if (It != Pool.end())
      return *It;
    char *Storage = A->allocateArray<char>(S.size());
    if (!S.empty())
      std::memcpy(Storage, S.data(), S.size());
    std::string_view Interned(Storage, S.size());
    Pool.insert(Interned);
    return Interned;
  }

  /// Number of distinct strings interned.
  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Pool.size();
  }

private:
  Arena *A;
  mutable std::mutex M;
  std::unordered_set<std::string_view> Pool;
};

} // namespace mao

#endif // MAO_SUPPORT_ARENA_H
