//===- support/Timeline.h - Chrome trace-event timeline --------*- C++ -*-===//
//
// Part of the MAO reproduction project, under GPL v3 like the original MAO.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight collector for Chrome trace-event JSON ("catapult" format,
/// loadable in chrome://tracing and Perfetto). Code brackets work in
/// TimelineSpan RAII scopes; each completed span becomes one `ph:"X"`
/// (complete) event on the lane of the thread that ran it, so parallel
/// shards and tune candidates render as one lane per worker thread.
///
/// Collection is opt-in: spans are no-ops unless a Timeline has been
/// installed with Timeline::setActive (done by the api::Session when
/// `--mao-trace-out=FILE` is given). Recording takes one short mutex hold
/// per span — timelines are a diagnostic tool, not a hot path.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SUPPORT_TIMELINE_H
#define MAO_SUPPORT_TIMELINE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mao {

class Timeline {
public:
  struct Event {
    std::string Name;
    const char *Category; ///< Static string: "pass", "shard", "tune", "sim".
    uint64_t BeginUs;
    uint64_t DurationUs;
    unsigned Lane;
  };

  Timeline() : Start(std::chrono::steady_clock::now()) {}

  /// The process-wide collector, or nullptr when tracing is off.
  static Timeline *active();
  /// Installs \p T as the process-wide collector (nullptr to disable).
  static void setActive(Timeline *T);

  /// Microseconds since this timeline was constructed.
  uint64_t nowUs() const;

  /// Records one complete event on the calling thread's lane. Lanes are
  /// numbered in first-recording order: lane 0 is the orchestrator.
  void record(const char *Category, std::string Name, uint64_t BeginUs,
              uint64_t EndUs);

  size_t eventCount() const;

  /// Renders the whole timeline as a trace-event JSON document with
  /// thread_name metadata per lane.
  std::string renderJson() const;

  /// Writes renderJson() to \p Path; returns false on I/O failure.
  bool writeTo(const std::string &Path) const;

private:
  std::chrono::steady_clock::time_point Start;
  mutable std::mutex M;
  std::vector<Event> Events;
  std::map<std::thread::id, unsigned> Lanes;
};

/// Brackets a region of work: records a complete event on destruction.
/// Cheap no-op when no timeline is active.
class TimelineSpan {
public:
  TimelineSpan(const char *Category, std::string Name)
      : T(Timeline::active()), Category(Category) {
    if (T) {
      this->Name = std::move(Name);
      Begin = T->nowUs();
    }
  }
  ~TimelineSpan() {
    if (T)
      T->record(Category, std::move(Name), Begin, T->nowUs());
  }
  TimelineSpan(const TimelineSpan &) = delete;
  TimelineSpan &operator=(const TimelineSpan &) = delete;

private:
  Timeline *T;
  const char *Category;
  std::string Name;
  uint64_t Begin = 0;
};

} // namespace mao

#endif // MAO_SUPPORT_TIMELINE_H
