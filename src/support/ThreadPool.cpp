//===- support/ThreadPool.cpp - Fixed-size worker pool -----------------------==//

#include "support/ThreadPool.h"

using namespace mao;

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers < 1)
    Workers = 1;
  Threads.reserve(Workers - 1);
  for (unsigned I = 1; I < Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  WorkCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

unsigned ThreadPool::defaultWorkerCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N > 0 ? N : 1;
}

void ThreadPool::runIndices() {
  // Claim indices until the range drains. An exception poisons only the
  // claimed index; the rest of the range still runs (shard failures are
  // handled per index by the caller, so one bad index must not starve the
  // others of execution).
  for (size_t I = NextIndex.fetch_add(1); I < JobSize;
       I = NextIndex.fetch_add(1)) {
    try {
      (*Job)(I);
    } catch (...) {
      std::lock_guard<std::mutex> Lock(M);
      if (!FirstError)
        FirstError = std::current_exception();
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkCV.wait(Lock, [&] {
        return Stopping || Generation != SeenGeneration;
      });
      if (Stopping)
        return;
      SeenGeneration = Generation;
    }
    runIndices();
    {
      std::lock_guard<std::mutex> Lock(M);
      if (--Running == 0)
        DoneCV.notify_all();
    }
  }
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
  if (N == 0)
    return;
  if (Threads.empty()) {
    // Single-worker pool: the sharded code path with no threading at all.
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    Job = &Fn;
    JobSize = N;
    NextIndex.store(0);
    Running = static_cast<unsigned>(Threads.size());
    ++Generation;
    FirstError = nullptr;
  }
  WorkCV.notify_all();
  runIndices(); // The calling thread is a worker too.
  std::unique_lock<std::mutex> Lock(M);
  DoneCV.wait(Lock, [&] { return Running == 0; });
  Job = nullptr;
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    Lock.unlock();
    std::rethrow_exception(E);
  }
}
