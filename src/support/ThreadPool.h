//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
///
/// \file
/// A small fixed-size worker pool for the sharded pass pipeline. The pool
/// model is deliberately minimal: one parallelFor() primitive that runs a
/// callable over an index range, with the calling thread participating as
/// one of the workers. A pool constructed with one worker therefore spawns
/// no threads at all and degenerates to a plain loop — which is what lets
/// the pipeline run the *same* sharded code path for --mao-jobs=1 and
/// --mao-jobs=N and guarantee identical results (see DESIGN.md, "Sharded
/// pass pipeline").
///
/// Work items are claimed from an atomic counter, so the *assignment* of
/// indices to threads is scheduling-dependent; callers that need
/// determinism must make each index's work independent of which thread
/// runs it (the pass runner does: results are buffered per index and
/// merged in index order).
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SUPPORT_THREADPOOL_H
#define MAO_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mao {

class ThreadPool {
public:
  /// Creates a pool with \p Workers total workers (clamped to >= 1). The
  /// calling thread counts as one worker: N workers spawn N-1 threads.
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Runs Fn(I) for every I in [0, N), distributing indices over the
  /// workers, and returns once all calls completed. The caller's thread
  /// participates. If any Fn invocation throws, the first exception (in
  /// completion order) is rethrown here after the whole range drained.
  /// Not reentrant: parallelFor must not be called from inside Fn.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// Total workers, including the calling thread.
  unsigned workerCount() const {
    return static_cast<unsigned>(Threads.size()) + 1;
  }

  /// A sensible default worker count for this machine (>= 1).
  static unsigned defaultWorkerCount();

private:
  void workerLoop();
  void runIndices();

  std::vector<std::thread> Threads;

  std::mutex M;
  std::condition_variable WorkCV; ///< Signals a new job (or shutdown).
  std::condition_variable DoneCV; ///< Signals the current job drained.
  const std::function<void(size_t)> *Job = nullptr;
  size_t JobSize = 0;
  std::atomic<size_t> NextIndex{0};
  unsigned Running = 0;     ///< Workers still inside the current job.
  uint64_t Generation = 0;  ///< Bumped per job so workers detect new work.
  bool Stopping = false;
  std::exception_ptr FirstError;
};

} // namespace mao

#endif // MAO_SUPPORT_THREADPOOL_H
