//===- support/Trace.cpp - Tracing facility -------------------------------==//

#include "support/Trace.h"

#include <cstdio>
#include <mutex>

using namespace mao;

namespace {
std::mutex &logMutex() {
  static std::mutex M;
  return M;
}

LogWriter &logWriter() {
  static LogWriter W;
  return W;
}
} // namespace

void mao::lockedLogWrite(const std::string &Text) {
  std::lock_guard<std::mutex> Lock(logMutex());
  LogWriter &W = logWriter();
  if (W) {
    W(Text);
    return;
  }
  std::fwrite(Text.data(), 1, Text.size(), stderr);
}

LogWriter mao::setLogWriter(LogWriter Writer) {
  std::lock_guard<std::mutex> Lock(logMutex());
  LogWriter Previous = std::move(logWriter());
  logWriter() = std::move(Writer);
  return Previous;
}

void TraceContext::trace(int MsgLevel, const char *Fmt, ...) const {
  va_list Args;
  va_start(Args, Fmt);
  vtrace(MsgLevel, Fmt, Args);
  va_end(Args);
}

void TraceContext::vtrace(int MsgLevel, const char *Fmt,
                          va_list Args) const {
  if (MsgLevel > level())
    return;
  // Format "[name] body\n" into one buffer so the emission below is a
  // single write: three separate stdio calls here used to tear lines when
  // shards traced concurrently under --mao-jobs.
  va_list Sizing;
  va_copy(Sizing, Args);
  const int BodyLen = std::vsnprintf(nullptr, 0, Fmt, Sizing);
  va_end(Sizing);
  if (BodyLen < 0)
    return;
  std::string Line;
  Line.reserve(Name.size() + BodyLen + 4);
  Line += '[';
  Line += Name;
  Line += "] ";
  const size_t Prefix = Line.size();
  Line.resize(Prefix + BodyLen + 1);
  std::vsnprintf(&Line[Prefix], BodyLen + 1, Fmt, Args);
  Line[Prefix + BodyLen] = '\n';
  lockedLogWrite(Line);
}

TraceContext &TraceContext::global() {
  static TraceContext Ctx("mao", 0);
  return Ctx;
}
