//===- support/Trace.cpp - Tracing facility -------------------------------==//

#include "support/Trace.h"

#include <cstdio>

using namespace mao;

void TraceContext::trace(int MsgLevel, const char *Fmt, ...) const {
  if (MsgLevel > Level)
    return;
  std::fprintf(stderr, "[%s] ", Name.c_str());
  va_list Args;
  va_start(Args, Fmt);
  std::vfprintf(stderr, Fmt, Args);
  va_end(Args);
  std::fputc('\n', stderr);
}

TraceContext &TraceContext::global() {
  static TraceContext Ctx("mao", 0);
  return Ctx;
}
