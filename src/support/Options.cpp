//===- support/Options.cpp - MAO command-line option model ----------------==//

#include "support/Options.h"

#include "support/OptionRegistry.h"
#include "support/ThreadPool.h"

#include <cstdlib>

using namespace mao;

std::string MaoOptionMap::getString(const std::string &Name,
                                    const std::string &Default) const {
  auto It = Values.find(Name);
  return It == Values.end() ? Default : It->second;
}

long MaoOptionMap::getInt(const std::string &Name, long Default) const {
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  char *End = nullptr;
  long Parsed = std::strtol(It->second.c_str(), &End, 0);
  if (End == It->second.c_str() || *End != '\0')
    return Default;
  return Parsed;
}

bool MaoOptionMap::getBool(const std::string &Name, bool Default) const {
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  const std::string &V = It->second;
  if (V.empty() || V == "1" || V == "true" || V == "on")
    return true;
  if (V == "0" || V == "false" || V == "off")
    return false;
  return Default;
}

/// Splits one PASSNAME=opt[val],opt[val] specification.
static MaoStatus parsePassSpec(const std::string &Spec, PassRequest &Out) {
  if (Spec.empty())
    return MaoStatus::error("empty pass specification in --mao= option");

  std::string::size_type Eq = Spec.find('=');
  Out.PassName = Spec.substr(0, Eq);
  if (Out.PassName.empty())
    return MaoStatus::error("pass specification missing a pass name");
  if (Eq == std::string::npos)
    return MaoStatus::success();

  // Parse the comma-separated option list. Values live in brackets and may
  // contain commas or colons (e.g. file paths), so scan bracket-aware.
  std::string Rest = Spec.substr(Eq + 1);
  std::string::size_type Pos = 0;
  while (Pos < Rest.size()) {
    std::string::size_type OptEnd = Pos;
    int Depth = 0;
    while (OptEnd < Rest.size() && (Depth > 0 || Rest[OptEnd] != ',')) {
      if (Rest[OptEnd] == '[')
        ++Depth;
      else if (Rest[OptEnd] == ']')
        --Depth;
      ++OptEnd;
    }
    if (Depth != 0)
      return MaoStatus::error("unbalanced '[' in pass option: " + Rest);
    std::string Opt = Rest.substr(Pos, OptEnd - Pos);
    if (Opt.empty())
      return MaoStatus::error("empty option in pass specification: " + Spec);

    std::string::size_type Br = Opt.find('[');
    if (Br == std::string::npos) {
      Out.Options.set(Opt, "");
    } else {
      if (Opt.back() != ']')
        return MaoStatus::error("malformed option value in: " + Opt);
      Out.Options.set(Opt.substr(0, Br),
                      Opt.substr(Br + 1, Opt.size() - Br - 2));
    }
    Pos = OptEnd + (OptEnd < Rest.size() ? 1 : 0);
  }
  return MaoStatus::success();
}

MaoStatus mao::parseMaoOption(const std::string &Payload,
                              std::vector<PassRequest> &Out) {
  // Pass specifications are separated by ':' at bracket depth zero; values
  // inside brackets may themselves contain ':' (e.g. ASM=o[a:b.s]).
  std::string::size_type Pos = 0;
  while (Pos <= Payload.size()) {
    std::string::size_type End = Pos;
    int Depth = 0;
    while (End < Payload.size() && (Depth > 0 || Payload[End] != ':')) {
      if (Payload[End] == '[')
        ++Depth;
      else if (Payload[End] == ']')
        --Depth;
      ++End;
    }
    PassRequest Req;
    if (MaoStatus S = parsePassSpec(Payload.substr(Pos, End - Pos), Req))
      return S;
    Out.push_back(std::move(Req));
    if (End >= Payload.size())
      break;
    Pos = End + 1;
    if (Pos == Payload.size())
      return MaoStatus::error("trailing ':' in --mao= option");
  }
  return MaoStatus::success();
}

MaoStatus mao::parsePassListSyntax(const std::string &Payload,
                                   std::vector<PassRequest> &Out) {
  // Pass items separated by ',' at paren depth zero; each item is NAME or
  // NAME(opt=value,opt=value,...). Values may not contain ',' or ')'.
  std::string::size_type Pos = 0;
  if (Payload.empty())
    return MaoStatus::error("empty pass list");
  while (Pos <= Payload.size()) {
    std::string::size_type End = Pos;
    int Depth = 0;
    while (End < Payload.size() && (Depth > 0 || Payload[End] != ',')) {
      if (Payload[End] == '(')
        ++Depth;
      else if (Payload[End] == ')')
        --Depth;
      ++End;
    }
    if (Depth != 0)
      return MaoStatus::error("unbalanced '(' in pass list: " + Payload);
    std::string Item = Payload.substr(Pos, End - Pos);
    if (Item.empty())
      return MaoStatus::error("empty pass item in pass list: " + Payload);

    PassRequest Req;
    std::string::size_type Paren = Item.find('(');
    if (Paren == std::string::npos) {
      Req.PassName = Item;
    } else {
      if (Item.back() != ')')
        return MaoStatus::error("malformed pass parameters in: " + Item);
      Req.PassName = Item.substr(0, Paren);
      std::string Params = Item.substr(Paren + 1, Item.size() - Paren - 2);
      std::string::size_type P = 0;
      while (P < Params.size()) {
        std::string::size_type Comma = Params.find(',', P);
        std::string Param = Params.substr(
            P, Comma == std::string::npos ? std::string::npos : Comma - P);
        if (Param.empty())
          return MaoStatus::error("empty parameter in pass item: " + Item);
        std::string::size_type Eq = Param.find('=');
        if (Eq == std::string::npos)
          Req.Options.set(Param, ""); // Bare parameter: boolean true.
        else
          Req.Options.set(Param.substr(0, Eq), Param.substr(Eq + 1));
        if (Comma == std::string::npos)
          break;
        P = Comma + 1;
        if (P == Params.size())
          return MaoStatus::error("trailing ',' in pass parameters: " + Item);
      }
    }
    if (Req.PassName.empty())
      return MaoStatus::error("pass item missing a pass name: " + Payload);
    Out.push_back(std::move(Req));
    if (End >= Payload.size())
      break;
    Pos = End + 1;
    if (Pos == Payload.size())
      return MaoStatus::error("trailing ',' in pass list: " + Payload);
  }
  return MaoStatus::success();
}

unsigned MaoCommandLine::effectiveJobs() const {
  return Jobs == 0 ? ThreadPool::defaultWorkerCount() : Jobs;
}

namespace {

/// Builds the declarative flag table for the driver surface over \p Cmd.
/// THE single definition site: parseCommandLine and driverOptionHelp both
/// render from here.
OptionRegistry buildDriverOptions(MaoCommandLine &Cmd) {
  OptionRegistry R;
  R.addCustom(
      "--mao",
      [&Cmd](const std::string &Payload) {
        return parseMaoOption(Payload, Cmd.Passes);
      },
      "pass pipeline, classic spelling: PASS[=opt[val],...][:PASS...]");
  R.addCustom(
      "--mao-passes",
      [&Cmd](const std::string &Payload) {
        std::vector<PassRequest> Probe; // Syntax check now, resolve later.
        if (MaoStatus S = parsePassListSyntax(Payload, Probe))
          return S;
        Cmd.PassSpecs.push_back(Payload);
        return MaoStatus::success();
      },
      "pass pipeline, registry spelling: a,b(c=1,d=2); names are validated "
      "against the pass registry with did-you-mean suggestions");
  R.addFlag("--mao-help", &Cmd.Help,
            "print this generated flag reference and exit");
  R.addEnum("--mao-on-error", &Cmd.OnError, {"abort", "rollback", "skip"},
            "what a failing pass does to the rest of the pipeline");
  R.addFlag("--mao-verify", &Cmd.Verify,
            "run the full IR verifier after every pass");
  R.addEnum("--mao-validate", &Cmd.Validate, {"off", "structural", "semantic"},
            "per-pass validation level (semantic proves behaviour preserved)");
  R.addEnum("--mao-relax", &Cmd.RelaxMode, {"grow", "optimal"},
            "branch-displacement selection: grow = the paper's monotone "
            "widening; optimal = shrink rel32 branches that fit rel8 after "
            "convergence");
  R.addInt("--mao-pass-timeout-ms", &Cmd.PassTimeoutMs, 0,
           "per-pass wall-clock budget in ms (0 = unlimited)");
  R.addUint("--mao-jobs", &Cmd.Jobs, 0,
            "workers for shardable passes and tuner candidates "
            "(0 = all hardware threads); output is identical for every N");
  R.addCustom(
      "--mao-fault-inject",
      [&Cmd](const std::string &Payload) {
        std::string Spec = Payload;
        std::string::size_type At = Spec.find('@');
        if (At != std::string::npos) {
          std::string SeedText = Spec.substr(At + 1);
          char *End = nullptr;
          unsigned long long Seed = std::strtoull(SeedText.c_str(), &End, 10);
          if (End == SeedText.c_str() || *End != '\0')
            return MaoStatus::error(
                "--mao-fault-inject seed must be an integer; got '" +
                SeedText + "'");
          Cmd.FaultSeed = Seed;
          Spec = Spec.substr(0, At);
        }
        Cmd.FaultSpec = Spec;
        return MaoStatus::success();
      },
      "arm the deterministic fault injector: site:permille[,...][@seed]");
  R.addCustom(
      "--mao-sarif",
      [&Cmd](const std::string &Path) {
        if (Path.empty())
          return MaoStatus::error("--mao-sarif expects a file path");
        Cmd.SarifPath = Path;
        return MaoStatus::success();
      },
      "also write diagnostics as a SARIF 2.1.0 log to FILE");
  R.addCustom(
      "--mao-report",
      [&Cmd](const std::string &Path) {
        if (Path.empty())
          return MaoStatus::error("--mao-report expects a file path or '-'");
        Cmd.ReportPath = Path;
        return MaoStatus::success();
      },
      "write the machine-readable JSON run report to FILE ('-' for stdout)");
  R.addFlag("--stats", &Cmd.Stats,
            "print the human-readable run statistics table to stderr");
  R.addCustom(
      "--mao-trace-out",
      [&Cmd](const std::string &Path) {
        if (Path.empty())
          return MaoStatus::error("--mao-trace-out expects a file path");
        Cmd.TraceOut = Path;
        return MaoStatus::success();
      },
      "write a Chrome trace-event timeline of the run to FILE");
  R.addInt("--mao-trace-level", &Cmd.TraceLevel, 0,
           "global trace verbosity (0-3) for infrastructure tracing and "
           "passes without an explicit trace[N] option");
  R.addString("--cache-dir", &Cmd.CacheDir,
              "persistent artifact cache directory; hits skip the pipeline "
              "and are byte-identical to a recompute");
  R.addString("--connect", &Cmd.ConnectPath,
              "run through the maod daemon at this unix socket (bounded "
              "retry, then transparent local fallback)");
  R.addFlag("--cache-verify", &Cmd.CacheVerify,
            "on a cache hit, recompute anyway and fail on any divergence");
  auto AddBudget = [&R](const char *Flag, uint64_t *Slot, const char *Help) {
    R.addCustom(
        Flag,
        [Flag, Slot](const std::string &Value) {
          char *End = nullptr;
          unsigned long long Bytes = std::strtoull(Value.c_str(), &End, 10);
          if (End == Value.c_str() || *End != '\0')
            return MaoStatus::error(std::string(Flag) +
                                    " expects a byte count; got '" + Value +
                                    "'");
          *Slot = Bytes;
          return MaoStatus::success();
        },
        Help);
  };
  AddBudget("--mao-encode-cache-budget", &Cmd.EncodeCacheBudget,
            "cap the encode-length cache at BYTES of keyed content, "
            "evicting oldest-first (0 = unlimited)");
  AddBudget("--mao-score-cache-budget", &Cmd.ScoreCacheBudget,
            "cap the tuner's score cache at BYTES, evicting oldest-first "
            "(0 = unlimited)");
  AddBudget("--cache-budget", &Cmd.CacheBudget,
            "cap the on-disk artifact cache at BYTES of entries, evicting "
            "oldest-first (0 = unlimited)");
  R.addFlag("--lint", &Cmd.Lint,
            "run the MaoCheck linter instead of the pass pipeline");
  R.addFlag("--lint-werror", &Cmd.LintWerror,
            "promote linter warnings to errors");
  R.addFlag("--lint-no-interproc", &Cmd.LintNoInterproc,
            "disable interprocedural summaries: calls clobber everything "
            "and the ABI conformance rules are skipped");
  R.addString("--lint-baseline", &Cmd.LintBaseline,
              "suppress lint findings whose fingerprints appear in FILE");
  R.addString("--lint-baseline-out", &Cmd.LintBaselineOut,
              "write all current lint findings' fingerprints to FILE (a "
              "baseline that re-lints clean)");
  R.addFlag("--tune", &Cmd.Tune,
            "search pass parameterizations with the uarch simulator as the "
            "objective (see DESIGN.md, \"Autotuning\")");
  R.addCustom(
      "--tune-budget",
      [&Cmd](const std::string &Value) {
        if (Value != "small" && Value != "medium" && Value != "large") {
          char *End = nullptr;
          long N = std::strtol(Value.c_str(), &End, 10);
          if (End == Value.c_str() || *End != '\0' || N < 1)
            return MaoStatus::error("--tune-budget expects small, medium, "
                                    "large, or a positive candidate count; "
                                    "got '" +
                                    Value + "'");
        }
        Cmd.TuneBudget = Value;
        return MaoStatus::success();
      },
      "candidate-evaluation budget: small, medium, large, or a count");
  R.addString("--tune-report", &Cmd.TuneReport,
              "write the machine-readable JSON tuning report to FILE");
  R.addCustom(
      "--tune-seed",
      [&Cmd](const std::string &Value) {
        char *End = nullptr;
        unsigned long long Seed = std::strtoull(Value.c_str(), &End, 10);
        if (End == Value.c_str() || *End != '\0')
          return MaoStatus::error("--tune-seed expects an integer; got '" +
                                  Value + "'");
        Cmd.TuneSeed = Seed;
        return MaoStatus::success();
      },
      "search seed; runs are deterministic in (input, seed, budget, config)");
  R.addEnum("--tune-config", &Cmd.TuneConfig, {"core2", "opteron"},
            "processor model scoring tuner candidates");
  R.addString("--tune-entry", &Cmd.TuneEntry,
              "function to emulate and score (default: bench_main, else the "
              "first function)");
  R.addFlag("--tune-synth-axis", &Cmd.TuneSynthAxis,
            "let the tuner toggle the synthesized rule pass as a search "
            "axis (off by default; tune trajectories stay stable)");
  R.addFlag("--tune-layout-axis", &Cmd.TuneLayoutAxis,
            "let the tuner toggle hot/cold function splitting and I-cache "
            "block reordering as search axes (off by default)");
  R.addFlag("--synth", &Cmd.Synth,
            "run the superoptimizer rule-synthesis loop over the input "
            "instead of a pass pipeline (see DESIGN.md, \"Rule synthesis\")");
  R.addString("--synth-out", &Cmd.SynthOut,
              "write the synthesized PeepholeRules.def table to FILE");
  R.addUint("--synth-window", &Cmd.SynthWindow, 2,
            "longest harvested instruction window (1-3)");
  R.addUint("--synth-max-rules", &Cmd.SynthMaxRules, 16,
            "cap on emitted synthesized rules (best-supported wins kept)");
  R.addCustom(
      "--synth-seed",
      [&Cmd](const std::string &Value) {
        char *End = nullptr;
        unsigned long long Seed = std::strtoull(Value.c_str(), &End, 10);
        if (End == Value.c_str() || *End != '\0')
          return MaoStatus::error("--synth-seed expects an integer; got '" +
                                  Value + "'");
        Cmd.SynthSeed = Seed;
        return MaoStatus::success();
      },
      "provenance seed recorded in emitted rules");
  R.addEnum("--synth-config", &Cmd.SynthConfig, {"core2", "opteron"},
            "processor model scoring candidate replacements");
  R.addFlag("--synth-no-workloads", &Cmd.SynthNoWorkloads,
            "harvest only the input corpus, not generated workload code");
  R.addString("--synth-rules", &Cmd.SynthRules,
              "replace the synth rule group with the rules of FILE (a .def "
              "table, the shape maosynth emits) before optimizing");
  R.addFlag("--synth-verify", &Cmd.SynthVerify,
            "re-prove every active synthesized rule (symbolic oracle plus "
            "SemanticValidator) and exit; the CI gate over the rule table");
  R.setPassthrough(&Cmd.Passthrough);
  R.setPositionals(&Cmd.Inputs);
  return R;
}

} // namespace

ErrorOr<MaoCommandLine>
mao::parseCommandLine(const std::vector<std::string> &Args) {
  MaoCommandLine Cmd;
  OptionRegistry R = buildDriverOptions(Cmd);
  if (MaoStatus S = R.parse(Args))
    return S;
  return Cmd;
}

std::string mao::driverOptionHelp() {
  MaoCommandLine Scratch;
  return buildDriverOptions(Scratch).help();
}
