//===- support/Options.cpp - MAO command-line option model ----------------==//

#include "support/Options.h"

#include <cstdlib>

using namespace mao;

std::string MaoOptionMap::getString(const std::string &Name,
                                    const std::string &Default) const {
  auto It = Values.find(Name);
  return It == Values.end() ? Default : It->second;
}

long MaoOptionMap::getInt(const std::string &Name, long Default) const {
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  char *End = nullptr;
  long Parsed = std::strtol(It->second.c_str(), &End, 0);
  if (End == It->second.c_str() || *End != '\0')
    return Default;
  return Parsed;
}

bool MaoOptionMap::getBool(const std::string &Name, bool Default) const {
  auto It = Values.find(Name);
  if (It == Values.end())
    return Default;
  const std::string &V = It->second;
  if (V.empty() || V == "1" || V == "true" || V == "on")
    return true;
  if (V == "0" || V == "false" || V == "off")
    return false;
  return Default;
}

/// Splits one PASSNAME=opt[val],opt[val] specification.
static MaoStatus parsePassSpec(const std::string &Spec, PassRequest &Out) {
  if (Spec.empty())
    return MaoStatus::error("empty pass specification in --mao= option");

  std::string::size_type Eq = Spec.find('=');
  Out.PassName = Spec.substr(0, Eq);
  if (Out.PassName.empty())
    return MaoStatus::error("pass specification missing a pass name");
  if (Eq == std::string::npos)
    return MaoStatus::success();

  // Parse the comma-separated option list. Values live in brackets and may
  // contain commas or colons (e.g. file paths), so scan bracket-aware.
  std::string Rest = Spec.substr(Eq + 1);
  std::string::size_type Pos = 0;
  while (Pos < Rest.size()) {
    std::string::size_type OptEnd = Pos;
    int Depth = 0;
    while (OptEnd < Rest.size() && (Depth > 0 || Rest[OptEnd] != ',')) {
      if (Rest[OptEnd] == '[')
        ++Depth;
      else if (Rest[OptEnd] == ']')
        --Depth;
      ++OptEnd;
    }
    if (Depth != 0)
      return MaoStatus::error("unbalanced '[' in pass option: " + Rest);
    std::string Opt = Rest.substr(Pos, OptEnd - Pos);
    if (Opt.empty())
      return MaoStatus::error("empty option in pass specification: " + Spec);

    std::string::size_type Br = Opt.find('[');
    if (Br == std::string::npos) {
      Out.Options.set(Opt, "");
    } else {
      if (Opt.back() != ']')
        return MaoStatus::error("malformed option value in: " + Opt);
      Out.Options.set(Opt.substr(0, Br),
                      Opt.substr(Br + 1, Opt.size() - Br - 2));
    }
    Pos = OptEnd + (OptEnd < Rest.size() ? 1 : 0);
  }
  return MaoStatus::success();
}

MaoStatus mao::parseMaoOption(const std::string &Payload,
                              std::vector<PassRequest> &Out) {
  // Pass specifications are separated by ':' at bracket depth zero; values
  // inside brackets may themselves contain ':' (e.g. ASM=o[a:b.s]).
  std::string::size_type Pos = 0;
  while (Pos <= Payload.size()) {
    std::string::size_type End = Pos;
    int Depth = 0;
    while (End < Payload.size() && (Depth > 0 || Payload[End] != ':')) {
      if (Payload[End] == '[')
        ++Depth;
      else if (Payload[End] == ']')
        --Depth;
      ++End;
    }
    PassRequest Req;
    if (MaoStatus S = parsePassSpec(Payload.substr(Pos, End - Pos), Req))
      return S;
    Out.push_back(std::move(Req));
    if (End >= Payload.size())
      break;
    Pos = End + 1;
    if (Pos == Payload.size())
      return MaoStatus::error("trailing ':' in --mao= option");
  }
  return MaoStatus::success();
}

ErrorOr<MaoCommandLine>
mao::parseCommandLine(const std::vector<std::string> &Args) {
  MaoCommandLine Cmd;
  static const std::string Prefix = "--mao=";
  static const std::string OnErrorPrefix = "--mao-on-error=";
  static const std::string TimeoutPrefix = "--mao-pass-timeout-ms=";
  static const std::string JobsPrefix = "--mao-jobs=";
  static const std::string FaultPrefix = "--mao-fault-inject=";
  static const std::string ValidatePrefix = "--mao-validate=";
  static const std::string SarifPrefix = "--mao-sarif=";
  for (const std::string &Arg : Args) {
    if (Arg.rfind(Prefix, 0) == 0) {
      if (MaoStatus S = parseMaoOption(Arg.substr(Prefix.size()), Cmd.Passes))
        return S;
      continue;
    }
    if (Arg.rfind(OnErrorPrefix, 0) == 0) {
      std::string Policy = Arg.substr(OnErrorPrefix.size());
      if (Policy != "abort" && Policy != "rollback" && Policy != "skip")
        return MaoStatus::error("--mao-on-error expects abort, rollback, or "
                                "skip; got '" +
                                Policy + "'");
      Cmd.OnError = Policy;
      continue;
    }
    if (Arg == "--mao-verify") {
      Cmd.Verify = true;
      continue;
    }
    if (Arg.rfind(TimeoutPrefix, 0) == 0) {
      std::string Value = Arg.substr(TimeoutPrefix.size());
      char *End = nullptr;
      long Ms = std::strtol(Value.c_str(), &End, 10);
      if (End == Value.c_str() || *End != '\0' || Ms < 0)
        return MaoStatus::error(
            "--mao-pass-timeout-ms expects a non-negative integer; got '" +
            Value + "'");
      Cmd.PassTimeoutMs = Ms;
      continue;
    }
    if (Arg.rfind(JobsPrefix, 0) == 0) {
      std::string Value = Arg.substr(JobsPrefix.size());
      char *End = nullptr;
      long Jobs = std::strtol(Value.c_str(), &End, 10);
      if (End == Value.c_str() || *End != '\0' || Jobs < 1)
        return MaoStatus::error(
            "--mao-jobs expects a positive integer; got '" + Value + "'");
      Cmd.Jobs = static_cast<unsigned>(Jobs);
      continue;
    }
    if (Arg.rfind(FaultPrefix, 0) == 0) {
      std::string Spec = Arg.substr(FaultPrefix.size());
      std::string::size_type At = Spec.find('@');
      if (At != std::string::npos) {
        std::string SeedText = Spec.substr(At + 1);
        char *End = nullptr;
        unsigned long long Seed = std::strtoull(SeedText.c_str(), &End, 10);
        if (End == SeedText.c_str() || *End != '\0')
          return MaoStatus::error(
              "--mao-fault-inject seed must be an integer; got '" + SeedText +
              "'");
        Cmd.FaultSeed = Seed;
        Spec = Spec.substr(0, At);
      }
      Cmd.FaultSpec = Spec;
      continue;
    }
    if (Arg.rfind(ValidatePrefix, 0) == 0) {
      std::string Level = Arg.substr(ValidatePrefix.size());
      if (Level != "off" && Level != "structural" && Level != "semantic")
        return MaoStatus::error("--mao-validate expects off, structural, or "
                                "semantic; got '" +
                                Level + "'");
      Cmd.Validate = Level;
      continue;
    }
    if (Arg == "--lint") {
      Cmd.Lint = true;
      continue;
    }
    if (Arg == "--lint-werror") {
      Cmd.LintWerror = true;
      continue;
    }
    if (Arg.rfind(SarifPrefix, 0) == 0) {
      std::string Path = Arg.substr(SarifPrefix.size());
      if (Path.empty())
        return MaoStatus::error("--mao-sarif expects a file path");
      Cmd.SarifPath = Path;
      continue;
    }
    if (!Arg.empty() && Arg[0] == '-') {
      Cmd.Passthrough.push_back(Arg);
      continue;
    }
    Cmd.Inputs.push_back(Arg);
  }
  return Cmd;
}
