//===- support/Trace.h - Tracing facility for MAO passes -------*- C++ -*-===//
//
// Part of the MAO reproduction project, under GPL v3 like the original MAO.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard tracing facility available to every MAO pass (paper Sec.
/// III-A). Trace output is filtered by a per-pass trace level: a message is
/// emitted iff its level is <= the currently configured level. Level 0 means
/// "always interesting", higher levels are increasingly verbose.
///
/// Every trace line is formatted into a single buffer and emitted through
/// one locked write (lockedLogWrite) shared with the stderr diagnostics
/// sink, so lines from parallel shards never tear or interleave.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SUPPORT_TRACE_H
#define MAO_SUPPORT_TRACE_H

#include <atomic>
#include <cstdarg>
#include <functional>
#include <string>

namespace mao {

/// Writes \p Text to the process log sink (stderr unless overridden) as one
/// operation under the global log lock. Tracing and the stderr diagnostics
/// sink both funnel through here, so concurrent writers produce whole
/// lines, never torn fragments.
void lockedLogWrite(const std::string &Text);

/// Test seam: replaces the log sink behind lockedLogWrite and returns the
/// previous writer. Pass an empty function to restore the stderr default.
using LogWriter = std::function<void(const std::string &)>;
LogWriter setLogWriter(LogWriter Writer);

/// Sink plus level filter for diagnostic output.
///
/// Each pass owns a TraceContext named after the pass; the global context is
/// used by infrastructure code and seeds the default level of passes with no
/// explicit trace[N] option (set it with --mao-trace-level=N). Output goes
/// to stderr so it never mixes with assembly written to stdout. The level is
/// atomic: the driver thread configures it while shard workers read it.
class TraceContext {
public:
  explicit TraceContext(std::string Name, int Level = 0)
      : Name(std::move(Name)), Level(Level) {}

  /// Emits a printf-formatted message when \p MsgLevel <= the context level.
  void trace(int MsgLevel, const char *Fmt, ...) const
      __attribute__((format(printf, 3, 4)));

  /// va_list flavour of trace() for forwarding wrappers (MaoPass::trace).
  void vtrace(int MsgLevel, const char *Fmt, va_list Args) const;

  void setLevel(int NewLevel) {
    Level.store(NewLevel, std::memory_order_relaxed);
  }
  int level() const { return Level.load(std::memory_order_relaxed); }
  const std::string &name() const { return Name; }

  /// Returns the process-wide context used by non-pass infrastructure.
  static TraceContext &global();

private:
  std::string Name;
  std::atomic<int> Level;
};

} // namespace mao

#endif // MAO_SUPPORT_TRACE_H
