//===- support/Trace.h - Tracing facility for MAO passes -------*- C++ -*-===//
//
// Part of the MAO reproduction project, under GPL v3 like the original MAO.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard tracing facility available to every MAO pass (paper Sec.
/// III-A). Trace output is filtered by a per-pass trace level: a message is
/// emitted iff its level is <= the currently configured level. Level 0 means
/// "always interesting", higher levels are increasingly verbose.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SUPPORT_TRACE_H
#define MAO_SUPPORT_TRACE_H

#include <cstdarg>
#include <string>

namespace mao {

/// Sink plus level filter for diagnostic output.
///
/// Each pass owns a TraceContext named after the pass; the global context is
/// used by infrastructure code. Output goes to stderr so it never mixes with
/// assembly written to stdout.
class TraceContext {
public:
  explicit TraceContext(std::string Name, int Level = 0)
      : Name(std::move(Name)), Level(Level) {}

  /// Emits a printf-formatted message when \p MsgLevel <= the context level.
  void trace(int MsgLevel, const char *Fmt, ...) const
      __attribute__((format(printf, 3, 4)));

  void setLevel(int NewLevel) { Level = NewLevel; }
  int level() const { return Level; }
  const std::string &name() const { return Name; }

  /// Returns the process-wide context used by non-pass infrastructure.
  static TraceContext &global();

private:
  std::string Name;
  int Level;
};

} // namespace mao

#endif // MAO_SUPPORT_TRACE_H
