//===- support/Diag.cpp - Structured diagnostics engine ----------------------==//

#include "support/Diag.h"

#include "support/Trace.h"

#include <algorithm>
#include <cstdio>

using namespace mao;

const char *mao::diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::None:
    return "none";
  case DiagCode::DriverUsage:
    return "driver-usage";
  case DiagCode::DriverFileError:
    return "driver-file-error";
  case DiagCode::ParseUnterminatedString:
    return "parse-unterminated-string";
  case DiagCode::ParseInjectedFault:
    return "parse-injected-fault";
  case DiagCode::ParseDuplicateLabel:
    return "parse-duplicate-label";
  case DiagCode::ParseLocalLabelUndefined:
    return "parse-local-label-undefined";
  case DiagCode::ParseLocalLabelDangling:
    return "parse-local-label-dangling";
  case DiagCode::PassUnknown:
    return "pass-unknown";
  case DiagCode::PassFailed:
    return "pass-failed";
  case DiagCode::PassException:
    return "pass-exception";
  case DiagCode::PassTimeout:
    return "pass-timeout";
  case DiagCode::RelaxIterationLimit:
    return "relax-iteration-limit";
  case DiagCode::VerifyUnresolvedLabel:
    return "verify-unresolved-label";
  case DiagCode::VerifyDuplicateLabel:
    return "verify-duplicate-label";
  case DiagCode::VerifyBadStructure:
    return "verify-bad-structure";
  case DiagCode::VerifyEncodingFailed:
    return "verify-encoding-failed";
  case DiagCode::VerifyLayoutInconsistent:
    return "verify-layout-inconsistent";
  case DiagCode::VerifyRelaxationDiverged:
    return "verify-relaxation-diverged";
  case DiagCode::CheckSemanticDiverged:
    return "check-semantic-diverged";
  case DiagCode::LintUseBeforeDef:
    return "lint-use-before-def";
  case DiagCode::LintDeadFlagWrite:
    return "lint-dead-flag-write";
  case DiagCode::LintUnreachableBlock:
    return "lint-unreachable-block";
  case DiagCode::LintStackMisaligned:
    return "lint-stack-misaligned";
  case DiagCode::LintPartialRegStall:
    return "lint-partial-reg-stall";
  case DiagCode::LintFalseDependency:
    return "lint-false-dependency";
  case DiagCode::LintUnresolvedIndirect:
    return "lint-unresolved-indirect";
  case DiagCode::LintInternalError:
    return "lint-internal-error";
  case DiagCode::LintCalleeSavedClobbered:
    return "lint-callee-saved-clobbered";
  case DiagCode::LintUnbalancedStack:
    return "lint-unbalanced-stack";
  case DiagCode::LintRedZoneNonLeaf:
    return "lint-red-zone-nonleaf";
  case DiagCode::LintArgUndefinedAtCall:
    return "lint-arg-undefined";
  case DiagCode::LintDeadArgWrite:
    return "lint-dead-arg-write";
  }
  return "unknown";
}

uint64_t mao::diagFingerprint(DiagCode Code, const std::string &Message) {
  uint64_t H = 1469598103934665603ull; // FNV-1a offset basis
  auto Mix = [&H](const char *Data, size_t Len) {
    for (size_t I = 0; I < Len; ++I) {
      H ^= static_cast<unsigned char>(Data[I]);
      H *= 1099511628211ull;
    }
  };
  const char *Name = diagCodeName(Code);
  Mix(Name, std::char_traits<char>::length(Name));
  Mix("\0", 1);
  Mix(Message.data(), Message.size());
  return H;
}

std::string mao::diagFingerprintHex(uint64_t Fingerprint) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Fingerprint));
  return Buf;
}

const char *mao::diagSeverityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  case DiagSeverity::Fatal:
    return "fatal";
  }
  return "unknown";
}

std::string Diagnostic::toString() const {
  std::string Out;
  if (Loc.valid()) {
    Out += Loc.File;
    if (Loc.Line != 0) {
      Out += ':';
      Out += std::to_string(Loc.Line);
    }
    Out += ": ";
  }
  Out += diagSeverityName(Severity);
  Out += ": ";
  Out += Message;
  if (Code != DiagCode::None) {
    Out += " [MAO-";
    Out += diagCodeName(Code);
    Out += ']';
  }
  if (!PassName.empty()) {
    Out += " (pass ";
    Out += PassName;
    Out += ')';
  }
  return Out;
}

DiagSink::~DiagSink() = default;

namespace {

/// Escapes a string for embedding in a JSON string literal.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

const char *sarifLevel(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
  case DiagSeverity::Fatal:
    return "error";
  }
  return "none";
}

} // namespace

std::string SarifDiagSink::render() const {
  // Collect the distinct rules actually used, preserving first-use order.
  std::vector<DiagCode> Rules;
  for (const Diagnostic &D : Diags)
    if (std::find(Rules.begin(), Rules.end(), D.Code) == Rules.end())
      Rules.push_back(D.Code);

  std::string Out;
  Out += "{\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"mao\",\n"
         "          \"informationUri\": \"https://github.com/mao\",\n"
         "          \"rules\": [\n";
  for (size_t I = 0; I < Rules.size(); ++I) {
    Out += "            {\"id\": \"MAO-";
    Out += diagCodeName(Rules[I]);
    Out += "\"}";
    Out += I + 1 < Rules.size() ? ",\n" : "\n";
  }
  Out += "          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [\n";
  for (size_t I = 0; I < Diags.size(); ++I) {
    const Diagnostic &D = Diags[I];
    Out += "        {\n";
    Out += "          \"ruleId\": \"MAO-";
    Out += diagCodeName(D.Code);
    Out += "\",\n";
    Out += "          \"level\": \"";
    Out += sarifLevel(D.Severity);
    Out += "\",\n";
    Out += "          \"message\": {\"text\": \"";
    Out += jsonEscape(D.Message);
    Out += "\"},\n";
    Out += "          \"partialFingerprints\": {\"maoLint/v1\": \"";
    Out += diagFingerprintHex(diagFingerprint(D.Code, D.Message));
    Out += "\"}";
    if (!D.PassName.empty()) {
      Out += ",\n          \"properties\": {\"pass\": \"";
      Out += jsonEscape(D.PassName);
      Out += "\"}";
    }
    if (D.Loc.valid()) {
      Out += ",\n          \"locations\": [\n"
             "            {\n"
             "              \"physicalLocation\": {\n"
             "                \"artifactLocation\": {\"uri\": \"";
      Out += jsonEscape(D.Loc.File);
      Out += "\"}";
      if (D.Loc.Line != 0) {
        Out += ",\n                \"region\": {\"startLine\": ";
        Out += std::to_string(D.Loc.Line);
        Out += "}";
      }
      Out += "\n              }\n"
             "            }\n"
             "          ]";
    }
    Out += "\n        }";
    Out += I + 1 < Diags.size() ? ",\n" : "\n";
  }
  Out += "      ]\n"
         "    }\n"
         "  ]\n"
         "}\n";
  return Out;
}

bool SarifDiagSink::writeTo(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Doc = render();
  size_t Written = std::fwrite(Doc.data(), 1, Doc.size(), F);
  bool Ok = Written == Doc.size();
  Ok = std::fclose(F) == 0 && Ok;
  return Ok;
}

void StderrDiagSink::handle(const Diagnostic &D) {
  // Shares the log lock with TraceContext so diagnostics and trace lines
  // from parallel shards never interleave mid-line.
  lockedLogWrite("mao: " + D.toString() + "\n");
}

void DiagEngine::report(Diagnostic D) {
  bool IsError =
      D.Severity == DiagSeverity::Error || D.Severity == DiagSeverity::Fatal;
  if (IsError) {
    if (errorLimitReached()) {
      ++NumErrors;
      if (!CapNoteEmitted) {
        CapNoteEmitted = true;
        Diagnostic Cap;
        Cap.Severity = DiagSeverity::Note;
        Cap.Message = "too many errors; suppressing further error output";
        for (DiagSink *Sink : Sinks)
          Sink->handle(Cap);
      }
      return;
    }
    ++NumErrors;
  } else if (D.Severity == DiagSeverity::Warning) {
    ++NumWarnings;
  }
  for (DiagSink *Sink : Sinks)
    Sink->handle(D);
}

void DiagEngine::error(DiagCode Code, std::string Message, SourceLoc Loc,
                       std::string PassName) {
  report({DiagSeverity::Error, Code, std::move(Loc), std::move(PassName),
          std::move(Message)});
}

void DiagEngine::warning(DiagCode Code, std::string Message, SourceLoc Loc,
                         std::string PassName) {
  report({DiagSeverity::Warning, Code, std::move(Loc), std::move(PassName),
          std::move(Message)});
}

void DiagEngine::note(DiagCode Code, std::string Message, SourceLoc Loc,
                      std::string PassName) {
  report({DiagSeverity::Note, Code, std::move(Loc), std::move(PassName),
          std::move(Message)});
}
