//===- support/Diag.cpp - Structured diagnostics engine ----------------------==//

#include "support/Diag.h"

#include <cstdio>

using namespace mao;

const char *mao::diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::None:
    return "none";
  case DiagCode::DriverUsage:
    return "driver-usage";
  case DiagCode::DriverFileError:
    return "driver-file-error";
  case DiagCode::ParseUnterminatedString:
    return "parse-unterminated-string";
  case DiagCode::ParseInjectedFault:
    return "parse-injected-fault";
  case DiagCode::PassUnknown:
    return "pass-unknown";
  case DiagCode::PassFailed:
    return "pass-failed";
  case DiagCode::PassException:
    return "pass-exception";
  case DiagCode::PassTimeout:
    return "pass-timeout";
  case DiagCode::RelaxIterationLimit:
    return "relax-iteration-limit";
  case DiagCode::VerifyUnresolvedLabel:
    return "verify-unresolved-label";
  case DiagCode::VerifyDuplicateLabel:
    return "verify-duplicate-label";
  case DiagCode::VerifyBadStructure:
    return "verify-bad-structure";
  case DiagCode::VerifyEncodingFailed:
    return "verify-encoding-failed";
  case DiagCode::VerifyLayoutInconsistent:
    return "verify-layout-inconsistent";
  case DiagCode::VerifyRelaxationDiverged:
    return "verify-relaxation-diverged";
  }
  return "unknown";
}

const char *mao::diagSeverityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  case DiagSeverity::Fatal:
    return "fatal";
  }
  return "unknown";
}

std::string Diagnostic::toString() const {
  std::string Out;
  if (Loc.valid()) {
    Out += Loc.File;
    if (Loc.Line != 0) {
      Out += ':';
      Out += std::to_string(Loc.Line);
    }
    Out += ": ";
  }
  Out += diagSeverityName(Severity);
  Out += ": ";
  Out += Message;
  if (Code != DiagCode::None) {
    Out += " [MAO-";
    Out += diagCodeName(Code);
    Out += ']';
  }
  if (!PassName.empty()) {
    Out += " (pass ";
    Out += PassName;
    Out += ')';
  }
  return Out;
}

DiagSink::~DiagSink() = default;

void StderrDiagSink::handle(const Diagnostic &D) {
  std::fprintf(stderr, "mao: %s\n", D.toString().c_str());
}

void DiagEngine::report(Diagnostic D) {
  bool IsError =
      D.Severity == DiagSeverity::Error || D.Severity == DiagSeverity::Fatal;
  if (IsError) {
    if (errorLimitReached()) {
      ++NumErrors;
      if (!CapNoteEmitted) {
        CapNoteEmitted = true;
        Diagnostic Cap;
        Cap.Severity = DiagSeverity::Note;
        Cap.Message = "too many errors; suppressing further error output";
        for (DiagSink *Sink : Sinks)
          Sink->handle(Cap);
      }
      return;
    }
    ++NumErrors;
  } else if (D.Severity == DiagSeverity::Warning) {
    ++NumWarnings;
  }
  for (DiagSink *Sink : Sinks)
    Sink->handle(D);
}

void DiagEngine::error(DiagCode Code, std::string Message, SourceLoc Loc,
                       std::string PassName) {
  report({DiagSeverity::Error, Code, std::move(Loc), std::move(PassName),
          std::move(Message)});
}

void DiagEngine::warning(DiagCode Code, std::string Message, SourceLoc Loc,
                         std::string PassName) {
  report({DiagSeverity::Warning, Code, std::move(Loc), std::move(PassName),
          std::move(Message)});
}

void DiagEngine::note(DiagCode Code, std::string Message, SourceLoc Loc,
                      std::string PassName) {
  report({DiagSeverity::Note, Code, std::move(Loc), std::move(PassName),
          std::move(Message)});
}
