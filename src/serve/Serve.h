//===- serve/Serve.h - maod engine, server and client -----------*- C++ -*-===//
///
/// \file
/// The long-lived service mode: `maod` keeps a warm process (opcode
/// tables, pass registry, thread pool, artifact cache) and answers
/// optimization requests over the framed protocol; `mao --connect` is the
/// thin client.
///
/// The layer is split so each piece is testable without sockets:
///
///   * Engine — one request in, one response out, no I/O. Owns a Session
///     (and through it the artifact cache) and implements the request
///     budget and the degradation ladder: an oversized or malformed
///     request gets a structured error; a pass failure is rolled back or
///     skipped by the pipeline's own OnError machinery; and if the
///     optimization still fails, the response is the input passed through
///     unchanged (DegradedIdentity) with a diagnostic — a worker never
///     dies and never returns wrong bytes.
///   * Server — the accept/dispatch loop over a unix socket (or a plain
///     fd pair for --stdio and tests), one Engine per connection thread.
///   * Client — connect, send, receive, with bounded retry and
///     exponential backoff; the caller (the mao driver) falls back to a
///     local run when the daemon stays unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SERVE_SERVE_H
#define MAO_SERVE_SERVE_H

#include "mao/Mao.h"
#include "serve/Protocol.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace mao {
namespace serve {

/// Per-engine limits and defaults, all overridable per request where a
/// request field exists.
struct EngineOptions {
  std::string CacheDir;      ///< Empty: no persistent cache.
  /// Byte budget for the persistent cache; stores beyond it evict oldest
  /// entries first (0 = unbounded).
  uint64_t CacheBudgetBytes = 0;
  uint32_t DefaultDeadlineMs = 0; ///< Per-request pass budget (0 = none).
  uint32_t MaxJobs = 0;      ///< Clamp on request Jobs (0 = hardware).
  /// Memory budget per request: source text larger than this is refused
  /// with a structured error before any parsing allocates.
  size_t MaxRequestBytes = 8ULL << 20;
};

/// One request in, one response out. Thread-compatible (not thread-safe):
/// the server gives each connection its own Engine.
class Engine {
public:
  explicit Engine(const EngineOptions &Options);
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Never throws and never returns wrong bytes: every failure shape maps
  /// to a ServeStatus (see the degradation ladder in the file comment).
  ServeResponse handle(const ServeRequest &Request);

  /// The engine's session (tests inspect cache stats through it).
  api::Session &session();

private:
  EngineOptions Options;
  std::unique_ptr<api::Session> S;
};

struct ServerOptions {
  std::string SocketPath; ///< Unix socket to listen on (socket mode).
  EngineOptions Engine;
  uint64_t MaxRequests = 0; ///< Stop after this many requests (0 = never).
};

/// The maod accept loop. Socket mode (run()) listens on SocketPath and
/// serves each connection on its own thread with its own Engine; stdio
/// mode (runOnFds) serves one framed stream on an fd pair, which is also
/// how tests drive a full server over a socketpair.
class Server {
public:
  explicit Server(const ServerOptions &Options);

  /// Binds, listens and serves until requestStop(), a Shutdown frame, or
  /// MaxRequests. Returns an error only for setup failures (bind/listen);
  /// per-connection errors are answered on the wire and contained.
  MaoStatus run();

  /// Serves one connection's frames on \p InFd / \p OutFd until EOF,
  /// Shutdown, or a stream error. Used for --stdio and by tests.
  MaoStatus runOnFds(int InFd, int OutFd);

  /// Async-signal-safe stop: closes the listening socket so run() returns
  /// after in-flight connections finish. Safe from a signal handler.
  void requestStop();

  uint64_t requestsServed() const {
    return Requests.load(std::memory_order_relaxed);
  }

private:
  /// Serves frames on a connected stream with \p E. Returns true when the
  /// server should keep accepting (false after Shutdown/MaxRequests).
  bool serveStream(Engine &E, int InFd, int OutFd);

  ServerOptions Options;
  std::atomic<int> ListenFd{-1};
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Requests{0};
};

struct ClientOptions {
  std::string SocketPath;
  unsigned Attempts = 3;       ///< Total connect+send tries.
  unsigned BackoffMs = 50;     ///< First retry delay; doubles per retry.
  bool Deterministic = false;  ///< Tests: skip real sleeps between tries.
};

/// Sends \p Request to the daemon at Options.SocketPath with bounded
/// retry and exponential backoff. An error return means the daemon was
/// unreachable or the stream failed on every attempt — the caller decides
/// whether to fall back to a local run (the mao driver does).
MaoStatus clientRun(const ClientOptions &Options, const ServeRequest &Request,
                    ServeResponse &Out);

/// Asks the daemon to finish its accept loop (scripts and tests use this
/// for a deterministic, clean stop).
MaoStatus clientShutdown(const ClientOptions &Options);

} // namespace serve
} // namespace mao

#endif // MAO_SERVE_SERVE_H
