//===- serve/Protocol.cpp - maod wire protocol -------------------------------==//

#include "serve/Protocol.h"

#include "serve/ArtifactCache.h" // fnv1a64
#include "support/FaultInjection.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

using namespace mao;
using namespace mao::serve;

namespace {

constexpr char FrameMagic0 = 'M';
constexpr char FrameMagic1 = 'F';
constexpr size_t FrameHeaderSize = 2 + 1 + 1 + 4 + 8;
constexpr uint32_t RequestSchema = 1;
constexpr uint32_t ResponseSchema = 1;

void appendU32(std::string &Out, uint32_t V) {
  for (unsigned I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void appendU64(std::string &Out, uint64_t V) {
  for (unsigned I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void appendString(std::string &Out, const std::string &S) {
  appendU32(Out, static_cast<uint32_t>(S.size()));
  Out.append(S);
}

bool readU32(const std::string &Bytes, size_t &Pos, uint32_t &Out) {
  if (Pos + 4 > Bytes.size())
    return false;
  Out = 0;
  for (unsigned I = 0; I < 4; ++I)
    Out |= static_cast<uint32_t>(static_cast<unsigned char>(Bytes[Pos + I]))
           << (8 * I);
  Pos += 4;
  return true;
}

bool readString(const std::string &Bytes, size_t &Pos, std::string &Out) {
  uint32_t Len = 0;
  if (!readU32(Bytes, Pos, Len) || Pos + Len > Bytes.size())
    return false;
  Out.assign(Bytes, Pos, Len);
  Pos += Len;
  return true;
}

MaoStatus writeAll(int Fd, const char *Data, size_t Size) {
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::write(Fd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return MaoStatus::error(std::string("frame write failed: ") +
                              std::strerror(errno));
    }
    Done += static_cast<size_t>(N);
  }
  return MaoStatus::success();
}

/// Reads exactly \p Size bytes. \p SawAny reports whether any byte arrived
/// before EOF, which distinguishes an orderly close from a torn frame.
MaoStatus readAll(int Fd, char *Data, size_t Size, bool &SawAny) {
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::read(Fd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return MaoStatus::error(std::string("frame read failed: ") +
                              std::strerror(errno));
    }
    if (N == 0)
      return MaoStatus::error("truncated frame (peer closed mid-frame)");
    Done += static_cast<size_t>(N);
    SawAny = true;
  }
  return MaoStatus::success();
}

} // namespace

MaoStatus mao::serve::writeFrame(int Fd, const Frame &F) {
  std::string Wire;
  Wire.reserve(FrameHeaderSize + F.Payload.size());
  Wire.push_back(FrameMagic0);
  Wire.push_back(FrameMagic1);
  Wire.push_back(static_cast<char>(F.Kind));
  Wire.push_back(0);
  appendU32(Wire, static_cast<uint32_t>(F.Payload.size()));
  appendU64(Wire, fnv1a64(F.Payload));
  Wire.append(F.Payload);
  return writeAll(Fd, Wire.data(), Wire.size());
}

MaoStatus mao::serve::readFrame(int Fd, Frame &Out, bool &CleanEof,
                                size_t MaxPayload) {
  CleanEof = false;
  char Header[FrameHeaderSize];
  bool SawAny = false;
  if (MaoStatus S = readAll(Fd, Header, sizeof(Header), SawAny)) {
    if (!SawAny) {
      CleanEof = true;
      return MaoStatus::success();
    }
    return S;
  }
  if (Header[0] != FrameMagic0 || Header[1] != FrameMagic1)
    return MaoStatus::error("bad frame magic");
  const uint8_t Kind = static_cast<uint8_t>(Header[2]);
  if (Kind < static_cast<uint8_t>(FrameKind::Request) ||
      Kind > static_cast<uint8_t>(FrameKind::Shutdown))
    return MaoStatus::error("unknown frame kind " + std::to_string(Kind));
  uint32_t Len = 0;
  uint64_t Checksum = 0;
  for (unsigned I = 0; I < 4; ++I)
    Len |= static_cast<uint32_t>(static_cast<unsigned char>(Header[4 + I]))
           << (8 * I);
  for (unsigned I = 0; I < 8; ++I)
    Checksum |=
        static_cast<uint64_t>(static_cast<unsigned char>(Header[8 + I]))
        << (8 * I);
  if (Len > MaxPayload)
    return MaoStatus::error("frame payload too large (" +
                            std::to_string(Len) + " bytes)");
  std::string Payload(Len, '\0');
  // Injected truncation: fail exactly as if the peer died mid-send. The
  // stream is unusable afterwards, matching the real failure — callers
  // must close the connection, not retry the read.
  if (Len > 0 && FaultInjector::instance().shouldFail(FaultSite::Frame))
    return MaoStatus::error("truncated frame (injected)");
  if (Len > 0)
    if (MaoStatus S = readAll(Fd, Payload.data(), Len, SawAny))
      return S;
  if (fnv1a64(Payload) != Checksum)
    return MaoStatus::error("frame checksum mismatch");
  Out.Kind = static_cast<FrameKind>(Kind);
  Out.Payload = std::move(Payload);
  return MaoStatus::success();
}

std::string mao::serve::encodeRequest(const ServeRequest &R) {
  std::string Out;
  appendU32(Out, RequestSchema);
  appendString(Out, R.Name);
  appendString(Out, R.Source);
  appendString(Out, R.Pipeline);
  appendString(Out, R.OnError);
  appendString(Out, R.Validate);
  appendU32(Out, R.Jobs);
  appendU32(Out, R.DeadlineMs);
  return Out;
}

MaoStatus mao::serve::decodeRequest(const std::string &Payload,
                                    ServeRequest &Out) {
  size_t Pos = 0;
  uint32_t Schema = 0;
  if (!readU32(Payload, Pos, Schema))
    return MaoStatus::error("request payload too short");
  if (Schema != RequestSchema)
    return MaoStatus::error("unsupported request schema " +
                            std::to_string(Schema));
  if (!readString(Payload, Pos, Out.Name) ||
      !readString(Payload, Pos, Out.Source) ||
      !readString(Payload, Pos, Out.Pipeline) ||
      !readString(Payload, Pos, Out.OnError) ||
      !readString(Payload, Pos, Out.Validate) ||
      !readU32(Payload, Pos, Out.Jobs) ||
      !readU32(Payload, Pos, Out.DeadlineMs))
    return MaoStatus::error("malformed request payload");
  if (Pos != Payload.size())
    return MaoStatus::error("trailing bytes in request payload");
  return MaoStatus::success();
}

std::string mao::serve::encodeResponse(const ServeResponse &R) {
  std::string Out;
  appendU32(Out, ResponseSchema);
  Out.push_back(static_cast<char>(R.Status));
  Out.push_back(R.CacheHit ? 1 : 0);
  appendString(Out, R.Output);
  appendString(Out, R.Report);
  appendString(Out, R.Diagnostic);
  return Out;
}

MaoStatus mao::serve::decodeResponse(const std::string &Payload,
                                     ServeResponse &Out) {
  size_t Pos = 0;
  uint32_t Schema = 0;
  if (!readU32(Payload, Pos, Schema))
    return MaoStatus::error("response payload too short");
  if (Schema != ResponseSchema)
    return MaoStatus::error("unsupported response schema " +
                            std::to_string(Schema));
  if (Pos + 2 > Payload.size())
    return MaoStatus::error("response payload too short");
  const uint8_t Status = static_cast<uint8_t>(Payload[Pos++]);
  if (Status > static_cast<uint8_t>(ServeStatus::Error))
    return MaoStatus::error("bad response status " + std::to_string(Status));
  Out.Status = static_cast<ServeStatus>(Status);
  Out.CacheHit = Payload[Pos++] != 0;
  if (!readString(Payload, Pos, Out.Output) ||
      !readString(Payload, Pos, Out.Report) ||
      !readString(Payload, Pos, Out.Diagnostic))
    return MaoStatus::error("malformed response payload");
  if (Pos != Payload.size())
    return MaoStatus::error("trailing bytes in response payload");
  return MaoStatus::success();
}
