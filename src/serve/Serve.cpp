//===- serve/Serve.cpp - maod engine, server and client ----------------------==//

#include "serve/Serve.h"

#include "support/Stats.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace mao;
using namespace mao::api;
using namespace mao::serve;

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

Engine::Engine(const EngineOptions &EO) : Options(EO) {
  api::Session::Config C;
  // Diagnostics belong in the response, not on the daemon's stderr.
  C.StderrDiagnostics = false;
  S = std::make_unique<api::Session>(C);
  if (!Options.CacheDir.empty())
    // A cache that fails to open degrades to uncached service; the maod
    // main warns once at startup (cacheIsOpen() is false).
    (void)S->cacheOpen(Options.CacheDir, Options.CacheBudgetBytes);
}

Engine::~Engine() = default;

api::Session &Engine::session() { return *S; }

ServeResponse Engine::handle(const ServeRequest &Request) {
  StatsRegistry::instance().counter("serve.requests").add(1);
  ServeResponse Resp;

  // Rung 0: request budget. Refuse before anything allocates
  // proportionally to the payload.
  if (Request.Source.size() > Options.MaxRequestBytes) {
    Resp.Status = ServeStatus::Error;
    Resp.Diagnostic = "request too large: " +
                      std::to_string(Request.Source.size()) + " bytes (cap " +
                      std::to_string(Options.MaxRequestBytes) + ")";
    StatsRegistry::instance().counter("serve.errors").add(1);
    return Resp;
  }

  // Rung 1: a bad pipeline spelling is a structured client error.
  CachedRunRequest Run;
  if (!Request.Pipeline.empty()) {
    if (Status St = api::Session::parsePipelineSpec(Request.Pipeline, Run.Pipeline);
        !St.Ok) {
      Resp.Status = ServeStatus::Error;
      Resp.Diagnostic = St.Message;
      StatsRegistry::instance().counter("serve.errors").add(1);
      return Resp;
    }
  }
  Run.Source = Request.Source;
  if (!Request.Name.empty())
    Run.Name = Request.Name;
  Run.Options.OnError =
      Request.OnError.empty() ? std::string("rollback") : Request.OnError;
  Run.Options.Validate =
      Request.Validate.empty() ? std::string("off") : Request.Validate;
  Run.Options.CollectStats = true;
  unsigned Jobs = Request.Jobs == 0 ? 1u : Request.Jobs;
  if (Options.MaxJobs != 0 && Jobs > Options.MaxJobs)
    Jobs = Options.MaxJobs;
  Run.Options.Jobs = Jobs;
  const uint32_t Deadline =
      Request.DeadlineMs != 0 ? Request.DeadlineMs : Options.DefaultDeadlineMs;
  Run.Options.PassTimeoutMs = static_cast<long>(Deadline);

  // Rung 2: the pipeline's own OnError machinery (rollback/skip) absorbs
  // individual pass failures inside cacheRun.
  CachedRunResult Result;
  Status St = Status::success();
  try {
    St = S->cacheRun(Run, Result);
  } catch (const std::exception &E) {
    St = Status::error(std::string("internal error: ") + E.what());
  } catch (...) {
    St = Status::error("internal error");
  }
  if (St.Ok) {
    Resp.Status = ServeStatus::Ok;
    Resp.CacheHit = Result.CacheHit;
    Resp.Output = std::move(Result.Output);
    Resp.Report = std::move(Result.ReportJson);
    Resp.Diagnostic = std::move(Result.Diagnostic);
    if (Resp.CacheHit)
      StatsRegistry::instance().counter("serve.cache_hits").add(1);
    return Resp;
  }

  // Rung 3: input that does not even parse gets a structured error (no
  // bytes of ours could be "correct" for it) ...
  Program Probe;
  if (Status ParseSt = S->parseText(Request.Source, Run.Name, Probe);
      !ParseSt.Ok) {
    Resp.Status = ServeStatus::Error;
    Resp.Diagnostic = St.Message;
    StatsRegistry::instance().counter("serve.errors").add(1);
    return Resp;
  }

  // ... while a failed optimization of valid input bottoms out at identity
  // passthrough: the input is a correct (if unoptimized) answer, and the
  // worker lives on.
  Resp.Status = ServeStatus::DegradedIdentity;
  Resp.Output = Request.Source;
  Resp.Diagnostic = St.Message;
  StatsRegistry::instance().counter("serve.degraded").add(1);
  return Resp;
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Server(const ServerOptions &SO) : Options(SO) {}

bool Server::serveStream(Engine &E, int InFd, int OutFd) {
  while (true) {
    Frame F;
    bool CleanEof = false;
    if (MaoStatus S = readFrame(InFd, F, CleanEof)) {
      // Torn frame, bad magic, checksum mismatch: the stream boundary is
      // lost, so answer (best-effort) and drop the connection. The client
      // retries on a fresh one.
      (void)writeFrame(OutFd, Frame{FrameKind::Error, S.message()});
      return true;
    }
    if (CleanEof)
      return true;
    if (F.Kind == FrameKind::Shutdown)
      return false;
    if (F.Kind != FrameKind::Request) {
      (void)writeFrame(OutFd,
                       Frame{FrameKind::Error, "unexpected frame kind"});
      return true;
    }
    ServeRequest Req;
    if (MaoStatus S = decodeRequest(F.Payload, Req)) {
      // Frame boundaries are intact, so a malformed payload only costs
      // this one request; keep serving the connection.
      (void)writeFrame(OutFd, Frame{FrameKind::Error, S.message()});
      continue;
    }
    ServeResponse Resp = E.handle(Req);
    const uint64_t Served = Requests.fetch_add(1) + 1;
    if (writeFrame(OutFd, Frame{FrameKind::Response, encodeResponse(Resp)}))
      return true;
    if (Options.MaxRequests != 0 && Served >= Options.MaxRequests)
      return false;
  }
}

MaoStatus Server::runOnFds(int InFd, int OutFd) {
  Engine E(Options.Engine);
  (void)serveStream(E, InFd, OutFd);
  return MaoStatus::success();
}

MaoStatus Server::run() {
  const std::string &Path = Options.SocketPath;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return MaoStatus::error("bad socket path '" + Path + "'");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return MaoStatus::error(std::string("socket: ") + std::strerror(errno));
  // A previous daemon's stale socket file would make bind fail; it is
  // dead (nothing accepts on it), so replace it.
  ::unlink(Path.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    const int E = errno;
    ::close(Fd);
    return MaoStatus::error("bind " + Path + ": " + std::strerror(E));
  }
  if (::listen(Fd, 64) < 0) {
    const int E = errno;
    ::close(Fd);
    ::unlink(Path.c_str());
    return MaoStatus::error("listen " + Path + ": " + std::strerror(E));
  }
  ListenFd.store(Fd, std::memory_order_release);

  std::mutex WorkersM;
  std::vector<std::thread> Workers;
  while (!Stop.load(std::memory_order_acquire)) {
    int Conn = ::accept(Fd, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      break; // requestStop() shut the listener down.
    }
    std::lock_guard<std::mutex> Lock(WorkersM);
    Workers.emplace_back([this, Conn] {
      // Each connection gets its own Engine: its own Session and its own
      // handle on the shared cache directory (safe — entries only become
      // visible through atomic renames).
      Engine E(Options.Engine);
      const bool KeepGoing = serveStream(E, Conn, Conn);
      ::close(Conn);
      if (!KeepGoing)
        requestStop();
    });
  }

  requestStop();
  // Snapshot under the lock; no new workers can start once the listener
  // is down.
  std::vector<std::thread> ToJoin;
  {
    std::lock_guard<std::mutex> Lock(WorkersM);
    ToJoin.swap(Workers);
  }
  for (std::thread &T : ToJoin)
    T.join();
  ::unlink(Path.c_str());
  return MaoStatus::success();
}

void Server::requestStop() {
  Stop.store(true, std::memory_order_release);
  const int Fd = ListenFd.exchange(-1, std::memory_order_acq_rel);
  if (Fd >= 0) {
    // shutdown() wakes a thread blocked in accept(); close() alone is not
    // guaranteed to. Both calls are async-signal-safe, so this doubles as
    // the SIGINT/SIGTERM path in maod.
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }
}

//===----------------------------------------------------------------------===//
// Client
//===----------------------------------------------------------------------===//

namespace {

MaoStatus connectTo(const std::string &Path, int &OutFd) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return MaoStatus::error("bad socket path '" + Path + "'");
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return MaoStatus::error(std::string("socket: ") + std::strerror(errno));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    const int E = errno;
    ::close(Fd);
    return MaoStatus::error("connect " + Path + ": " + std::strerror(E));
  }
  OutFd = Fd;
  return MaoStatus::success();
}

/// One connect → request → response round trip.
MaoStatus tryOnce(const std::string &Path, const ServeRequest &Request,
                  ServeResponse &Out) {
  int Fd = -1;
  if (MaoStatus S = connectTo(Path, Fd))
    return S;
  struct Closer {
    int Fd;
    ~Closer() { ::close(Fd); }
  } C{Fd};
  if (MaoStatus S =
          writeFrame(Fd, Frame{FrameKind::Request, encodeRequest(Request)}))
    return S;
  Frame F;
  bool CleanEof = false;
  if (MaoStatus S = readFrame(Fd, F, CleanEof))
    return S;
  if (CleanEof)
    return MaoStatus::error("daemon closed the connection before replying");
  if (F.Kind == FrameKind::Error)
    return MaoStatus::error("daemon error: " + F.Payload);
  if (F.Kind != FrameKind::Response)
    return MaoStatus::error("unexpected frame kind from daemon");
  return decodeResponse(F.Payload, Out);
}

} // namespace

MaoStatus mao::serve::clientRun(const ClientOptions &Options,
                                const ServeRequest &Request,
                                ServeResponse &Out) {
  const unsigned Attempts = Options.Attempts == 0 ? 1 : Options.Attempts;
  MaoStatus Last = MaoStatus::error("no attempts made");
  for (unsigned Try = 0; Try < Attempts; ++Try) {
    if (Try != 0 && !Options.Deterministic) {
      const unsigned DelayMs = Options.BackoffMs << (Try - 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    }
    Last = tryOnce(Options.SocketPath, Request, Out);
    if (Last.ok())
      return Last;
  }
  return MaoStatus::error("daemon unreachable after " +
                          std::to_string(Attempts) +
                          " attempts: " + Last.message());
}

MaoStatus mao::serve::clientShutdown(const ClientOptions &Options) {
  int Fd = -1;
  if (MaoStatus S = connectTo(Options.SocketPath, Fd))
    return S;
  MaoStatus S = writeFrame(Fd, Frame{FrameKind::Shutdown, ""});
  ::close(Fd);
  return S;
}
