//===- serve/ArtifactCache.cpp - Crash-safe persistent cache -----------------==//

#include "serve/ArtifactCache.h"

#include "support/FaultInjection.h"
#include "support/Stats.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <sys/stat.h>
#include <unistd.h>

using namespace mao;
using namespace mao::serve;

namespace fs = std::filesystem;

uint64_t mao::serve::fnv1a64(std::string_view Data, uint64_t Hash) {
  constexpr uint64_t Prime = 0x100000001b3ULL;
  for (unsigned char C : Data)
    Hash = (Hash ^ C) * Prime;
  return Hash;
}

namespace {

constexpr char EntryMagic[4] = {'M', 'A', 'O', 'A'};
constexpr uint32_t EntryVersion = 1;
constexpr size_t MaxSectionCount = 64;
constexpr uint64_t MaxSectionBytes = 1ULL << 32;

void appendU32(std::string &Out, uint32_t V) {
  for (unsigned I = 0; I < 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void appendU64(std::string &Out, uint64_t V) {
  for (unsigned I = 0; I < 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

bool readU32(std::string_view Bytes, size_t &Pos, uint32_t &Out) {
  if (Pos + 4 > Bytes.size())
    return false;
  Out = 0;
  for (unsigned I = 0; I < 4; ++I)
    Out |= static_cast<uint32_t>(static_cast<unsigned char>(Bytes[Pos + I]))
           << (8 * I);
  Pos += 4;
  return true;
}

bool readU64(std::string_view Bytes, size_t &Pos, uint64_t &Out) {
  if (Pos + 8 > Bytes.size())
    return false;
  Out = 0;
  for (unsigned I = 0; I < 8; ++I)
    Out |= static_cast<uint64_t>(static_cast<unsigned char>(Bytes[Pos + I]))
           << (8 * I);
  Pos += 8;
  return true;
}

std::string keyFileName(uint64_t Key) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx.mao",
                static_cast<unsigned long long>(Key));
  return Buf;
}

/// Reads the whole file at \p Path. Returns false when it cannot be read
/// (ENOENT is the common, benign case). On success, an armed CacheRead
/// fault flips one bit in the middle of the buffer — deterministic
/// corruption the checksum trailer must catch.
bool readEntryFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  Out.clear();
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  const bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  if (!Ok)
    return false;
  if (!Out.empty() &&
      FaultInjector::instance().shouldFail(FaultSite::CacheRead))
    Out[Out.size() / 2] ^= 0x01;
  return true;
}

/// Writes \p Data to \p Path crash-safely: unique temp file in the same
/// directory, full write, fsync, atomic rename, directory fsync. An armed
/// FsWrite fault truncates the write half way (the temp file is removed
/// and an error returned — exactly what a caller sees when the disk fills
/// or a signal lands mid-write); an armed FsRename fault fails the publish
/// step the same way.
MaoStatus writeFileAtomic(const std::string &Dir, const std::string &Path,
                          const std::string &TmpPath,
                          const std::string &Data) {
  int Fd = ::open(TmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    return MaoStatus::error("cannot create temp file " + TmpPath + ": " +
                            std::strerror(errno));
  size_t ToWrite = Data.size();
  bool Injected = false;
  if (FaultInjector::instance().shouldFail(FaultSite::FsWrite)) {
    ToWrite /= 2; // Simulate a writer cut down mid-write.
    Injected = true;
  }
  size_t Done = 0;
  while (Done < ToWrite) {
    ssize_t N = ::write(Fd, Data.data() + Done, ToWrite - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      ::unlink(TmpPath.c_str());
      return MaoStatus::error("write failed for " + TmpPath + ": " +
                              std::strerror(errno));
    }
    Done += static_cast<size_t>(N);
  }
  if (Injected) {
    ::close(Fd);
    ::unlink(TmpPath.c_str());
    return MaoStatus::error("short write on " + TmpPath + " (injected)");
  }
  if (::fsync(Fd) != 0) {
    ::close(Fd);
    ::unlink(TmpPath.c_str());
    return MaoStatus::error("fsync failed for " + TmpPath + ": " +
                            std::strerror(errno));
  }
  if (::close(Fd) != 0) {
    ::unlink(TmpPath.c_str());
    return MaoStatus::error("close failed for " + TmpPath + ": " +
                            std::strerror(errno));
  }
  if (FaultInjector::instance().shouldFail(FaultSite::FsRename)) {
    ::unlink(TmpPath.c_str());
    return MaoStatus::error("rename to " + Path + " failed (injected)");
  }
  if (::rename(TmpPath.c_str(), Path.c_str()) != 0) {
    ::unlink(TmpPath.c_str());
    return MaoStatus::error("rename to " + Path + " failed: " +
                            std::strerror(errno));
  }
  // Persist the directory entry so the publish survives a host crash.
  // Best-effort: a failure here cannot un-publish the atomic rename.
  int DirFd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (DirFd >= 0) {
    (void)::fsync(DirFd);
    ::close(DirFd);
  }
  return MaoStatus::success();
}

} // namespace

std::string ArtifactCache::serializeEntry(uint64_t Key,
                                          const CacheEntry &Entry) {
  std::string Out;
  Out.append(EntryMagic, sizeof(EntryMagic));
  appendU32(Out, EntryVersion);
  appendU64(Out, Key);
  appendU32(Out, static_cast<uint32_t>(Entry.Sections.size()));
  for (const auto &[Name, Data] : Entry.Sections) {
    appendU32(Out, static_cast<uint32_t>(Name.size()));
    Out.append(Name);
    appendU64(Out, Data.size());
    Out.append(Data);
  }
  appendU64(Out, fnv1a64(Out));
  return Out;
}

MaoStatus ArtifactCache::parseEntry(std::string_view Bytes,
                                    uint64_t ExpectedKey, CacheEntry &Out) {
  // The trailer first: a checksum mismatch subsumes most torn-entry
  // shapes, but every bounds check below still guards against adversarial
  // lengths in a file whose trailer happens to validate.
  if (Bytes.size() < sizeof(EntryMagic) + 4 + 8 + 4 + 8)
    return MaoStatus::error("entry too short");
  const std::string_view Body = Bytes.substr(0, Bytes.size() - 8);
  size_t Pos = Bytes.size() - 8;
  uint64_t Trailer = 0;
  (void)readU64(Bytes, Pos, Trailer);
  if (fnv1a64(Body) != Trailer)
    return MaoStatus::error("checksum mismatch");
  if (std::memcmp(Body.data(), EntryMagic, sizeof(EntryMagic)) != 0)
    return MaoStatus::error("bad magic");
  Pos = sizeof(EntryMagic);
  uint32_t Version = 0;
  if (!readU32(Body, Pos, Version) || Version != EntryVersion)
    return MaoStatus::error("unsupported entry version");
  uint64_t Key = 0;
  if (!readU64(Body, Pos, Key) || Key != ExpectedKey)
    return MaoStatus::error("key mismatch");
  uint32_t NumSections = 0;
  if (!readU32(Body, Pos, NumSections) || NumSections > MaxSectionCount)
    return MaoStatus::error("bad section count");
  Out.Sections.clear();
  for (uint32_t I = 0; I < NumSections; ++I) {
    uint32_t NameLen = 0;
    if (!readU32(Body, Pos, NameLen) || Pos + NameLen > Body.size())
      return MaoStatus::error("truncated section name");
    std::string Name(Body.substr(Pos, NameLen));
    Pos += NameLen;
    uint64_t DataLen = 0;
    if (!readU64(Body, Pos, DataLen) || DataLen > MaxSectionBytes ||
        Pos + DataLen > Body.size())
      return MaoStatus::error("truncated section data");
    Out.Sections.emplace_back(std::move(Name),
                              std::string(Body.substr(Pos, DataLen)));
    Pos += DataLen;
  }
  if (Pos != Body.size())
    return MaoStatus::error("trailing bytes after sections");
  return MaoStatus::success();
}

MaoStatus ArtifactCache::open(const std::string &Dir) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec)
    return MaoStatus::error("cannot create cache directory " + Dir + ": " +
                            Ec.message());
  if (!fs::is_directory(Dir, Ec))
    return MaoStatus::error("cache path is not a directory: " + Dir);
  Root = Dir;
  StaleTmp.fetch_add(sweepStaleTmp(), std::memory_order_relaxed);
  recountEntries();
  // A budget set before open() applies to whatever the directory already
  // holds — reopening an over-budget cache trims it immediately.
  enforceBudget();
  return MaoStatus::success();
}

void ArtifactCache::setByteBudget(uint64_t Bytes) {
  BudgetBytes.store(Bytes, std::memory_order_relaxed);
}

uint64_t ArtifactCache::byteBudget() const {
  return BudgetBytes.load(std::memory_order_relaxed);
}

unsigned ArtifactCache::enforceBudget() {
  const uint64_t Budget = BudgetBytes.load(std::memory_order_relaxed);
  if (Budget == 0 || !isOpen())
    return 0;
  struct Candidate {
    fs::file_time_type Mtime;
    std::string Name; ///< Tiebreak for equal mtimes: deterministic order.
    uint64_t Size;
  };
  std::vector<Candidate> Files;
  uint64_t Total = 0;
  std::error_code Ec;
  for (const auto &DirEntry : fs::directory_iterator(Root, Ec)) {
    if (DirEntry.path().extension() != ".mao")
      continue;
    std::error_code SizeEc, TimeEc;
    const uint64_t Size = DirEntry.file_size(SizeEc);
    const fs::file_time_type Mtime = DirEntry.last_write_time(TimeEc);
    if (SizeEc || TimeEc)
      continue; // Raced with an unlink: the entry no longer counts.
    Total += Size;
    Files.push_back({Mtime, DirEntry.path().filename().string(), Size});
  }
  if (Total <= Budget)
    return 0;
  std::sort(Files.begin(), Files.end(),
            [](const Candidate &A, const Candidate &B) {
              if (A.Mtime != B.Mtime)
                return A.Mtime < B.Mtime;
              return A.Name < B.Name;
            });
  unsigned Removed = 0;
  for (const Candidate &C : Files) {
    if (Total <= Budget)
      break;
    // An unlink is atomic: the entry is either still whole or gone, so a
    // crash anywhere in this loop leaves a consistent (if oversized)
    // cache that the next store or open() keeps trimming.
    std::error_code RmEc;
    if (!fs::remove(fs::path(Root) / C.Name, RmEc) || RmEc)
      continue; // Another evictor beat us to it; its accounting wins.
    Total -= C.Size;
    ++Removed;
  }
  if (Removed) {
    Evicted.fetch_add(Removed, std::memory_order_relaxed);
    StatsRegistry::instance().counter("serve.cache_evictions").add(Removed);
    // Saturating subtract: concurrent evictors never drive Entries below
    // zero (each entry leaves the directory exactly once).
    uint64_t Count = Entries.load(std::memory_order_relaxed);
    while (!Entries.compare_exchange_weak(
        Count, Count - std::min<uint64_t>(Count, Removed),
        std::memory_order_relaxed))
      ;
    // Persist the unlinks so the trim survives a host crash.
    int DirFd = ::open(Root.c_str(), O_RDONLY | O_DIRECTORY);
    if (DirFd >= 0) {
      (void)::fsync(DirFd);
      ::close(DirFd);
    }
  }
  return Removed;
}

std::string ArtifactCache::entryPath(uint64_t Key) const {
  return Root + "/" + keyFileName(Key);
}

bool ArtifactCache::lookup(uint64_t Key, CacheEntry &Out) {
  if (!isOpen())
    return false;
  const std::string Path = entryPath(Key);
  std::string Bytes;
  if (!readEntryFile(Path, Bytes)) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (MaoStatus S = parseEntry(Bytes, Key, Out)) {
    quarantine(Path);
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

MaoStatus ArtifactCache::store(uint64_t Key, const CacheEntry &Entry) {
  if (!isOpen())
    return MaoStatus::error("artifact cache is not open");
  const std::string Path = entryPath(Key);
  // Unique per (process, instance, call): concurrent writers — including
  // other processes sharing the directory — never collide on the temp
  // name, and the publish itself is an atomic rename either way.
  const std::string Tmp =
      Path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(TmpSeq.fetch_add(1, std::memory_order_relaxed));
  MaoStatus S = writeFileAtomic(Root, Path, Tmp, serializeEntry(Key, Entry));
  if (S) {
    StoreFailures.fetch_add(1, std::memory_order_relaxed);
    return S;
  }
  Stores.fetch_add(1, std::memory_order_relaxed);
  Entries.fetch_add(1, std::memory_order_relaxed);
  // Enforce the byte budget after publishing: the just-stored entry is
  // the newest and so the last eviction candidate (unless it alone
  // exceeds the budget, in which case evicting it is still correct —
  // the caller holds the computed result regardless).
  enforceBudget();
  return MaoStatus::success();
}

void ArtifactCache::quarantine(const std::string &Path) {
  std::error_code Ec;
  const fs::path Dir = fs::path(Root) / "quarantine";
  fs::create_directories(Dir, Ec);
  const fs::path Dest = Dir / fs::path(Path).filename();
  fs::rename(Path, Dest, Ec);
  if (Ec) // Can't move it aside: remove it so it cannot be re-read.
    fs::remove(Path, Ec);
  Quarantines.fetch_add(1, std::memory_order_relaxed);
  // The entry left the cache directory either way.
  uint64_t Count = Entries.load(std::memory_order_relaxed);
  while (Count > 0 &&
         !Entries.compare_exchange_weak(Count, Count - 1,
                                        std::memory_order_relaxed))
    ;
}

unsigned ArtifactCache::sweepStaleTmp() {
  unsigned Removed = 0;
  std::error_code Ec;
  for (const auto &DirEntry : fs::directory_iterator(Root, Ec)) {
    const std::string Name = DirEntry.path().filename().string();
    if (Name.find(".tmp.") != std::string::npos) {
      std::error_code RmEc;
      if (fs::remove(DirEntry.path(), RmEc))
        ++Removed;
    }
  }
  return Removed;
}

void ArtifactCache::recountEntries() {
  uint64_t Count = 0;
  std::error_code Ec;
  for (const auto &DirEntry : fs::directory_iterator(Root, Ec))
    if (DirEntry.path().extension() == ".mao")
      ++Count;
  Entries.store(Count, std::memory_order_relaxed);
}

unsigned ArtifactCache::fsck() {
  if (!isOpen())
    return 0;
  StaleTmp.fetch_add(sweepStaleTmp(), std::memory_order_relaxed);
  unsigned Quarantined = 0;
  std::error_code Ec;
  std::vector<fs::path> EntryFiles;
  for (const auto &DirEntry : fs::directory_iterator(Root, Ec))
    if (DirEntry.path().extension() == ".mao")
      EntryFiles.push_back(DirEntry.path());
  for (const fs::path &Path : EntryFiles) {
    // The file name is the key; a mis-named entry fails the key check and
    // is quarantined like any other corruption.
    uint64_t Key = 0;
    const std::string Stem = Path.stem().string();
    char *End = nullptr;
    Key = std::strtoull(Stem.c_str(), &End, 16);
    std::string Bytes;
    CacheEntry Entry;
    const bool Readable = readEntryFile(Path.string(), Bytes);
    if (!Readable || Stem.size() != 16 || *End != '\0' ||
        parseEntry(Bytes, Key, Entry)) {
      quarantine(Path.string());
      ++Quarantined;
    }
  }
  recountEntries();
  return Quarantined;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  Stats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Stores = Stores.load(std::memory_order_relaxed);
  S.StoreFailures = StoreFailures.load(std::memory_order_relaxed);
  S.Quarantines = Quarantines.load(std::memory_order_relaxed);
  S.StaleTmpRemoved = StaleTmp.load(std::memory_order_relaxed);
  S.Evictions = Evicted.load(std::memory_order_relaxed);
  S.Entries = Entries.load(std::memory_order_relaxed);
  return S;
}
