//===- serve/Protocol.h - maod wire protocol --------------------*- C++ -*-===//
///
/// \file
/// The length-prefixed framing protocol between `mao --connect` and the
/// `maod` daemon, over a stream fd (unix socket or a stdin/stdout pair).
///
/// Wire format of one frame (all integers little-endian):
///
///   "MF"  u8 kind  u8 zero  u32 payload-len  u64 fnv1a(payload)  payload
///
/// The explicit length makes truncation detectable (a peer that dies
/// mid-send leaves a short read, never a half-interpreted message) and the
/// per-frame checksum catches corruption in transit; both failure shapes
/// are deterministically injectable via FaultSite::Frame so ServeTest and
/// `maofuzz --serve` exercise the recovery paths without a flaky peer.
///
/// Payloads are schema-versioned structs serialized with the same
/// bounds-checked length-prefixed primitives as the artifact cache. A
/// malformed payload is a structured decode error, never UB: every read
/// is bounds-checked and every variable length is capped.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SERVE_PROTOCOL_H
#define MAO_SERVE_PROTOCOL_H

#include "support/Status.h"

#include <cstdint>
#include <string>

namespace mao {
namespace serve {

/// Frame kinds. Error carries a human-readable message payload; Shutdown
/// asks the server to finish its accept loop (used by scripts and tests
/// for a deterministic, clean stop).
enum class FrameKind : uint8_t {
  Request = 1,
  Response = 2,
  Error = 3,
  Shutdown = 4,
};

struct Frame {
  FrameKind Kind = FrameKind::Error;
  std::string Payload;
};

/// Hard cap on payload size (default 64 MiB): a malformed or malicious
/// length prefix must not drive the server into allocating unbounded
/// memory. Servers may configure a tighter cap per request.
constexpr size_t MaxFramePayload = 64ULL << 20;

/// Writes one frame to \p Fd, handling partial writes. Returns an error on
/// any I/O failure (the peer sees a truncated frame and recovers on its
/// side; this side's stream is unusable afterwards).
MaoStatus writeFrame(int Fd, const Frame &F);

/// Reads one frame from \p Fd. Outcomes:
///   * ok, CleanEof=false — a verified frame in \p Out,
///   * ok, CleanEof=true  — orderly EOF before any byte (peer closed),
///   * error              — truncated frame, bad magic, oversized length,
///                          or checksum mismatch (including an injected
///                          FaultSite::Frame truncation).
MaoStatus readFrame(int Fd, Frame &Out, bool &CleanEof,
                    size_t MaxPayload = MaxFramePayload);

/// One optimization request. Pipeline carries the canonical registry
/// spelling ("zee,sched(window=8)"); the key-relevant execution options
/// ride along so the server reproduces exactly what a local run would do.
struct ServeRequest {
  std::string Name;     ///< Input name for diagnostics ("a.s").
  std::string Source;   ///< Verbatim assembly text.
  std::string Pipeline; ///< Canonical pipeline spec (may be empty).
  std::string OnError = "rollback";
  std::string Validate = "off";
  uint32_t Jobs = 1;       ///< Worker count; never affects output bytes.
  uint32_t DeadlineMs = 0; ///< Per-request budget (0 = server default).
};

/// Request disposition, the top rung first. DegradedIdentity means the
/// degradation ladder bottomed out: the payload is the input passed
/// through unchanged, plus a structured diagnostic — a correct (if
/// unoptimized) result, never a dead worker or wrong bytes.
enum class ServeStatus : uint8_t {
  Ok = 0,
  DegradedIdentity = 1,
  Error = 2,
};

struct ServeResponse {
  ServeStatus Status = ServeStatus::Error;
  bool CacheHit = false;
  std::string Output;     ///< Optimized (or passed-through) assembly.
  std::string Report;     ///< Per-run report JSON (non-timing sections).
  std::string Diagnostic; ///< Human-readable detail for non-Ok statuses.
};

std::string encodeRequest(const ServeRequest &R);
MaoStatus decodeRequest(const std::string &Payload, ServeRequest &Out);
std::string encodeResponse(const ServeResponse &R);
MaoStatus decodeResponse(const std::string &Payload, ServeResponse &Out);

} // namespace serve
} // namespace mao

#endif // MAO_SERVE_PROTOCOL_H
