//===- serve/ArtifactCache.h - Crash-safe persistent cache ------*- C++ -*-===//
///
/// \file
/// A content-addressed on-disk cache of optimization artifacts: the
/// optimized output text and its per-run report, keyed by a 64-bit FNV-1a
/// over (input bytes, canonical pipeline config, pass/option versions).
/// One entry is one file `<16-hex-digit-key>.mao` in the cache directory.
///
/// Crash safety is the design center — a build farm pointing thousands of
/// concurrent compile jobs at a shared cache directory must never read a
/// torn entry, and a writer killed at any instruction must never leave the
/// cache in a state that serves wrong bytes:
///
///   * Writes go to a uniquely named temp file in the same directory,
///     are fsync'd, and become visible only through an atomic rename(2);
///     the directory is fsync'd after the rename so the entry survives a
///     host crash too. A writer killed mid-write leaves only a stale
///     `*.tmp.*` file, which open() and fsck() sweep.
///   * Every entry carries a magic/version header, its own key, and an
///     FNV-1a checksum trailer over all preceding bytes. lookup() verifies
///     all of them; a torn, truncated, or bit-flipped entry is moved into
///     the `quarantine/` subdirectory (never silently deleted — operators
///     can inspect it) and reported as a miss, so the caller recomputes.
///   * A cache hit is byte-identical to a recompute by construction: the
///     payload is the exact output of the optimization that stored it, and
///     the determinism contracts of the pipeline (byte-identical output
///     for every --mao-jobs value) make the recompute reproduce it.
///
/// The filesystem fault domain of support/FaultInjection (short writes,
/// rename failures, read-side bit flips) is wired through writeFileAtomic
/// and readEntryFile, so every recovery path here is deterministically
/// testable (ServeTest, maofuzz --serve).
///
/// Thread/process safety: all methods are safe to call concurrently from
/// multiple threads and multiple processes sharing one directory. Distinct
/// writers of the same key race benignly — both values are identical by
/// construction (content-addressing), and rename is atomic either way.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SERVE_ARTIFACTCACHE_H
#define MAO_SERVE_ARTIFACTCACHE_H

#include "support/Status.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mao {
namespace serve {

/// 64-bit FNV-1a over \p Data folded into \p Hash (chainable).
uint64_t fnv1a64(std::string_view Data,
                 uint64_t Hash = 0xcbf29ce484222325ULL);

/// One cached artifact: named payload sections ("output", "report", ...).
/// Section order is part of the serialized format and preserved.
struct CacheEntry {
  std::vector<std::pair<std::string, std::string>> Sections;

  const std::string *find(std::string_view Name) const {
    for (const auto &[N, V] : Sections)
      if (N == Name)
        return &V;
    return nullptr;
  }
  void set(std::string Name, std::string Value) {
    Sections.emplace_back(std::move(Name), std::move(Value));
  }
};

class ArtifactCache {
public:
  /// Exact counters, safe to read concurrently. Quarantines counts entries
  /// moved aside by lookup() or fsck(); StaleTmpRemoved counts leftover
  /// temp files from crashed writers swept by open() or fsck().
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Stores = 0;
    uint64_t StoreFailures = 0;
    uint64_t Quarantines = 0;
    uint64_t StaleTmpRemoved = 0;
    uint64_t Evictions = 0; ///< Entries removed to honour the byte budget.
    uint64_t Entries = 0; ///< *.mao files present at the last open()/fsck().
  };

  ArtifactCache() = default;
  ArtifactCache(const ArtifactCache &) = delete;
  ArtifactCache &operator=(const ArtifactCache &) = delete;

  /// Opens (creating if needed) the cache rooted at \p Dir and sweeps
  /// stale temp files left by crashed writers. Idempotent. When a byte
  /// budget is set, an over-budget directory is trimmed on open too.
  MaoStatus open(const std::string &Dir);

  /// Caps the total bytes of visible entries; 0 (the default) means
  /// unbounded. A store that pushes the cache over the budget evicts the
  /// oldest entries (by modification time, file name as tiebreak) until
  /// the total fits again. Eviction is a sequence of atomic unlinks plus
  /// a directory fsync — a writer killed mid-evict leaves a smaller but
  /// fully consistent cache, never a corrupt one, and the next store or
  /// open() resumes trimming. May be called before or after open().
  void setByteBudget(uint64_t Bytes);
  uint64_t byteBudget() const;

  bool isOpen() const { return !Root.empty(); }
  const std::string &directory() const { return Root; }

  /// Looks \p Key up. Returns true and fills \p Out on a verified hit;
  /// returns false on a miss. A present-but-corrupt entry (bad magic,
  /// short file, checksum mismatch, key mismatch) is quarantined and
  /// reported as a miss — corruption can never surface as data.
  bool lookup(uint64_t Key, CacheEntry &Out);

  /// Stores \p Entry under \p Key crash-safely (temp + fsync + atomic
  /// rename + directory fsync). On failure the cache directory is left
  /// exactly as it was (modulo a removed temp file); callers treat a
  /// store failure as a diagnostic, not an error — the computed result
  /// they hold is still valid.
  MaoStatus store(uint64_t Key, const CacheEntry &Entry);

  /// Validates every entry in the cache, quarantining corrupt ones and
  /// sweeping stale temp files. Returns the number of quarantined
  /// entries. Used by `maod --fsck-cache` and the crash-recovery test.
  unsigned fsck();

  Stats stats() const;

  /// The on-disk path an entry for \p Key lives at (for tests).
  std::string entryPath(uint64_t Key) const;

  /// Serializes / parses the on-disk entry format (exposed for tests).
  /// Format: "MAOA" u32 version, u64 key, u32 nsections, per section
  /// {u32 name-len, name, u64 data-len, data}, u64 FNV-1a trailer over
  /// every preceding byte.
  static std::string serializeEntry(uint64_t Key, const CacheEntry &Entry);
  static MaoStatus parseEntry(std::string_view Bytes, uint64_t ExpectedKey,
                              CacheEntry &Out);

private:
  /// Moves the (corrupt) entry at \p Path into quarantine/ and counts it.
  void quarantine(const std::string &Path);
  /// Removes `*.tmp.*` files under Root; returns how many were removed.
  unsigned sweepStaleTmp();
  /// Re-counts `*.mao` entries into the Entries stat.
  void recountEntries();
  /// Evicts oldest entries until the cache fits the byte budget (no-op
  /// when no budget is set). Returns the number of evicted entries.
  unsigned enforceBudget();

  std::string Root;
  std::atomic<uint64_t> BudgetBytes{0};
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Stores{0};
  std::atomic<uint64_t> StoreFailures{0};
  std::atomic<uint64_t> Quarantines{0};
  std::atomic<uint64_t> StaleTmp{0};
  std::atomic<uint64_t> Evicted{0};
  std::atomic<uint64_t> Entries{0};
  std::atomic<uint64_t> TmpSeq{0}; ///< Uniquifies temp names per instance.
};

} // namespace serve
} // namespace mao

#endif // MAO_SERVE_ARTIFACTCACHE_H
