//===- detect/Detect.h - Micro-architectural parameter detection -*- C++ -*-===//
///
/// \file
/// The paper's Sec. IV framework "to simplify the creation and execution of
/// microbenchmarks", built from the same five abstractions the paper
/// implements as Python classes — Processor, Instruction(Template),
/// InstructionSequence, Loop, Benchmark — plus the case studies it
/// motivates. Where the paper runs generated assembly "on a host with the
/// specified target processor in isolation" and reads PMU counters, this
/// reproduction assembles through the MAO pipeline and executes on the
/// micro-architectural simulator; the detection logic itself is black-box
/// and recovers the machine's parameters purely from counter measurements.
///
/// Case studies:
///  - instruction latency via a CYCLE dependence chain (the paper's Fig. 6)
///  - decode-line size, LSD capacity, branch-predictor index shift, and
///    forwarding bandwidth (the cliffs behind Sec. III's passes)
///
//===----------------------------------------------------------------------===//

#ifndef MAO_DETECT_DETECT_H
#define MAO_DETECT_DETECT_H

#include "support/Random.h"
#include "support/Status.h"
#include "uarch/ProcessorConfig.h"
#include "uarch/UarchSim.h"
#include "x86/Registers.h"

#include <map>
#include <string>
#include <vector>

namespace mao {

/// The target machine abstraction: registers usable by generated code and
/// the measurement backend ("execute in isolation, collect PMU counters").
class DetectProcessor {
public:
  explicit DetectProcessor(ProcessorConfig Config);

  const ProcessorConfig &config() const { return Config; }
  const std::vector<std::string> &intRegisters() const { return IntRegs; }

  /// Supported PMU event names.
  static constexpr const char *CpuCycles = "CPU_CYCLES";
  static constexpr const char *Instructions = "INST_RETIRED";
  static constexpr const char *LsdUops = "LSD_UOPS";
  static constexpr const char *BrMispredicted = "BR_MISP";
  static constexpr const char *RsFullStalls = "RESOURCE_STALLS:RS_FULL";
  static constexpr const char *DecodeLines = "DECODE_LINES";
  static constexpr const char *L1IMisses = "L1I_MISS";
  static constexpr const char *ItlbMisses = "ITLB_MISS";

private:
  ProcessorConfig Config;
  std::vector<std::string> IntRegs;
};

/// Dependence-graph shapes for generated sequences (paper Sec. IV-c).
enum class DagType {
  Chain,    ///< Each instruction RAW-depends on the previous one.
  Cycle,    ///< A Chain whose first instruction depends on the last.
  Random,   ///< Arbitrary dependencies between instructions.
  Disjoint, ///< Each instruction independent of all others.
};

/// An instruction template such as "addl %s, %d" or "imull $3, %s, %d":
/// %s is substituted with a source register, %d with a destination.
struct InstructionTemplate {
  std::string Pattern;

  static InstructionTemplate add() { return {"addl %s, %d"}; }
  static InstructionTemplate imul() { return {"imull $3, %s, %d"}; }
  static InstructionTemplate mov() { return {"movl %s, %d"}; }
  static InstructionTemplate xorTemplate() { return {"xorl %s, %d"}; }
};

/// An acyclic sequence of instructions generated from a candidate template
/// under dependence constraints (paper Sec. IV-c).
class InstructionSequence {
public:
  explicit InstructionSequence(const DetectProcessor &Proc) : Proc(Proc) {}

  void setInstructionTemplate(InstructionTemplate T) { Template = std::move(T); }
  void setDagType(DagType T) { Dag = T; }
  void setLength(unsigned N) { Length = N; }

  /// Generates a random sequence satisfying the constraints.
  void generate(RandomSource &Rng);

  const std::vector<std::string> &instructions() const { return Insns; }

private:
  const DetectProcessor &Proc;
  InstructionTemplate Template = InstructionTemplate::add();
  DagType Dag = DagType::Chain;
  unsigned Length = 8;
  std::vector<std::string> Insns;
};

/// A straight-line loop wrapping instruction sequences with a trip count
/// (paper Sec. IV-d).
struct LoopSpec {
  std::vector<InstructionSequence> Sequences;
  unsigned TripCount = 10000;

  uint64_t dynamicInstructions() const {
    size_t N = 0;
    for (const InstructionSequence &S : Sequences)
      N += S.instructions().size();
    return static_cast<uint64_t>(N + 2) * TripCount; // + counter & branch
  }
};

/// Constructs the assembly program, assembles it, "executes" it in
/// isolation on the target, and collects the requested counters
/// (paper Sec. IV-e).
class DetectBenchmark {
public:
  explicit DetectBenchmark(std::vector<LoopSpec> Loops)
      : Loops(std::move(Loops)) {}

  /// Runs on \p Proc; returns event name -> value, or an error when the
  /// generated program fails to assemble or execute.
  ErrorOr<std::map<std::string, uint64_t>>
  execute(const DetectProcessor &Proc, const std::vector<std::string> &Events);

  /// The generated assembly of the last execute() call (diagnostics).
  const std::string &lastAssembly() const { return LastAsm; }

private:
  std::vector<LoopSpec> Loops;
  std::string LastAsm;
};

// --- Case studies -----------------------------------------------------------

/// Fig. 6: measures an instruction's latency by timing a CYCLE chain.
ErrorOr<unsigned> detectInstructionLatency(const DetectProcessor &Proc,
                                           const InstructionTemplate &T);

/// Discovers the decode-line size by sweeping loop-body sizes and watching
/// the front-end cycle slope.
ErrorOr<unsigned> detectDecodeLineBytes(const DetectProcessor &Proc);

/// Discovers the LSD capacity in decode lines (0 when the machine has no
/// LSD): the smallest aligned loop size at which streaming stops.
ErrorOr<unsigned> detectLsdMaxLines(const DetectProcessor &Proc);

/// Discovers the branch-predictor index shift by moving a never-taken
/// branch away from a taken-biased one until the mispredicts stop.
ErrorOr<unsigned> detectPredictorIndexShift(const DetectProcessor &Proc);

/// Discovers the forwarding bandwidth: consumers of one producer until
/// RESOURCE_STALLS:RS_FULL events appear.
ErrorOr<unsigned> detectForwardingBandwidth(const DetectProcessor &Proc);

/// Discovers the I-cache line size: two cold straight-line NOP sleds
/// differing by a known byte count miss once per line, so the slope
/// delta-bytes / delta-L1I-misses is the line granularity.
ErrorOr<unsigned> detectICacheLineBytes(const DetectProcessor &Proc);

/// Discovers the ITLB reach in bytes (assuming 4 KiB pages): a loop
/// chaining jumps through K page-aligned stubs runs ITLB-quiet until the
/// touched pages exceed the ITLB's entry count, at which point the LRU
/// array thrashes and every iteration page-walks.
ErrorOr<unsigned> detectItlbReach(const DetectProcessor &Proc);

} // namespace mao

#endif // MAO_DETECT_DETECT_H
