//===- detect/Detect.cpp - Micro-architectural parameter detection ------------==//

#include "detect/Detect.h"

#include "asm/Parser.h"
#include "uarch/Runner.h"

#include <cassert>
#include <cmath>

using namespace mao;

DetectProcessor::DetectProcessor(ProcessorConfig Config)
    : Config(std::move(Config)) {
  // %ecx is the loop counter; %r13-%r15 are reserved by convention.
  IntRegs = {"eax", "ebx", "edx",  "esi",  "edi",
             "r8d", "r9d", "r10d", "r11d", "r12d"};
}

namespace {

/// Substitutes %s/%d placeholders in a template pattern.
std::string instantiate(const std::string &Pattern, const std::string &Src,
                        const std::string &Dst) {
  std::string Out;
  for (size_t I = 0; I < Pattern.size(); ++I) {
    if (Pattern[I] == '%' && I + 1 < Pattern.size() &&
        (Pattern[I + 1] == 's' || Pattern[I + 1] == 'd')) {
      Out += '%';
      Out += Pattern[I + 1] == 's' ? Src : Dst;
      ++I;
      continue;
    }
    Out += Pattern[I];
  }
  return Out;
}

/// Assembles and runs a bench_main-shaped program on the uarch model.
ErrorOr<PmuCounters> runDetectAssembly(const DetectProcessor &Proc,
                                       const std::string &Body) {
  std::string Asm;
  Asm += "\t.text\n";
  Asm += "\t.globl bench_main\n";
  Asm += "\t.type bench_main, @function\n";
  Asm += "bench_main:\n";
  Asm += "\tpushq %rbp\n";
  Asm += "\tmovq %rsp, %rbp\n";
  for (const std::string &R : Proc.intRegisters())
    Asm += "\tmovl $1, %" + R + "\n";
  Asm += Body;
  Asm += "\tmovl $0, %eax\n";
  Asm += "\tleave\n";
  Asm += "\tret\n";
  Asm += "\t.size bench_main, .-bench_main\n";

  auto UnitOr = parseAssembly(Asm);
  if (!UnitOr.ok())
    return MaoStatus::error("generated microbenchmark failed to parse: " +
                            UnitOr.message());
  MeasureOptions Options;
  Options.Config = Proc.config();
  auto Result = measureFunction(*UnitOr, "bench_main", Options);
  if (!Result.ok())
    return MaoStatus::error(Result.message());
  return Result->Pmu;
}

/// Wraps sequence bodies in counted loops (the Benchmark class backend).
std::string loopBody(const LoopSpec &Loop, unsigned Index) {
  std::string Body;
  std::string Head = ".LDETECT" + std::to_string(Index);
  Body += "\tmovl $" + std::to_string(Loop.TripCount) + ", %ecx\n";
  Body += "\t.p2align 4\n";
  Body += Head + ":\n";
  for (const InstructionSequence &Seq : Loop.Sequences)
    for (const std::string &Insn : Seq.instructions())
      Body += "\t" + Insn + "\n";
  Body += "\tsubl $1, %ecx\n";
  Body += "\tjne " + Head + "\n";
  return Body;
}

} // namespace

void InstructionSequence::generate(RandomSource &Rng) {
  Insns.clear();
  const std::vector<std::string> &Regs = Proc.intRegisters();
  const size_t N = Regs.size();
  switch (Dag) {
  case DagType::Cycle:
    // Fully serialized ring: one register carries the whole dependence
    // cycle (each instruction reads and writes it).
    {
      const std::string &R = Regs[Rng.nextBelow(N)];
      for (unsigned I = 0; I < Length; ++I)
        Insns.push_back(instantiate(Template.Pattern, R, R));
    }
    return;
  case DagType::Chain: {
    // dest_i becomes src_{i+1}: a RAW chain through rotating registers.
    size_t Start = Rng.nextBelow(N);
    for (unsigned I = 0; I < Length; ++I)
      Insns.push_back(instantiate(Template.Pattern,
                                  Regs[(Start + I) % N],
                                  Regs[(Start + I + 1) % N]));
    return;
  }
  case DagType::Disjoint:
    for (unsigned I = 0; I < Length; ++I) {
      const std::string &R = Regs[I % N];
      Insns.push_back(instantiate(Template.Pattern, R, R));
    }
    return;
  case DagType::Random:
    for (unsigned I = 0; I < Length; ++I)
      Insns.push_back(instantiate(Template.Pattern, Regs[Rng.nextBelow(N)],
                                  Regs[Rng.nextBelow(N)]));
    return;
  }
  assert(false && "covered switch");
}

ErrorOr<std::map<std::string, uint64_t>>
DetectBenchmark::execute(const DetectProcessor &Proc,
                         const std::vector<std::string> &Events) {
  std::string Body;
  for (size_t I = 0; I < Loops.size(); ++I)
    Body += loopBody(Loops[I], static_cast<unsigned>(I));
  LastAsm = Body;

  auto PmuOr = runDetectAssembly(Proc, Body);
  if (!PmuOr.ok())
    return MaoStatus::error(PmuOr.message());
  const PmuCounters &Pmu = *PmuOr;

  std::map<std::string, uint64_t> Out;
  for (const std::string &Event : Events) {
    if (Event == DetectProcessor::CpuCycles)
      Out[Event] = Pmu.CpuCycles;
    else if (Event == DetectProcessor::Instructions)
      Out[Event] = Pmu.InstRetired;
    else if (Event == DetectProcessor::LsdUops)
      Out[Event] = Pmu.LsdUops;
    else if (Event == DetectProcessor::BrMispredicted)
      Out[Event] = Pmu.BrMispredicted;
    else if (Event == DetectProcessor::RsFullStalls)
      Out[Event] = Pmu.RsFullStalls;
    else if (Event == DetectProcessor::DecodeLines)
      Out[Event] = Pmu.DecodeLines;
    else if (Event == DetectProcessor::L1IMisses)
      Out[Event] = Pmu.L1IMisses;
    else if (Event == DetectProcessor::ItlbMisses)
      Out[Event] = Pmu.ItlbMisses;
    else
      return MaoStatus::error("unknown PMU event: " + Event);
  }
  return Out;
}

// --- Case studies -------------------------------------------------------------

ErrorOr<unsigned>
mao::detectInstructionLatency(const DetectProcessor &Proc,
                              const InstructionTemplate &T) {
  // The paper's Fig. 6 verbatim: a CYCLE chain in a straight-line loop;
  // serialized execution makes cycles / chain-instructions the latency.
  RandomSource Rng(42);
  InstructionSequence Seq(Proc);
  Seq.setInstructionTemplate(T);
  Seq.setDagType(DagType::Cycle);
  Seq.setLength(16);
  Seq.generate(Rng);

  LoopSpec Loop;
  Loop.Sequences.push_back(Seq);
  Loop.TripCount = 10000;
  const uint64_t ChainInsns =
      static_cast<uint64_t>(16) * Loop.TripCount;

  DetectBenchmark Bench({Loop});
  auto Results = Bench.execute(Proc, {DetectProcessor::CpuCycles});
  if (!Results.ok())
    return MaoStatus::error(Results.message());
  const double Cycles =
      static_cast<double>((*Results)[DetectProcessor::CpuCycles]);
  return static_cast<unsigned>(
      std::lround(Cycles / static_cast<double>(ChainInsns)));
}

ErrorOr<unsigned> mao::detectDecodeLineBytes(const DetectProcessor &Proc) {
  // Two aligned loops whose bodies differ by 32 bytes of 8-byte NOPs: the
  // front-end cycle difference per iteration is 32 / line-size. Eight-byte
  // NOPs keep the per-line instruction count below any plausible decode
  // width, so the slope isolates the line granularity.
  auto MeasureBody = [&](unsigned BodyNops) -> ErrorOr<uint64_t> {
    std::string Body;
    Body += "\tmovl $20000, %ecx\n";
    Body += "\t.p2align 6\n";
    Body += ".LDL:\n";
    for (unsigned I = 0; I < BodyNops; ++I)
      Body += "\tnop8\n";
    Body += "\tsubl $1, %ecx\n";
    Body += "\tjne .LDL\n";
    auto Pmu = runDetectAssembly(Proc, Body);
    if (!Pmu.ok())
      return MaoStatus::error(Pmu.message());
    return Pmu->CpuCycles;
  };
  // Both sizes exceed any plausible loop-buffer capacity, so a potential
  // LSD cannot stream one loop but not the other and skew the slope.
  auto Small = MeasureBody(10); // 80 bytes
  auto Large = MeasureBody(14); // 112 bytes
  if (!Small.ok())
    return MaoStatus::error(Small.message());
  if (!Large.ok())
    return MaoStatus::error(Large.message());
  const double DeltaPerIter =
      (static_cast<double>(*Large) - static_cast<double>(*Small)) / 20000.0;
  if (DeltaPerIter <= 0)
    return MaoStatus::error("no decode-line slope detected");
  return static_cast<unsigned>(std::lround(32.0 / DeltaPerIter));
}

ErrorOr<unsigned> mao::detectLsdMaxLines(const DetectProcessor &Proc) {
  // Sweep aligned loop sizes; the largest size that still streams from
  // the LSD (LSD_UOPS > 0 after enough iterations) reveals its capacity.
  unsigned MaxLines = 0;
  for (unsigned Lines = 1; Lines <= 8; ++Lines) {
    std::string Body;
    Body += "\tmovl $500, %ecx\n";
    Body += "\t.p2align 4\n";
    Body += ".LLSD:\n";
    for (unsigned I = 0; I < Lines * 2 - 1; ++I)
      Body += "\tnop8\n"; // 16*Lines - 8 bytes of nops...
    Body += "\tnop3\n";   // ...+ 3 + sub(3) + jne(2) = 16*Lines total.
    Body += "\tsubl $1, %ecx\n";
    Body += "\tjne .LLSD\n";
    auto Pmu = runDetectAssembly(Proc, Body);
    if (!Pmu.ok())
      return MaoStatus::error(Pmu.message());
    if (Pmu->LsdUops > 0)
      MaxLines = Lines;
  }
  return MaxLines;
}

ErrorOr<unsigned>
mao::detectPredictorIndexShift(const DetectProcessor &Proc) {
  // A taken-biased loop back branch at a fixed small offset from a highly
  // aligned anchor, then a never-taken branch G bytes later. While both
  // live in the same predictor bucket, the never-taken branch mispredicts
  // on every outer iteration; the smallest G that stops the aliasing
  // locates the bucket boundary. (Sec. IV: "crafting microbenchmarks ...
  // and interpreting the results to infer specific parameters".)
  //
  // Layout after the anchor: movl(5) .LPI[addl(3) subl(3) jne(2)@11]
  // <G pad> cmpl(3)@13+G, never-je@16+G.
  unsigned FirstQuiet = 0;
  for (unsigned G = 1; G <= 512; G = G < 16 ? G + 1 : G * 2) {
    std::string Body;
    Body += "\txorl %esi, %esi\n";
    Body += "\tmovl $300, %r15d\n";
    Body += "\t.p2align 10\n";
    Body += ".LPO:\n";
    Body += "\tmovl $8, %ecx\n";
    Body += ".LPI:\n";
    Body += "\taddl $1, %eax\n";
    Body += "\tsubl $1, %ecx\n";
    Body += "\tjne .LPI\n";
    unsigned Pad = G;
    while (Pad > 0) {
      unsigned Chunk = Pad > 15 ? 15 : Pad;
      Body += "\tnop" + std::to_string(Chunk) + "\n";
      Pad -= Chunk;
    }
    Body += "\tcmpl $1, %esi\n"; // esi == 0: never equal
    Body += "\tje .LPNEVER\n";
    Body += "\tnop15\n\tnop15\n\tnop15\n\tnop15\n"; // isolate outer branch
    Body += "\tsubl $1, %r15d\n";
    Body += "\tjne .LPO\n";
    Body += "\tjmp .LPDONE\n";
    Body += ".LPNEVER:\n";
    Body += "\taddl $1, %ebx\n";
    Body += ".LPDONE:\n";
    auto Pmu = runDetectAssembly(Proc, Body);
    if (!Pmu.ok())
      return MaoStatus::error(Pmu.message());
    // Baseline mispredicts: inner-loop exits (~300). Aliasing adds ~300+.
    if (Pmu->BrMispredicted < 450) {
      FirstQuiet = G;
      break;
    }
  }
  if (FirstQuiet == 0)
    return MaoStatus::error("aliasing never stopped; predictor too small");
  // The never-taken branch sits at offset 16 + G; the first quiet G puts
  // it exactly at (or just past) the next bucket boundary.
  const double Bucket = 16.0 + FirstQuiet;
  return static_cast<unsigned>(std::lround(std::log2(Bucket)));
}

ErrorOr<unsigned>
mao::detectForwardingBandwidth(const DetectProcessor &Proc) {
  // A loop-carried chain producer -> probe, with K-1 extra independent
  // consumers of the producer issued *before* the probe. The probe is the
  // K-th consumer: once K exceeds the forwarding bandwidth, the probe's
  // read slips a cycle and the measured chain length per iteration grows —
  // exactly how the paper's hand-modified schedules exposed the effect
  // (Sec. III-F).
  const unsigned Trip = 5000;
  uint64_t PrevCycles = 0;
  for (unsigned K = 1; K <= 6; ++K) {
    std::string Body;
    Body += "\tmovl $" + std::to_string(Trip) + ", %ecx\n";
    Body += "\t.p2align 4\n";
    Body += ".LFB:\n";
    Body += "\taddl %r12d, %ebx\n"; // producer (depends on the probe)
    static const char *Extras[] = {"eax", "edx", "esi", "r8d", "r9d"};
    for (unsigned C = 0; C + 1 < K; ++C)
      Body += std::string("\tmovl %ebx, %") + Extras[C] + "\n";
    Body += "\tmovl %ebx, %r12d\n"; // probe: closes the carried chain
    Body += "\tsubl $1, %ecx\n";
    Body += "\tjne .LFB\n";
    auto Pmu = runDetectAssembly(Proc, Body);
    if (!Pmu.ok())
      return MaoStatus::error(Pmu.message());
    if (K > 1 && Pmu->CpuCycles >= PrevCycles + Trip / 2)
      return K - 1; // The probe started slipping at this fan-out.
    PrevCycles = Pmu->CpuCycles;
  }
  return 6u; // Wider than the experiment can distinguish.
}

ErrorOr<unsigned> mao::detectICacheLineBytes(const DetectProcessor &Proc) {
  // A cold straight-line sled of 8-byte NOPs misses the L1I exactly once
  // per line it spans; two sleds differing by a known byte count make the
  // slope delta-bytes / delta-misses the line size, with the benchmark
  // scaffolding's own (constant) cold misses cancelling in the delta.
  // Eight-byte NOPs divide any power-of-two line size, so no sled
  // instruction straddles a boundary and the division is exact.
  auto MeasureSled = [&](unsigned Nops) -> ErrorOr<uint64_t> {
    std::string Body;
    Body += "\t.p2align 6\n";
    for (unsigned I = 0; I < Nops; ++I)
      Body += "\tnop8\n";
    auto Pmu = runDetectAssembly(Proc, Body);
    if (!Pmu.ok())
      return MaoStatus::error(Pmu.message());
    return Pmu->L1IMisses;
  };
  auto Small = MeasureSled(128); // 1024 bytes
  auto Large = MeasureSled(384); // 3072 bytes
  if (!Small.ok())
    return MaoStatus::error(Small.message());
  if (!Large.ok())
    return MaoStatus::error(Large.message());
  if (*Large <= *Small)
    return MaoStatus::error("no I-cache miss slope detected");
  return static_cast<unsigned>(2048 / (*Large - *Small));
}

ErrorOr<unsigned> mao::detectItlbReach(const DetectProcessor &Proc) {
  // A loop chaining jumps through K page-aligned stubs touches K + 1
  // distinct code pages per iteration (the loop head's page plus one per
  // stub, the last stub sharing its page with the loop tail). A
  // fully-associative LRU ITLB is quiet once warm while K + 1 fits, and
  // degrades to a page walk on every access as soon as it does not — the
  // classic cyclic-access LRU cliff. The first thrashing K equals the
  // entry count; reach is entries times the (assumed 4 KiB) page size.
  const unsigned Trip = 200;
  for (unsigned K = 2; K <= 48; ++K) {
    std::string Body;
    Body += "\tmovl $" + std::to_string(Trip) + ", %ecx\n";
    Body += ".LITL:\n";
    Body += "\tjmp .LITP0\n";
    for (unsigned I = 0; I < K; ++I) {
      Body += "\t.p2align 12\n";
      Body += ".LITP" + std::to_string(I) + ":\n";
      Body += I + 1 < K ? "\tjmp .LITP" + std::to_string(I + 1) + "\n"
                        : "\tjmp .LITTAIL\n";
    }
    Body += ".LITTAIL:\n";
    Body += "\tsubl $1, %ecx\n";
    Body += "\tjne .LITL\n";
    auto Pmu = runDetectAssembly(Proc, Body);
    if (!Pmu.ok())
      return MaoStatus::error(Pmu.message());
    // Quiet runs pay only the cold walk per page; thrashing runs pay one
    // per page per iteration.
    if (Pmu->ItlbMisses > Trip)
      return K * 4096;
  }
  return MaoStatus::error("ITLB never thrashed; reach beyond the sweep");
}
