//===- workload/Workload.cpp - Synthetic benchmark generator ------------------==//

#include "workload/Workload.h"

#include "support/Random.h"

#include <cassert>

using namespace mao;

namespace {

/// Register conventions inside generated code:
///   %ecx   inner-loop counter        %r15d  outer-loop counter
///   %r13   per-function memory base  %r14d  guard register (never zero)
///   %rsp/%rbp frame                  everything else: filler pool
const char *Pool32[] = {"eax", "ebx", "edx",  "esi",  "edi",
                        "r8d", "r9d", "r10d", "r11d", "r12d"};
const char *Pool64[] = {"rax", "rbx", "rdx", "rsi", "rdi",
                        "r8",  "r9",  "r10", "r11", "r12"};
constexpr unsigned PoolSize = 10;

class WorkloadBuilder {
public:
  explicit WorkloadBuilder(const WorkloadSpec &Spec)
      : Spec(Spec), Rng(Spec.Seed) {}

  static unsigned iterOr(unsigned Specific, unsigned Fallback) {
    return Specific ? Specific : Fallback;
  }

  std::string build();

private:
  // --- Emission helpers -----------------------------------------------------
  void line(const std::string &Text) {
    Out += '\t';
    Out += Text;
    Out += '\n';
  }
  void label(const std::string &Name) {
    Out += Name;
    Out += ":\n";
  }
  std::string newLabel() { return ".LW" + std::to_string(LabelId++); }

  unsigned pick() { return static_cast<unsigned>(Rng.nextBelow(PoolSize)); }
  unsigned pickOther(unsigned Not) {
    unsigned R = pick();
    return R == Not ? (R + 1) % PoolSize : R;
  }
  std::string r32(unsigned I) { return std::string("%") + Pool32[I]; }
  std::string r64(unsigned I) { return std::string("%") + Pool64[I]; }

  // --- Building blocks --------------------------------------------------------
  void emitFunction(unsigned Index);
  void emitFiller(unsigned Count);
  void emitZeroExtPattern();
  void emitRedundantTest();
  void emitHarmlessTest();
  void emitRedundantLoad();
  void emitAddAddPair();
  void emitJumpTable();
  void emitShortLoop(bool Aligned);
  void emitAccidentallyAlignedLoop();
  void emitBucketSensitivePair();
  void emitDecodeBoundLoop();
  void emitLsdFixableLoop();
  void emitSchedFanoutLoop();
  void emitNeutralLoop();
  void alignDirective() {
    if (Spec.AlignDirectivesOnHotLoops)
      line(".p2align 4,,15");
  }

  const WorkloadSpec &Spec;
  RandomSource Rng;
  std::string Out;
  unsigned LabelId = 0;
  unsigned FnIndex = 0;

  // Remaining per-file pattern budgets, spent round-robin by functions.
  struct Budget {
    unsigned ZeroExt, RedTest, HarmlessTest, RedLoad, AddAdd, JumpTables;
    unsigned Split, Aligned, Accidental, Pairs, Decode, Lsd, Sched;
    unsigned Neutral;
  } B{};
};

void WorkloadBuilder::emitFiller(unsigned Count) {
  for (unsigned I = 0; I < Count; ++I) {
    unsigned X = pick(), Y = pickOther(X);
    switch (Rng.nextBelow(8)) {
    case 0:
      line("addl $" + std::to_string(Rng.nextInRange(1, 100)) + ", " +
           r32(X));
      break;
    case 1:
      line("xorl " + r32(X) + ", " + r32(Y));
      break;
    case 2:
      line("movl " + r32(X) + ", " + r32(Y));
      break;
    case 3:
      line("leaq " + std::to_string(Rng.nextInRange(0, 64)) + "(" + r64(X) +
           "), " + r64(Y));
      break;
    case 4:
      line("movl " + std::to_string(8 * Rng.nextInRange(0, 7)) +
           "(%r13), " + r32(X));
      break;
    case 5:
      line("movl " + r32(X) + ", " +
           std::to_string(64 + 8 * Rng.nextInRange(0, 7)) + "(%r13)");
      break;
    case 6:
      line("imull $" + std::to_string(Rng.nextInRange(2, 9)) + ", " +
           r32(X) + ", " + r32(Y));
      break;
    case 7:
      line("shrl $" + std::to_string(Rng.nextInRange(1, 12)) + ", " + r32(X));
      break;
    }
  }
}

void WorkloadBuilder::emitZeroExtPattern() {
  unsigned X = pick();
  line("andl $255, " + r32(X));
  line("movl " + r32(X) + ", " + r32(X)); // Redundant zero extension.
}

void WorkloadBuilder::emitRedundantTest() {
  unsigned X = pick();
  std::string Skip = newLabel();
  line("subl $" + std::to_string(Rng.nextInRange(1, 32)) + ", " + r32(X));
  line("testl " + r32(X) + ", " + r32(X)); // Redundant: subl set the flags.
  line("je " + Skip);
  emitFiller(1);
  label(Skip);
}

void WorkloadBuilder::emitHarmlessTest() {
  unsigned X = pick(), Y = pickOther(X);
  std::string Skip = newLabel();
  line("movl " + r32(Y) + ", " + r32(X)); // mov sets no flags: test needed.
  line("testl " + r32(X) + ", " + r32(X));
  line("je " + Skip);
  emitFiller(1);
  label(Skip);
}

void WorkloadBuilder::emitRedundantLoad() {
  unsigned X = pick(), Y = pickOther(X);
  std::string Off = std::to_string(8 * Rng.nextInRange(0, 7));
  line("movq " + Off + "(%r13), " + r64(X));
  line("movq " + Off + "(%r13), " + r64(Y)); // Same address: redundant.
}

void WorkloadBuilder::emitAddAddPair() {
  unsigned X = pick(), Y = pickOther(X);
  line("addq $" + std::to_string(Rng.nextInRange(1, 64)) + ", " + r64(X));
  line("movl $" + std::to_string(Rng.nextInRange(1, 9)) + ", " + r32(Y));
  line("addq $" + std::to_string(Rng.nextInRange(1, 64)) + ", " + r64(X));
}

void WorkloadBuilder::emitJumpTable() {
  // A dynamically-dead switch: the guard never fires at run time, but the
  // dispatch pattern exercises CFG jump-table resolution.
  std::string Table = newLabel();
  std::string CaseA = newLabel(), CaseB = newLabel(), CaseC = newLabel();
  std::string Done = newLabel();
  line("cmpl $0, %r14d"); // r14d is never zero.
  line("je " + Table + "_dispatch");
  line("jmp " + Done);
  label(Table + "_dispatch");
  line("movl %r14d, %eax");
  line("andl $3, %eax");
  line("movq " + Table + "(,%rax,8), %rax");
  line("jmp *%rax");
  label(CaseA);
  line("addl $1, %ebx");
  line("jmp " + Done);
  label(CaseB);
  line("addl $2, %ebx");
  line("jmp " + Done);
  label(CaseC);
  line("addl $3, %ebx");
  label(Done);
  // The table itself goes into .rodata and back (split-function pattern).
  line(".section .rodata");
  line(".p2align 3");
  label(Table);
  line(".quad " + CaseA);
  line(".quad " + CaseB);
  line(".quad " + CaseC);
  line(".quad " + CaseA);
  line(".text");
}

/// 8-byte loop body: addl $1,r (3) + subl $1,%ecx (3) + jne (2). Aligned
/// it decodes as one 16-byte line (and three instructions fit even a
/// 3-wide decoder); at offset 11 it straddles a line boundary.
void WorkloadBuilder::emitShortLoop(bool Aligned) {
  unsigned X = pick();
  std::string Head = newLabel();
  line("movl $" +
       std::to_string(iterOr(Spec.ShortLoopIterations, Spec.HotIterations)) +
       ", %ecx");
  line(".p2align 4"); // Establish a known 16-byte phase...
  if (!Aligned)
    line("nop11"); // ...then deliberately break it (offset 11: straddles).
  label(Head);
  line("addl $1, " + r32(X));
  line("subl $1, %ecx");
  line("jne " + Head);
}

/// A short hot loop that is 16-byte aligned only because a redundant
/// sub/test pair (7 bytes) plus padding precedes it: REDTEST removes the
/// test and un-aligns the loop; NOPKILL removes the padding with the same
/// effect. This is the mechanism behind the paper's counter-intuitive
/// REDTEST regression on 252.eon.
void WorkloadBuilder::emitAccidentallyAlignedLoop() {
  unsigned X = pick(), Y = pickOther(X);
  std::string Head = newLabel();
  std::string Skip = newLabel();
  line("movl $" +
       std::to_string(iterOr(Spec.ShortLoopIterations, Spec.HotIterations)) +
       ", %ecx");
  line(".p2align 4");
  // 9 bytes of *real* padding instructions (leaq identity moves): the Nop
  // Killer does not remove these, isolating the REDTEST effect from the
  // NOPKILL effect on this structure.
  line("leaq (%rbx), %rbx");
  line("leaq (%rbx), %rbx");
  line("leaq (%rbx), %rbx");
  line("subl $16, %edi"); // 3 bytes
  line("testl %edi, %edi"); // 2 bytes, redundant
  line("je " + Skip);       // 2 bytes -> loop head lands at 9+3+2+2 = 16
  label(Skip);
  label(Head);
  line("addl $1, " + r32(X));
  line("addl " + r32(X) + ", " + r32(Y));
  line("subl $1, %ecx");
  line("jne " + Head);
}

/// Two oppositely-biased branches in *adjacent* PC>>5 buckets with only a
/// few bytes of slack (paper Sec. III-C-g). Baseline layout (computed in
/// bytes from a .p2align 5 anchor):
///
///   offset 17: .LOuter   movl $8, %ecx        (5)
///   offset 22: .LInner   addl $1, rX          (3)
///   offset 25:           subl $1, %ecx        (3)
///   offset 28:           jne .LInner          (2)   <- bucket 0, biased T
///   offset 30:           cmpl $0, %r14d       (4)
///   offset 34:           jne .LNever          (2)   <- bucket 1, never T
///   offset 36:           nop15 nop13          (28)
///   offset 64:           subl $1, %r15d       (4)   <- bucket 2, biased T
///   offset 68:           jne .LOuter          (2)
///
/// Any upstream insertion of 4..29 bytes (NOPIN, LOOP16 padding) or
/// removal of 3..28 bytes (REDTEST, NOPKILL shrinkage) slides the first
/// two branches into the *same* bucket, and the never-taken branch starts
/// mispredicting on every outer iteration against the taken-trained
/// counter. This fragility-by-construction is how the generator encodes
/// 252.eon's and 253.perlbmk's pathological layout sensitivity.
void WorkloadBuilder::emitBucketSensitivePair() {
  std::string Outer = newLabel(), Split = newLabel(), Inner = newLabel();
  std::string Never = newLabel(), Done = newLabel();
  line("movl $" +
       std::to_string(iterOr(Spec.PairOuterIterations,
                             Spec.HotIterations / 4)) +
       ", %r15d");
  line(".p2align 5"); // Anchor: offsets below are mod-32 phases.
  line("nop6");
  label(Outer);               // 6
  line("movl $2, %ecx");      // 6..10
  label(Split);               // 11: the 8-byte loop straddles offset 16 —
  line("addl $1, %eax");      //     this is the LOOP16 bait.
  line("subl $1, %ecx");
  line("jne " + Split);       // 17: bucket 0, taken-biased
  line("movl $8, %ecx");      // 19..23
  label(Inner);               // 24
  line("addl $1, %ebx");
  line("subl $1, %ecx");
  line("jne " + Inner);       // 30: bucket 0, taken-biased (harmless share)
  line("cmpl $0, %r14d");     // 32..35; %r14d is never zero
  line("je " + Never);        // 36: bucket 1 alone, never taken
  line("nop15");              // 38..52
  line("nop11");              // 53..63
  line("subl $1, %r15d");     // 64..67
  line("jne " + Outer);       // 68: bucket 2 alone, taken-biased
  line("jmp " + Done);
  label(Never);
  line("addl $7, %eax");
  line("jmp " + Done);
  label(Done);
  // LOOP16 aligns the split loop with 5 bytes of padding; that slides the
  // inner back branch to offset 35 and the never-taken branch to 41 — the
  // same bucket — and the shared 2-bit counter starts thrashing. The 5%
  // alignment gain is dwarfed by a 15-cycle mispredict per outer
  // iteration: the pass degrades this code exactly the way LOOP16
  // degraded 252.eon in the paper.
}

/// A decode-bound hot loop carrying four removable (redundant test +
/// duplicated load) pairs per iteration. REDMOV/REDTEST shrink both the
/// instruction count and the number of decode lines; on the 3-wide
/// Opteron model the speedup is large (454.calculix's 20%).
void WorkloadBuilder::emitDecodeBoundLoop() {
  std::string Head = newLabel();
  unsigned Iters = iterOr(Spec.DecodeLoopIterations, Spec.HotIterations);
  line("movl $" + std::to_string(Iters) + ", %ecx");
  line("movl $" + std::to_string(Iters * 5) + ", %esi");
  alignDirective();
  label(Head);
  for (unsigned P = 0; P < 4; ++P) {
    // disp32 loads: 8 encoded bytes each, so the duplicated load carries
    // real decode-line weight that REDMOV's register-move rewrite removes.
    std::string Off = std::to_string(0x80 + 8 * P);
    line("movq " + Off + "(%r13), %rax");
    line("movq " + Off + "(%r13), %rdx"); // Redundant load.
    line("subl $1, %esi");
    line("testl %esi, %esi"); // Redundant: flags dead, value just computed.
  }
  line("movabs $81985529216486895, %r12"); // 10-byte ballast instructions
  line("movabs $81985529216486895, %r12"); // keep the loop line-bound.
  line("subl $1, %ecx");
  line("jne " + Head);
}

/// A loop placed to span five decode lines whose body fits four: LSDOPT
/// re-aligns it (the Figs. 4/5 scenario).
void WorkloadBuilder::emitLsdFixableLoop() {
  std::string Head = newLabel();
  line("movl $" + std::to_string(Spec.HotIterations) + ", %ecx");
  line(".p2align 4");
  line("nop9"); // Start at offset 9: 58-byte body spans 5 lines.
  label(Head);
  for (unsigned I = 0; I < 16; ++I) // 48 bytes of adds
    line("addl $1, " + r32(I % PoolSize));
  line("subl $1, %ecx"); // +3
  line("jne " + Head);   // +2 -> 53-byte body + label phase
  line("addl $1, %eax"); // padding instruction to stabilize sizes
}

/// The paper's Sec. III-F hashing shape: one producer feeding three
/// independent consumers plus the critical shrl/xorl path.
void WorkloadBuilder::emitSchedFanoutLoop() {
  std::string Head = newLabel();
  line("movl $" +
       std::to_string(iterOr(Spec.SchedLoopIterations, Spec.HotIterations)) +
       ", %ecx");
  alignDirective();
  label(Head);
  line("xorl %edi, %ebx");
  line("subl %ebx, %r8d");
  line("subl %ebx, %edx");
  line("movl %ebx, %esi");
  line("shrl $12, %esi");
  line("xorl %esi, %edx");
  line("addl %edx, %eax");
  line("subl $1, %ecx");
  line("jne " + Head);
}

/// A latency-bound loop: four dependent multiplies dominate each
/// iteration, so neither decode lines nor branch buckets matter. This is
/// the workload's "everything else" time.
void WorkloadBuilder::emitNeutralLoop() {
  std::string Head = newLabel();
  line("movl $" + std::to_string(Spec.NeutralIterations) + ", %ecx");
  alignDirective();
  label(Head);
  line("imull $3, %eax, %eax");
  line("imull $5, %eax, %eax");
  line("imull $7, %eax, %eax");
  line("imull $9, %eax, %eax");
  line("subl $1, %ecx");
  line("jne " + Head);
}

void WorkloadBuilder::emitFunction(unsigned Index) {
  const std::string Name =
      "fn" + std::to_string(Index) + "_" + std::to_string(Spec.Seed % 997);
  line(".globl " + Name);
  line(".type " + Name + ", @function");
  label(Name);
  line("pushq %rbp");
  line("movq %rsp, %rbp");
  line("pushq %rbx");
  line("pushq %r12");
  line("pushq %r13");
  line("pushq %r14");
  line("pushq %r15");

  // Establish the function's data region and the guard register.
  uint64_t Base = 0x100000 + 0x1000 * static_cast<uint64_t>(Index);
  line("movq $" + std::to_string(Base) + ", %r13");
  for (unsigned I = 0; I < 8; ++I)
    line("movq $" + std::to_string(Rng.nextInRange(1, 1000)) + ", " +
         std::to_string(8 * I) + "(%r13)");
  for (unsigned I = 0; I < 8; ++I)
    line("movq $" + std::to_string(Rng.nextInRange(1, 1000)) + ", " +
         std::to_string(0x80 + 8 * I) + "(%r13)");
  line("movl $7, %r14d");

  // Interleave filler with the pattern and hot-loop budgets. Each
  // function takes an equal share (the last one takes the remainder).
  const unsigned Remaining = Spec.Functions - Index;
  auto Take = [&](unsigned &Pool) {
    unsigned Share = (Pool + Remaining - 1) / Remaining;
    Pool -= Share;
    return Share;
  };

  const unsigned Fill = Spec.FillerPerFunction;
  emitFiller(Fill / 4);
  for (unsigned I = Take(B.ZeroExt); I > 0; --I)
    emitZeroExtPattern();
  for (unsigned I = Take(B.RedTest); I > 0; --I)
    emitRedundantTest();
  emitFiller(Fill / 4);
  for (unsigned I = Take(B.HarmlessTest); I > 0; --I)
    emitHarmlessTest();
  for (unsigned I = Take(B.RedLoad); I > 0; --I)
    emitRedundantLoad();
  for (unsigned I = Take(B.AddAdd); I > 0; --I)
    emitAddAddPair();
  emitFiller(Fill / 4);
  for (unsigned I = Take(B.JumpTables); I > 0; --I)
    emitJumpTable();

  // Hot loops: split loops first so LOOP16's padding shifts everything
  // downstream (including any bucket-sensitive pairs).
  for (unsigned I = Take(B.Split); I > 0; --I)
    emitShortLoop(/*Aligned=*/false);
  for (unsigned I = Take(B.Aligned); I > 0; --I)
    emitShortLoop(/*Aligned=*/true);
  for (unsigned I = Take(B.Accidental); I > 0; --I)
    emitAccidentallyAlignedLoop();
  for (unsigned I = Take(B.Decode); I > 0; --I)
    emitDecodeBoundLoop();
  for (unsigned I = Take(B.Lsd); I > 0; --I)
    emitLsdFixableLoop();
  for (unsigned I = Take(B.Sched); I > 0; --I)
    emitSchedFanoutLoop();
  for (unsigned I = Take(B.Pairs); I > 0; --I)
    emitBucketSensitivePair();
  for (unsigned I = Take(B.Neutral); I > 0; --I)
    emitNeutralLoop();
  emitFiller(Fill / 4);

  line("popq %r15");
  line("popq %r14");
  line("popq %r13");
  line("popq %r12");
  line("popq %rbx");
  line("leave");
  line("ret");
  line(".size " + Name + ", .-" + Name);
}

std::string WorkloadBuilder::build() {
  Out.clear();
  line(".file \"" + Spec.Name + ".s\"");
  line(".text");

  B.ZeroExt = Spec.ZeroExtPatterns;
  B.RedTest = Spec.RedundantTests;
  B.HarmlessTest = Spec.HarmlessTests;
  B.RedLoad = Spec.RedundantLoads;
  B.AddAdd = Spec.AddAddPairs;
  B.JumpTables = Spec.JumpTables;
  B.Split = Spec.SplitShortLoops;
  B.Aligned = Spec.AlignedShortLoops;
  B.Accidental = Spec.AccidentallyAlignedLoops;
  B.Pairs = Spec.BucketSensitivePairs;
  B.Decode = Spec.DecodeBoundLoops;
  B.Lsd = Spec.LsdFixableLoops;
  B.Sched = Spec.SchedFanoutLoops;
  B.Neutral = Spec.NeutralLoops;

  for (unsigned I = 0; I < Spec.Functions; ++I)
    emitFunction(I);

  // The driver calling every function.
  line(".globl bench_main");
  line(".type bench_main, @function");
  label("bench_main");
  line("pushq %rbp");
  line("movq %rsp, %rbp");
  for (unsigned I = 0; I < Spec.Functions; ++I)
    line("call fn" + std::to_string(I) + "_" +
         std::to_string(Spec.Seed % 997));
  line("movl $0, %eax");
  line("leave");
  line("ret");
  line(".size bench_main, .-bench_main");
  line(".ident \"MAO synthetic workload: " + Spec.Name + " (" + Spec.Lang +
       ")\"");
  return Out;
}

} // namespace

std::string mao::generateWorkloadAssembly(const WorkloadSpec &Spec) {
  WorkloadBuilder Builder(Spec);
  return Builder.build();
}
