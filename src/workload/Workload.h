//===- workload/Workload.h - Synthetic benchmark generator ------*- C++ -*-===//
///
/// \file
/// The reproduction's substitute for SPEC CPU 2000/2006 assembly and the
/// paper's "Google core library" corpus: a deterministic generator that
/// emits GCC-4.4-style AT&T assembly with calibrated densities of exactly
/// the patterns the paper's passes target, plus layout-sensitivity knobs
/// that encode *why* each benchmark reacted to each pass:
///
///  - redundant zero extensions, redundant tests, duplicated loads and
///    add/add chains at per-benchmark densities (pattern counts, Fig. 7)
///  - short hot loops deliberately straddling a 16-byte decode line
///    (LOOP16 improvement candidates)
///  - hot loops whose alignment is an *accident* of preceding removable
///    instructions or alignment directives (REDTEST / NOPKILL regressions
///    on 252.eon and 454.calculix)
///  - back-branch pairs with little slack inside a 32-byte predictor
///    bucket (NOPIN / LOOP16 regressions via aliasing)
///  - decode-bound hot loops carrying removable instructions (the large
///    REDMOV/REDTEST wins on the Opteron model)
///  - loops spanning five decode lines, fixable to four (LSD, Figs. 4/5)
///  - single-producer/multi-consumer dependence shapes (SCHED)
///
/// Every generated program defines `bench_main`, is fully emulatable
/// (modelled instructions only, no external calls) and terminates.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_WORKLOAD_WORKLOAD_H
#define MAO_WORKLOAD_WORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

namespace mao {

/// Generation parameters for one synthetic benchmark.
struct WorkloadSpec {
  std::string Name = "synthetic"; ///< e.g. "252.eon"
  std::string Lang = "C";         ///< informational ("C", "C++", "F")
  uint64_t Seed = 1;

  // Static shape.
  unsigned Functions = 4;          ///< Hot functions, each called once.
  unsigned FillerPerFunction = 60; ///< Straight-line filler instructions.

  // Peephole pattern counts (static occurrences across the whole file).
  unsigned ZeroExtPatterns = 4;
  unsigned RedundantTests = 6;
  unsigned HarmlessTests = 12;  ///< Non-redundant tests (mov + test).
  unsigned RedundantLoads = 5;
  unsigned AddAddPairs = 3;

  // Hot-loop structure (dynamic behaviour). A zero per-structure trip
  // count falls back to HotIterations.
  unsigned HotIterations = 2000; ///< Default trip count of each hot loop.
  unsigned ShortLoopIterations = 0;  ///< Split/aligned/accidental loops.
  unsigned DecodeLoopIterations = 0; ///< Decode-bound loops.
  unsigned SchedLoopIterations = 0;  ///< Fan-out scheduling loops.
  unsigned PairOuterIterations = 0;  ///< Outer trips of fragile pairs.
  unsigned SplitShortLoops = 2;  ///< Small loops straddling a decode line.
  unsigned AlignedShortLoops = 2; ///< Small loops currently aligned.
  /// Hot loops whose 16-byte alignment exists only because a redundant
  /// test sits in front of them: REDTEST/NOPKILL un-align them.
  unsigned AccidentallyAlignedLoops = 0;
  /// Pairs of short-running loops whose back branches sit in the same
  /// PC>>5 bucket with almost no slack: any code shift risks aliasing.
  unsigned BucketSensitivePairs = 0;
  /// Longer decode-bound loops carrying a removable test + duplicated
  /// load per iteration (REDMOV/REDTEST targets).
  unsigned DecodeBoundLoops = 0;
  /// Loops spanning five decode lines, fixable to four (LSDOPT targets).
  unsigned LsdFixableLoops = 0;
  /// Hot loops with a one-producer/three-consumer dependence shape.
  unsigned SchedFanoutLoops = 0;
  /// Latency-bound "neutral" hot loops (dependent multiply chains):
  /// insensitive to layout, they model the bulk of benchmark runtime that
  /// no micro-architectural pass can touch, diluting pass effects to the
  /// paper's few-percent scale.
  unsigned NeutralLoops = 1;
  unsigned NeutralIterations = 20000;
  /// Emit `.p2align 4` before decode-bound/aligned hot loops (NOPKILL
  /// removes these; on alignment-sensitive benchmarks that regresses).
  bool AlignDirectivesOnHotLoops = true;
  /// Place jump tables (tests the CFG machinery inside workloads).
  unsigned JumpTables = 0;
};

/// Generates the assembly text for \p Spec.
std::string generateWorkloadAssembly(const WorkloadSpec &Spec);

/// The SPEC CPU 2000 integer suite profiles used throughout the paper's
/// evaluation (Fig. 7 rows).
std::vector<WorkloadSpec> spec2000IntProfiles();

/// The SPEC CPU 2006 benchmarks the paper reports on (Sec. V-B).
std::vector<WorkloadSpec> spec2006Profiles();

/// The "Google core library" corpus stand-in (paper Sec. III-B): a large
/// file calibrated to the paper's absolute pattern counts (about 1000
/// redundant zero extensions; 79763 test instructions of which 19272 are
/// redundant; 13362 redundant loads). \p Scale in (0, 1] shrinks all
/// counts proportionally for quick test runs.
WorkloadSpec googleCorpusProfile(double Scale = 1.0);

/// Looks up a profile by benchmark name in both SPEC suites; null when
/// unknown.
const WorkloadSpec *findBenchmarkProfile(const std::string &Name);

} // namespace mao

#endif // MAO_WORKLOAD_WORKLOAD_H
