//===- workload/Profiles.cpp - Per-benchmark generation profiles --------------==//
///
/// \file
/// Benchmark profiles calibrated against the paper's evaluation:
///
///  - The static-pattern knobs follow Fig. 7's per-benchmark transformation
///    counts, scaled by ~1/10 in code volume (NOPIN's count is proportional
///    to program size; the L/M/T columns are reproduced directly).
///  - The layout-sensitivity knobs encode each benchmark's reported
///    *reaction* to the passes: 252.eon and 253.perlbmk are alignment- and
///    predictor-aliasing-sensitive (regressions under NOPIN/NOPKILL/
///    REDTEST/LOOP16); 454.calculix is dominated by decode-bound loops
///    carrying removable instructions (large REDMOV/REDTEST wins, NOPKILL
///    regression); the SCHED benchmarks carry fan-out dependence shapes.
///
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include <algorithm>

using namespace mao;

namespace {

/// Builds one SPEC 2000 int profile from its Fig. 7 row.
/// \p L, \p M, \p T are the LOOP16 / REDMOV / REDTEST counts; \p NopScale
/// is the paper's NOPIN count, used to size the program (~NOP instructions
/// total, giving ~NOP/10 insertions at the default 10% density).
WorkloadSpec spec2000Row(const std::string &Name, const std::string &Lang,
                         unsigned L, unsigned NopScale, unsigned M,
                         unsigned T, uint64_t Seed) {
  WorkloadSpec S;
  S.Name = Name;
  S.Lang = Lang;
  S.Seed = Seed;
  S.Functions = std::clamp(NopScale / 900u, 2u, 40u);
  S.FillerPerFunction = std::clamp(NopScale / S.Functions, 40u, 1200u);
  S.RedundantLoads = M;
  S.RedundantTests = T;
  S.HarmlessTests = T * 3 + 8; // ~24% of tests are redundant (Sec. III-B-b).
  S.ZeroExtPatterns = 2 + NopScale / 800;
  S.AddAddPairs = 1 + NopScale / 2000;
  S.SplitShortLoops = L;
  S.AlignedShortLoops = 1 + L / 4;
  S.JumpTables = 1 + NopScale / 8000;
  S.SchedFanoutLoops = 1;
  S.HotIterations = 2000;
  return S;
}

} // namespace

std::vector<WorkloadSpec> mao::spec2000IntProfiles() {
  // Fig. 7 rows: (L, NOP, M, T) per benchmark. '-' entries are zero.
  std::vector<WorkloadSpec> Suite = {
      spec2000Row("164.gzip", "C", 1, 664, 0, 5, 164),
      spec2000Row("175.vpr", "C", 3, 1425, 7, 4, 175),
      spec2000Row("176.gcc", "C", 62, 27471, 35, 57, 176),
      spec2000Row("181.mcf", "C", 0, 185, 1, 0, 181),
      spec2000Row("186.crafty", "C", 3, 1987, 7, 18, 186),
      spec2000Row("197.parser", "C", 13, 2134, 4, 0, 197),
      spec2000Row("252.eon", "C++", 1, 2373, 10, 6, 252),
      spec2000Row("253.perlbmk", "C", 21, 11870, 9, 21, 253),
      spec2000Row("254.gap", "C", 62, 9216, 23, 9, 254),
      spec2000Row("255.vortex", "C", 1, 6860, 3, 5, 255),
      spec2000Row("256.bzip2", "C", 2, 396, 3, 0, 256),
      spec2000Row("300.twolf", "C", 18, 3009, 24, 43, 300),
  };

  for (WorkloadSpec &S : Suite) {
    if (S.Name == "252.eon") {
      // The alignment-pathological benchmark: a fragile loop/branch pair
      // whose predictor buckets collide under any code shift, plus hot
      // loops whose alignment is an accident of removable instructions.
      // NOPIN (-9.23%), NOPKILL (-5.34%), REDTEST (-5.97%) and LOOP16
      // (-4.43%) all regress it.
      S.BucketSensitivePairs = 1;
      S.PairOuterIterations = 500;
      S.AccidentallyAlignedLoops = 8;
      S.ShortLoopIterations = 2500;
      S.AlignedShortLoops = 3;
      S.SchedFanoutLoops = 2; // Fig. 7: eon has the largest SCHED count.
      S.NeutralIterations = 20000;
    } else if (S.Name == "253.perlbmk") {
      // The only aggregate regression in Fig. 7 (-2.14%).
      S.BucketSensitivePairs = 1;
      S.PairOuterIterations = 400;
      S.AccidentallyAlignedLoops = 2;
      S.ShortLoopIterations = 120;
    } else if (S.Name == "181.mcf") {
      // Fig. 1's unrolled loop with the high-impact NOP lives here.
      S.SplitShortLoops = 1;
      S.ShortLoopIterations = 7000;
    } else if (S.Name == "175.vpr") {
      S.ShortLoopIterations = 1200;
    } else if (S.Name == "176.gcc") {
      S.ShortLoopIterations = 70;
    } else if (S.Name == "300.twolf") {
      S.ShortLoopIterations = 170;
    } else if (S.Name == "186.crafty") {
      S.ShortLoopIterations = 2300;
    } else if (S.Name == "197.parser" || S.Name == "254.gap") {
      S.ShortLoopIterations = 200;
    }
  }
  return Suite;
}

std::vector<WorkloadSpec> mao::spec2006Profiles() {
  std::vector<WorkloadSpec> Suite;

  WorkloadSpec DealII;
  DealII.Name = "447.dealII";
  DealII.Lang = "C++";
  DealII.Seed = 447;
  DealII.Functions = 8;
  DealII.FillerPerFunction = 300;
  DealII.RedundantTests = 14;
  DealII.HarmlessTests = 40;
  DealII.RedundantLoads = 12;
  DealII.DecodeBoundLoops = 1; // Modest REDMOV/REDTEST wins (~3%).
  DealII.DecodeLoopIterations = 4000;
  DealII.AlignedShortLoops = 3;
  DealII.SplitShortLoops = 1;
  DealII.SchedFanoutLoops = 1;
  Suite.push_back(DealII);

  WorkloadSpec Calculix;
  Calculix.Name = "454.calculix";
  Calculix.Lang = "F";
  Calculix.Seed = 454;
  Calculix.Functions = 6;
  Calculix.FillerPerFunction = 200;
  Calculix.RedundantTests = 8;
  Calculix.HarmlessTests = 20;
  Calculix.RedundantLoads = 10;
  // Runtime dominated by decode-bound loops full of removable
  // instructions: REDMOV/REDTEST win ~20%; NOPKILL removes the alignment
  // these loops rely on (-8.8%).
  Calculix.DecodeBoundLoops = 6;
  Calculix.DecodeLoopIterations = 8000;
  Calculix.NeutralIterations = 500;
  Calculix.FillerPerFunction = 80;
  Calculix.AlignDirectivesOnHotLoops = true;
  Suite.push_back(Calculix);

  const struct {
    const char *Name;
    const char *Lang;
    unsigned Sched;
    uint64_t Seed;
  } SchedRows[] = {{"410.bwaves", "F", 2, 410},
                   {"434.zeusmp", "F", 2, 434},
                   {"483.xalancbmk", "C++", 2, 483},
                   {"429.mcf", "C", 2, 429},
                   {"464.h264ref", "C", 3, 464}};
  for (const auto &Row : SchedRows) {
    WorkloadSpec S;
    S.Name = Row.Name;
    S.Lang = Row.Lang;
    S.Seed = Row.Seed;
    S.Functions = 6;
    S.FillerPerFunction = 250;
    S.RedundantTests = 6;
    S.HarmlessTests = 18;
    S.RedundantLoads = 6;
    S.SchedFanoutLoops = Row.Sched;
    S.SchedLoopIterations = 8000;
    S.AlignedShortLoops = 2;
    S.HotIterations = 2500;
    Suite.push_back(S);
  }
  return Suite;
}

WorkloadSpec mao::googleCorpusProfile(double Scale) {
  // Paper Sec. III-B: ~80 complex C++ files; approximately 1000 redundant
  // zero extensions; 79763 test instructions, 19272 (24%) redundant;
  // 13362 redundant memory accesses.
  WorkloadSpec S;
  S.Name = "google-core-library";
  S.Lang = "C++";
  S.Seed = 1600;
  auto Scaled = [Scale](double V) {
    return static_cast<unsigned>(V * Scale + 0.5);
  };
  S.Functions = std::max(1u, Scaled(80));
  S.FillerPerFunction = 400;
  S.ZeroExtPatterns = Scaled(1000);
  S.RedundantTests = Scaled(19272);
  S.HarmlessTests = Scaled(79763 - 19272);
  S.RedundantLoads = Scaled(13362);
  S.AddAddPairs = Scaled(500);
  S.JumpTables = Scaled(40);
  // The corpus is for static analysis; keep hot loops minimal.
  S.SplitShortLoops = 0;
  S.AlignedShortLoops = 0;
  S.SchedFanoutLoops = 0;
  S.HotIterations = 10;
  return S;
}

const WorkloadSpec *mao::findBenchmarkProfile(const std::string &Name) {
  static const std::vector<WorkloadSpec> All = [] {
    std::vector<WorkloadSpec> V = spec2000IntProfiles();
    std::vector<WorkloadSpec> V6 = spec2006Profiles();
    V.insert(V.end(), V6.begin(), V6.end());
    return V;
  }();
  for (const WorkloadSpec &S : All)
    if (S.Name == Name)
      return &S;
  return nullptr;
}
