//===- x86/X86Defs.h - Core x86-64 definitions ------------------*- C++ -*-===//
///
/// \file
/// Small shared enums for the x86-64 instruction model: operation widths,
/// condition codes, RFLAGS bits, and execution-port masks. These are the
/// vocabulary used by the opcode table, the encoder, the dataflow framework
/// and the micro-architectural simulator.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_X86_X86DEFS_H
#define MAO_X86_X86DEFS_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>

namespace mao {

/// Operation width. For GPR instructions this is the operand size implied by
/// the AT&T mnemonic suffix (b/w/l/q) or by the register operands.
enum class Width : uint8_t { None, B, W, L, Q };

/// Returns the width in bytes; None maps to 0.
inline unsigned widthBytes(Width W) {
  switch (W) {
  case Width::None:
    return 0;
  case Width::B:
    return 1;
  case Width::W:
    return 2;
  case Width::L:
    return 4;
  case Width::Q:
    return 8;
  }
  assert(false && "covered switch");
  return 0;
}

/// Returns the AT&T suffix character for a width ('\0' for None).
inline char widthSuffix(Width W) {
  switch (W) {
  case Width::None:
    return '\0';
  case Width::B:
    return 'b';
  case Width::W:
    return 'w';
  case Width::L:
    return 'l';
  case Width::Q:
    return 'q';
  }
  assert(false && "covered switch");
  return '\0';
}

/// x86 condition codes with their hardware encodings (the low nibble of the
/// 0F 8x / 0F 9x / 0F 4x opcode families).
enum class CondCode : uint8_t {
  O = 0x0,
  NO = 0x1,
  B = 0x2,  // aka C, NAE
  AE = 0x3, // aka NC, NB
  E = 0x4,  // aka Z
  NE = 0x5, // aka NZ
  BE = 0x6, // aka NA
  A = 0x7,  // aka NBE
  S = 0x8,
  NS = 0x9,
  P = 0xa,  // aka PE
  NP = 0xb, // aka PO
  L = 0xc,  // aka NGE
  GE = 0xd, // aka NL
  LE = 0xe, // aka NG
  G = 0xf,  // aka NLE
  None = 0xff,
};

/// Returns the canonical AT&T spelling ("e", "ne", "g", ...).
const char *condCodeName(CondCode CC);

/// Parses a condition-code suffix, accepting all aliases ("z", "nae", ...).
/// Returns CondCode::None when \p Text is not a condition code.
CondCode parseCondCode(std::string_view Text);

/// One accepted condition-code spelling. The full alias table is exposed so
/// clients that precompute suffix-resolution tables (the parser's mnemonic
/// map) can enumerate every spelling instead of probing parseCondCode().
struct CondCodeSpelling {
  const char *Name;
  CondCode CC;
};
constexpr unsigned NumCondCodeSpellings = 30;
extern const CondCodeSpelling CondCodeSpellings[NumCondCodeSpellings];

/// Returns the negated condition (E <-> NE, L <-> GE, ...).
inline CondCode invertCondCode(CondCode CC) {
  assert(CC != CondCode::None && "inverting the null condition");
  return static_cast<CondCode>(static_cast<uint8_t>(CC) ^ 1);
}

/// RFLAGS bits tracked by the dataflow framework. MAO precisely models the
/// x86-64 condition codes (paper Sec. III-B), which is what enables the
/// redundant-test-removal pass.
enum FlagBit : uint8_t {
  FlagCF = 1 << 0,
  FlagPF = 1 << 1,
  FlagAF = 1 << 2,
  FlagZF = 1 << 3,
  FlagSF = 1 << 4,
  FlagOF = 1 << 5,
  FlagDF = 1 << 6,
};

/// All six arithmetic status flags.
constexpr uint8_t FlagsAllStatus =
    FlagCF | FlagPF | FlagAF | FlagZF | FlagSF | FlagOF;

/// Returns the set of flags a condition code reads.
uint8_t condCodeFlagsUsed(CondCode CC);

/// Formats a flag mask as e.g. "CF|ZF" for diagnostics.
std::string flagMaskToString(uint8_t Mask);

/// Execution ports of the modelled out-of-order back end (Core-2-like:
/// three ALU-capable issue ports plus dedicated load / store-address /
/// store-data ports). The paper's Sec. III-F observations (lea restricted
/// to port 0, shifts to ports 0 and 5) are encoded in the opcode table.
enum PortBit : uint8_t {
  Port0 = 1 << 0,
  Port1 = 1 << 1,
  Port2 = 1 << 2, // load
  Port3 = 1 << 3, // store address
  Port4 = 1 << 4, // store data
  Port5 = 1 << 5,
};

/// Ports usable by generic single-cycle ALU operations.
constexpr uint8_t PortsAluAny = Port0 | Port1 | Port5;

} // namespace mao

#endif // MAO_X86_X86DEFS_H
