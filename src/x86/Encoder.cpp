//===- x86/Encoder.cpp - x86-64 binary encoder ------------------------------==//

#include "x86/Encoder.h"

#include "support/FaultInjection.h"
#include "x86/EncodeCache.h"

#include <cassert>
#include <cstring>

using namespace mao;

namespace {

/// REX prefix bits.
enum RexBit : uint8_t { RexB = 1, RexX = 2, RexR = 4, RexW = 8 };

/// Accumulates one instruction encoding, then serializes it in canonical
/// prefix / opcode / ModRM / SIB / displacement / immediate order.
class EncodingBuilder {
public:
  EncodingBuilder(const Instruction &Insn, int64_t Address,
                  const LabelAddressMap *Labels)
      : Insn(Insn), Address(Address), Labels(Labels) {}

  MaoStatus run(std::vector<uint8_t> &Out);

private:
  MaoStatus encodeBody();

  // Per-kind encoders.
  MaoStatus encodeMov();
  MaoStatus encodeMovx();
  MaoStatus encodeLea();
  MaoStatus encodeAluRMI();
  MaoStatus encodeTest();
  MaoStatus encodeUnaryRM();
  MaoStatus encodeImul();
  MaoStatus encodeShiftRot();
  MaoStatus encodePush();
  MaoStatus encodePop();
  MaoStatus encodeXchg();
  MaoStatus encodeBswap();
  MaoStatus encodeBranch();
  MaoStatus encodeCall();
  MaoStatus encodeRet();
  MaoStatus encodeSetcc();
  MaoStatus encodeCmovcc();
  MaoStatus encodeFixed();
  MaoStatus encodeNop();
  MaoStatus encodeSseMov();
  MaoStatus encodeSseCvtMov();
  MaoStatus encodeSseAlu();
  MaoStatus encodePrefetch();

  // Component helpers ------------------------------------------------------
  void addPrefix(uint8_t Byte) {
    assert(NumPrefixes < sizeof(Prefixes) && "too many prefixes");
    Prefixes[NumPrefixes++] = Byte;
  }
  void addOpcode(uint8_t Byte) {
    assert(OpcodeLen < sizeof(Opcode) && "opcode too long");
    Opcode[OpcodeLen++] = Byte;
  }

  /// Applies operand-size conventions for width \p W: 0x66 for 16-bit,
  /// REX.W for 64-bit.
  void applyWidth(Width W) {
    if (W == Width::W)
      Need66 = true;
    else if (W == Width::Q)
      Rex |= RexW;
  }

  /// Notes register \p R's REX constraints (REX-only byte registers force
  /// an empty REX; high-byte registers forbid one).
  void noteRegConstraints(Reg R) {
    if (regNeedsRex(R) && regWidth(R) == Width::B)
      ForceRex = true;
    if (regIsHighByte(R))
      HighByteUsed = true;
  }

  /// Places \p R in the ModRM reg field.
  void setModRMReg(Reg R) {
    noteRegConstraints(R);
    unsigned Enc = regEncoding(R);
    ModRM |= static_cast<uint8_t>((Enc & 7) << 3);
    if (Enc & 8)
      Rex |= RexR;
    HasModRM = true;
  }

  /// Places digit \p D in the ModRM reg field (/digit forms).
  void setModRMDigit(unsigned D) {
    assert(D < 8 && "ModRM digit out of range");
    ModRM |= static_cast<uint8_t>(D << 3);
    HasModRM = true;
  }

  /// Places a register or memory operand in the ModRM rm/SIB fields.
  MaoStatus setRM(const Operand &Op);

  /// Sets an immediate of \p Bytes bytes.
  void setImm(int64_t Value, unsigned Bytes) {
    Imm = Value;
    ImmSize = Bytes;
  }

  /// Resolves \p Sym + \p Addend to an address, or 0 when unknown.
  int64_t resolveSym(const std::string &Sym, int64_t Addend) const {
    if (!Labels)
      return 0;
    auto It = Labels->find(Sym);
    if (It == Labels->end())
      return 0;
    return It->second + Addend;
  }

  unsigned totalLength() const {
    return NumPrefixes + (Need66 ? 1 : 0) + (rexByteNeeded() ? 1 : 0) +
           OpcodeLen + (HasModRM ? 1 : 0) + (HasSib ? 1 : 0) + DispSize +
           ImmSize;
  }

  bool rexByteNeeded() const { return Rex != 0 || ForceRex; }

  const Instruction &Insn;
  int64_t Address;
  const LabelAddressMap *Labels;

  // Encodings are short and bounded, so the component buffers are plain
  // inline arrays: this builder is constructed once per encoded (or merely
  // validated) instruction and must not touch the heap on the hot path.
  uint8_t Prefixes[4];                // mandatory + legacy prefixes except 66
  uint8_t NumPrefixes = 0;
  bool Need66 = false;
  uint8_t Rex = 0;
  bool ForceRex = false;
  bool HighByteUsed = false;
  uint8_t Opcode[4];
  uint8_t OpcodeLen = 0;
  bool HasModRM = false;
  uint8_t ModRM = 0;
  bool HasSib = false;
  uint8_t Sib = 0;
  unsigned DispSize = 0;
  int64_t Disp = 0;
  bool DispIsPcRel = false;           // patched after length is known
  const std::string *PcRelSym = nullptr; // symbol for PC-relative disp
  int64_t PcRelAddend = 0;
  unsigned ImmSize = 0;
  int64_t Imm = 0;
  uint8_t RawBytes[16];               // fixed-pattern instructions (NOPs)
  uint8_t RawLen = 0;
};

bool fitsInt8(int64_t V) { return V >= -128 && V <= 127; }
bool fitsInt32(int64_t V) {
  return V >= INT64_C(-2147483648) && V <= INT64_C(2147483647);
}

MaoStatus EncodingBuilder::setRM(const Operand &Op) {
  HasModRM = true;
  if (Op.isReg()) {
    noteRegConstraints(Op.R);
    unsigned Enc = regEncoding(Op.R);
    ModRM |= 0xc0;
    ModRM |= static_cast<uint8_t>(Enc & 7);
    if (Enc & 8)
      Rex |= RexB;
    return MaoStatus::success();
  }

  assert(Op.isMem() && "rm operand must be a register or memory reference");
  const MemRef &M = Op.Mem;

  if (M.isRipRelative()) {
    if (M.Index != Reg::None)
      return MaoStatus::error("RIP-relative reference cannot have an index");
    ModRM |= 0x05; // mod=00 rm=101
    DispSize = 4;
    DispIsPcRel = true;
    PcRelSym = &M.SymDisp;
    PcRelAddend = M.Disp;
    return MaoStatus::success();
  }

  if (M.Index == Reg::RSP)
    return MaoStatus::error("%rsp cannot be used as an index register");

  const bool HasBase = M.Base != Reg::None;
  const bool HasIndex = M.Index != Reg::None;
  if ((HasBase && regWidth(M.Base) != Width::Q) ||
      (HasIndex && regWidth(M.Index) != Width::Q))
    return MaoStatus::error("addressing requires 64-bit base/index registers");

  // Absolute address: [disp32] via SIB with no base, no index.
  if (!HasBase && !HasIndex) {
    ModRM |= 0x04; // mod=00 rm=100 -> SIB
    HasSib = true;
    Sib = 0x25; // scale=0, index=100 (none), base=101 (disp32)
    DispSize = 4;
    Disp = M.hasSym() ? resolveSym(M.SymDisp, M.Disp) : M.Disp;
    return MaoStatus::success();
  }

  // Pick mod / displacement size.
  unsigned BaseEnc = HasBase ? regEncoding(M.Base) : 5;
  uint8_t Mod;
  if (!HasBase) {
    Mod = 0x00; // SIB with base=101: disp32 follows
    DispSize = 4;
  } else if (M.hasSym()) {
    Mod = 0x80;
    DispSize = 4;
  } else if (M.Disp == 0 && (BaseEnc & 7) != 5) {
    Mod = 0x00;
    DispSize = 0;
  } else if (fitsInt8(M.Disp)) {
    Mod = 0x40;
    DispSize = 1;
  } else {
    Mod = 0x80;
    DispSize = 4;
  }
  Disp = M.hasSym() ? resolveSym(M.SymDisp, M.Disp) : M.Disp;

  const bool NeedSib = HasIndex || !HasBase || (BaseEnc & 7) == 4;
  if (!NeedSib) {
    ModRM |= Mod | static_cast<uint8_t>(BaseEnc & 7);
    if (BaseEnc & 8)
      Rex |= RexB;
    return MaoStatus::success();
  }

  ModRM |= Mod | 0x04;
  HasSib = true;
  unsigned ScaleBits;
  switch (M.Scale) {
  case 1:
    ScaleBits = 0;
    break;
  case 2:
    ScaleBits = 1;
    break;
  case 4:
    ScaleBits = 2;
    break;
  case 8:
    ScaleBits = 3;
    break;
  default:
    return MaoStatus::error("memory scale must be 1, 2, 4 or 8");
  }
  unsigned IndexEnc = HasIndex ? regEncoding(M.Index) : 4; // 100 = none
  Sib = static_cast<uint8_t>((ScaleBits << 6) | ((IndexEnc & 7) << 3) |
                             (HasBase ? (BaseEnc & 7) : 5));
  if (HasIndex && (IndexEnc & 8))
    Rex |= RexX;
  if (HasBase && (BaseEnc & 8))
    Rex |= RexB;
  return MaoStatus::success();
}

MaoStatus EncodingBuilder::encodeMov() {
  assert(Insn.Ops.size() == 2 && "mov needs src, dst");
  const Operand &Src = Insn.Ops[0];
  const Operand &Dst = Insn.Ops[1];
  const Width W = Insn.W;
  applyWidth(W);
  const bool Byte = W == Width::B;

  if (Src.isImm()) {
    if (Dst.isReg()) {
      if (W == Width::Q) {
        if (Src.isConstImm() && !fitsInt32(Src.Imm)) {
          // movabs: B8+r imm64.
          noteRegConstraints(Dst.R);
          unsigned Enc = regEncoding(Dst.R);
          if (Enc & 8)
            Rex |= RexB;
          addOpcode(static_cast<uint8_t>(0xb8 | (Enc & 7)));
          setImm(Src.Imm, 8);
          return MaoStatus::success();
        }
        // C7 /0 imm32 sign-extended.
        addOpcode(0xc7);
        setModRMDigit(0);
        if (MaoStatus S = setRM(Dst))
          return S;
        setImm(Src.isSymbolicImm() ? resolveSym(Src.Sym, Src.Imm) : Src.Imm,
               4);
        return MaoStatus::success();
      }
      // B0+r / B8+r with a full-width immediate.
      noteRegConstraints(Dst.R);
      unsigned Enc = regEncoding(Dst.R);
      if (Enc & 8)
        Rex |= RexB;
      addOpcode(static_cast<uint8_t>((Byte ? 0xb0 : 0xb8) | (Enc & 7)));
      setImm(Src.isSymbolicImm() ? resolveSym(Src.Sym, Src.Imm) : Src.Imm,
             Byte ? 1 : (W == Width::W ? 2 : 4));
      return MaoStatus::success();
    }
    if (Dst.isMem()) {
      addOpcode(Byte ? 0xc6 : 0xc7);
      setModRMDigit(0);
      if (MaoStatus S = setRM(Dst))
        return S;
      setImm(Src.isSymbolicImm() ? resolveSym(Src.Sym, Src.Imm) : Src.Imm,
             Byte ? 1 : (W == Width::W ? 2 : 4));
      return MaoStatus::success();
    }
    return MaoStatus::error("mov immediate needs a register or memory dest");
  }

  if (Src.isReg() && (Dst.isReg() || Dst.isMem())) {
    addOpcode(Byte ? 0x88 : 0x89);
    setModRMReg(Src.R);
    return setRM(Dst);
  }
  if (Src.isMem() && Dst.isReg()) {
    addOpcode(Byte ? 0x8a : 0x8b);
    setModRMReg(Dst.R);
    return setRM(Src);
  }
  if (Src.isSymbol() && Dst.isReg()) {
    // `mov sym, %reg` (absolute load); encode as mem form with symbolic disp.
    Operand MemOp = Operand::makeMem(MemRef{Src.Sym, Src.Imm, Reg::None,
                                            Reg::None, 1});
    addOpcode(Byte ? 0x8a : 0x8b);
    setModRMReg(Dst.R);
    return setRM(MemOp);
  }
  return MaoStatus::error("unsupported mov operand combination");
}

MaoStatus EncodingBuilder::encodeMovx() {
  assert(Insn.Ops.size() == 2 && "movzx/movsx need src, dst");
  const Operand &Src = Insn.Ops[0];
  const Operand &Dst = Insn.Ops[1];
  if (!Dst.isReg() || (!Src.isReg() && !Src.isMem()))
    return MaoStatus::error("movzx/movsx need r/m source and register dest");
  applyWidth(Insn.W);

  if (Insn.Mn == Mnemonic::MOVSX && Insn.SrcW == Width::L) {
    if (Insn.W != Width::Q)
      return MaoStatus::error("movslq destination must be 64-bit");
    addOpcode(0x63);
  } else {
    addOpcode(0x0f);
    uint8_t Base = Insn.Mn == Mnemonic::MOVZX ? 0xb6 : 0xbe;
    if (Insn.SrcW == Width::W)
      Base += 1;
    else if (Insn.SrcW != Width::B)
      return MaoStatus::error("movzx/movsx source must be byte or word");
    addOpcode(Base);
  }
  setModRMReg(Dst.R);
  return setRM(Src);
}

MaoStatus EncodingBuilder::encodeLea() {
  assert(Insn.Ops.size() == 2 && "lea needs mem, dst");
  if (!Insn.Ops[0].isMem() || !Insn.Ops[1].isReg())
    return MaoStatus::error("lea needs a memory source and register dest");
  applyWidth(Insn.W);
  addOpcode(0x8d);
  setModRMReg(Insn.Ops[1].R);
  return setRM(Insn.Ops[0]);
}

MaoStatus EncodingBuilder::encodeAluRMI() {
  assert(Insn.Ops.size() == 2 && "ALU needs src, dst");
  const Operand &Src = Insn.Ops[0];
  const Operand &Dst = Insn.Ops[1];
  const OpcodeInfo &Info = Insn.info();
  const Width W = Insn.W;
  applyWidth(W);
  const bool Byte = W == Width::B;

  if (Src.isImm()) {
    if (!Dst.isReg() && !Dst.isMem())
      return MaoStatus::error("ALU immediate needs r/m destination");
    int64_t Value =
        Src.isSymbolicImm() ? resolveSym(Src.Sym, Src.Imm) : Src.Imm;
    const bool IsAccumulator =
        Dst.isReg() && regEncoding(Dst.R) == 0 && !regIsHighByte(Dst.R);
    if (Byte) {
      if (IsAccumulator) {
        addOpcode(static_cast<uint8_t>(Info.EncA + 4)); // e.g. add al, imm8
        setImm(Value, 1);
        return MaoStatus::success();
      }
      addOpcode(0x80);
      setModRMDigit(Info.EncB);
      if (MaoStatus S = setRM(Dst))
        return S;
      setImm(Value, 1);
      return MaoStatus::success();
    }
    if (Src.isConstImm() && fitsInt8(Value)) {
      addOpcode(0x83);
      setModRMDigit(Info.EncB);
      if (MaoStatus S = setRM(Dst))
        return S;
      setImm(Value, 1);
      return MaoStatus::success();
    }
    if (IsAccumulator) {
      addOpcode(static_cast<uint8_t>(Info.EncA + 5));
      setImm(Value, W == Width::W ? 2 : 4);
      return MaoStatus::success();
    }
    addOpcode(0x81);
    setModRMDigit(Info.EncB);
    if (MaoStatus S = setRM(Dst))
      return S;
    setImm(Value, W == Width::W ? 2 : 4);
    return MaoStatus::success();
  }

  if (Src.isReg() && (Dst.isReg() || Dst.isMem())) {
    addOpcode(static_cast<uint8_t>(Info.EncA + (Byte ? 0 : 1)));
    setModRMReg(Src.R);
    return setRM(Dst);
  }
  if (Src.isMem() && Dst.isReg()) {
    addOpcode(static_cast<uint8_t>(Info.EncA + (Byte ? 2 : 3)));
    setModRMReg(Dst.R);
    return setRM(Src);
  }
  return MaoStatus::error("unsupported ALU operand combination");
}

MaoStatus EncodingBuilder::encodeTest() {
  assert(Insn.Ops.size() == 2 && "test needs two operands");
  const Operand &Src = Insn.Ops[0];
  const Operand &Dst = Insn.Ops[1];
  const Width W = Insn.W;
  applyWidth(W);
  const bool Byte = W == Width::B;

  if (Src.isImm()) {
    if (!Dst.isReg() && !Dst.isMem())
      return MaoStatus::error("test immediate needs r/m operand");
    int64_t Value =
        Src.isSymbolicImm() ? resolveSym(Src.Sym, Src.Imm) : Src.Imm;
    const bool IsAccumulator =
        Dst.isReg() && regEncoding(Dst.R) == 0 && !regIsHighByte(Dst.R);
    if (IsAccumulator) {
      addOpcode(Byte ? 0xa8 : 0xa9);
      setImm(Value, Byte ? 1 : (W == Width::W ? 2 : 4));
      return MaoStatus::success();
    }
    addOpcode(Byte ? 0xf6 : 0xf7);
    setModRMDigit(0);
    if (MaoStatus S = setRM(Dst))
      return S;
    setImm(Value, Byte ? 1 : (W == Width::W ? 2 : 4));
    return MaoStatus::success();
  }
  if (Src.isReg() && (Dst.isReg() || Dst.isMem())) {
    addOpcode(Byte ? 0x84 : 0x85);
    setModRMReg(Src.R);
    return setRM(Dst);
  }
  if (Src.isMem() && Dst.isReg()) {
    // test mem, reg == test reg, mem.
    addOpcode(Byte ? 0x84 : 0x85);
    setModRMReg(Dst.R);
    return setRM(Src);
  }
  return MaoStatus::error("unsupported test operand combination");
}

MaoStatus EncodingBuilder::encodeUnaryRM() {
  assert(Insn.Ops.size() == 1 && "unary op needs one operand");
  const OpcodeInfo &Info = Insn.info();
  const Width W = Insn.W;
  applyWidth(W);
  addOpcode(static_cast<uint8_t>(Info.EncA + (W == Width::B ? 0 : 1)));
  setModRMDigit(Info.EncB);
  return setRM(Insn.Ops[0]);
}

MaoStatus EncodingBuilder::encodeImul() {
  const Width W = Insn.W;
  applyWidth(W);
  if (Insn.Ops.size() == 1) {
    addOpcode(W == Width::B ? 0xf6 : 0xf7);
    setModRMDigit(5);
    return setRM(Insn.Ops[0]);
  }
  if (Insn.Ops.size() == 2) {
    if (!Insn.Ops[1].isReg())
      return MaoStatus::error("two-operand imul needs a register dest");
    addOpcode(0x0f);
    addOpcode(0xaf);
    setModRMReg(Insn.Ops[1].R);
    return setRM(Insn.Ops[0]);
  }
  assert(Insn.Ops.size() == 3 && "imul takes 1-3 operands");
  const Operand &ImmOp = Insn.Ops[0];
  if (!ImmOp.isImm() || !Insn.Ops[2].isReg())
    return MaoStatus::error("three-operand imul needs imm, r/m, reg");
  int64_t Value =
      ImmOp.isSymbolicImm() ? resolveSym(ImmOp.Sym, ImmOp.Imm) : ImmOp.Imm;
  const bool Short = ImmOp.isConstImm() && fitsInt8(Value);
  addOpcode(Short ? 0x6b : 0x69);
  setModRMReg(Insn.Ops[2].R);
  if (MaoStatus S = setRM(Insn.Ops[1]))
    return S;
  setImm(Value, Short ? 1 : (W == Width::W ? 2 : 4));
  return MaoStatus::success();
}

MaoStatus EncodingBuilder::encodeShiftRot() {
  const OpcodeInfo &Info = Insn.info();
  const Width W = Insn.W;
  applyWidth(W);
  const bool Byte = W == Width::B;

  if (Insn.Ops.size() == 1) {
    addOpcode(Byte ? 0xd0 : 0xd1); // shift by 1
    setModRMDigit(Info.EncA);
    return setRM(Insn.Ops[0]);
  }
  assert(Insn.Ops.size() == 2 && "shift takes 1-2 operands");
  const Operand &Count = Insn.Ops[0];
  if (Count.isReg()) {
    if (Count.R != Reg::CL)
      return MaoStatus::error("variable shift count must be %cl");
    addOpcode(Byte ? 0xd2 : 0xd3);
    setModRMDigit(Info.EncA);
    return setRM(Insn.Ops[1]);
  }
  if (!Count.isConstImm())
    return MaoStatus::error("shift count must be an immediate or %cl");
  if (Count.Imm == 1) {
    addOpcode(Byte ? 0xd0 : 0xd1);
    setModRMDigit(Info.EncA);
    return setRM(Insn.Ops[1]);
  }
  addOpcode(Byte ? 0xc0 : 0xc1);
  setModRMDigit(Info.EncA);
  if (MaoStatus S = setRM(Insn.Ops[1]))
    return S;
  setImm(Count.Imm, 1);
  return MaoStatus::success();
}

MaoStatus EncodingBuilder::encodePush() {
  assert(Insn.Ops.size() == 1 && "push needs one operand");
  const Operand &Op = Insn.Ops[0];
  if (Op.isReg()) {
    if (regWidth(Op.R) != Width::Q)
      return MaoStatus::error("push needs a 64-bit register");
    unsigned Enc = regEncoding(Op.R);
    if (Enc & 8)
      Rex |= RexB;
    addOpcode(static_cast<uint8_t>(0x50 | (Enc & 7)));
    return MaoStatus::success();
  }
  if (Op.isImm()) {
    int64_t Value = Op.isSymbolicImm() ? resolveSym(Op.Sym, Op.Imm) : Op.Imm;
    if (Op.isConstImm() && fitsInt8(Value)) {
      addOpcode(0x6a);
      setImm(Value, 1);
    } else {
      addOpcode(0x68);
      setImm(Value, 4);
    }
    return MaoStatus::success();
  }
  if (Op.isMem()) {
    addOpcode(0xff);
    setModRMDigit(6);
    return setRM(Op);
  }
  return MaoStatus::error("unsupported push operand");
}

MaoStatus EncodingBuilder::encodePop() {
  assert(Insn.Ops.size() == 1 && "pop needs one operand");
  const Operand &Op = Insn.Ops[0];
  if (Op.isReg()) {
    if (regWidth(Op.R) != Width::Q)
      return MaoStatus::error("pop needs a 64-bit register");
    unsigned Enc = regEncoding(Op.R);
    if (Enc & 8)
      Rex |= RexB;
    addOpcode(static_cast<uint8_t>(0x58 | (Enc & 7)));
    return MaoStatus::success();
  }
  if (Op.isMem()) {
    addOpcode(0x8f);
    setModRMDigit(0);
    return setRM(Op);
  }
  return MaoStatus::error("unsupported pop operand");
}

MaoStatus EncodingBuilder::encodeXchg() {
  assert(Insn.Ops.size() == 2 && "xchg needs two operands");
  const Width W = Insn.W;
  applyWidth(W);
  // Short form: xchg with the accumulator encodes as 90+r.
  if (W != Width::B && Insn.Ops[0].isReg() && Insn.Ops[1].isReg()) {
    for (unsigned Acc = 0; Acc < 2; ++Acc) {
      const Reg A = Insn.Ops[Acc].R;
      const Reg Other = Insn.Ops[1 - Acc].R;
      if (regEncoding(A) == 0 && regIsGpr(A) && !regIsHighByte(A)) {
        unsigned Enc = regEncoding(Other);
        if (Enc & 8)
          Rex |= RexB;
        addOpcode(static_cast<uint8_t>(0x90 | (Enc & 7)));
        return MaoStatus::success();
      }
    }
  }
  addOpcode(W == Width::B ? 0x86 : 0x87);
  if (Insn.Ops[0].isReg()) {
    setModRMReg(Insn.Ops[0].R);
    return setRM(Insn.Ops[1]);
  }
  if (Insn.Ops[1].isReg()) {
    setModRMReg(Insn.Ops[1].R);
    return setRM(Insn.Ops[0]);
  }
  return MaoStatus::error("xchg needs at least one register operand");
}

MaoStatus EncodingBuilder::encodeBswap() {
  assert(Insn.Ops.size() == 1 && "bswap needs one operand");
  if (!Insn.Ops[0].isReg())
    return MaoStatus::error("bswap needs a register operand");
  applyWidth(Insn.W);
  unsigned Enc = regEncoding(Insn.Ops[0].R);
  if (Enc & 8)
    Rex |= RexB;
  addOpcode(0x0f);
  addOpcode(static_cast<uint8_t>(0xc8 | (Enc & 7)));
  return MaoStatus::success();
}

MaoStatus EncodingBuilder::encodeBranch() {
  assert(Insn.Ops.size() == 1 && "branch needs a target");
  const Operand &Target = Insn.Ops[0];
  const bool Cond = Insn.info().Kind == EncKind::Jcc;

  if (Target.isSymbol()) {
    unsigned Size = Insn.BranchSize == 1 ? 1 : 4;
    if (Cond) {
      if (Size == 1) {
        addOpcode(static_cast<uint8_t>(0x70 | static_cast<uint8_t>(Insn.CC)));
      } else {
        addOpcode(0x0f);
        addOpcode(static_cast<uint8_t>(0x80 | static_cast<uint8_t>(Insn.CC)));
      }
    } else {
      addOpcode(Size == 1 ? 0xeb : 0xe9);
    }
    DispSize = Size;
    DispIsPcRel = true;
    PcRelSym = &Target.Sym;
    PcRelAddend = Target.Imm;
    return MaoStatus::success();
  }

  if (Cond)
    return MaoStatus::error("conditional jumps cannot be indirect");
  addOpcode(0xff);
  setModRMDigit(4);
  return setRM(Target);
}

MaoStatus EncodingBuilder::encodeCall() {
  assert(Insn.Ops.size() == 1 && "call needs a target");
  const Operand &Target = Insn.Ops[0];
  if (Target.isSymbol()) {
    addOpcode(0xe8);
    DispSize = 4;
    DispIsPcRel = true;
    PcRelSym = &Target.Sym;
    PcRelAddend = Target.Imm;
    return MaoStatus::success();
  }
  addOpcode(0xff);
  setModRMDigit(2);
  return setRM(Target);
}

MaoStatus EncodingBuilder::encodeRet() {
  if (Insn.Ops.empty()) {
    addOpcode(0xc3);
    return MaoStatus::success();
  }
  if (Insn.Ops.size() == 1 && Insn.Ops[0].isConstImm()) {
    addOpcode(0xc2);
    setImm(Insn.Ops[0].Imm, 2);
    return MaoStatus::success();
  }
  return MaoStatus::error("ret takes no operand or an imm16");
}

MaoStatus EncodingBuilder::encodeSetcc() {
  assert(Insn.Ops.size() == 1 && "setcc needs one operand");
  addOpcode(0x0f);
  addOpcode(static_cast<uint8_t>(0x90 | static_cast<uint8_t>(Insn.CC)));
  setModRMDigit(0);
  return setRM(Insn.Ops[0]);
}

MaoStatus EncodingBuilder::encodeCmovcc() {
  assert(Insn.Ops.size() == 2 && "cmov needs src, dst");
  if (!Insn.Ops[1].isReg())
    return MaoStatus::error("cmov needs a register destination");
  applyWidth(Insn.W);
  addOpcode(0x0f);
  addOpcode(static_cast<uint8_t>(0x40 | static_cast<uint8_t>(Insn.CC)));
  setModRMReg(Insn.Ops[1].R);
  return setRM(Insn.Ops[0]);
}

MaoStatus EncodingBuilder::encodeFixed() {
  switch (Insn.Mn) {
  case Mnemonic::CLTQ:
    Rex |= RexW;
    addOpcode(0x98);
    return MaoStatus::success();
  case Mnemonic::CWTL:
    addOpcode(0x98);
    return MaoStatus::success();
  case Mnemonic::CBTW:
    Need66 = true;
    addOpcode(0x98);
    return MaoStatus::success();
  case Mnemonic::CLTD:
    addOpcode(0x99);
    return MaoStatus::success();
  case Mnemonic::CQTO:
    Rex |= RexW;
    addOpcode(0x99);
    return MaoStatus::success();
  case Mnemonic::LEAVE:
    addOpcode(0xc9);
    return MaoStatus::success();
  case Mnemonic::CPUID:
    addOpcode(0x0f);
    addOpcode(0xa2);
    return MaoStatus::success();
  case Mnemonic::RDTSC:
    addOpcode(0x0f);
    addOpcode(0x31);
    return MaoStatus::success();
  default:
    return MaoStatus::error("unknown fixed-encoding mnemonic");
  }
}

MaoStatus EncodingBuilder::encodeNop() {
  // Recommended multi-byte NOP sequences (Intel SDM). Lengths above nine
  // bytes prepend 0x66 prefixes to the nine-byte form.
  static const uint8_t Forms[9][9] = {
      {0x90},
      {0x66, 0x90},
      {0x0f, 0x1f, 0x00},
      {0x0f, 0x1f, 0x40, 0x00},
      {0x0f, 0x1f, 0x44, 0x00, 0x00},
      {0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00},
      {0x0f, 0x1f, 0x80, 0x00, 0x00, 0x00, 0x00},
      {0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
      {0x66, 0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00},
  };
  unsigned Len = Insn.NopLength == 0 ? 1 : Insn.NopLength;
  assert(Len <= 15 && "NOP length out of range");
  unsigned Extra = Len > 9 ? Len - 9 : 0;
  unsigned FormLen = Len - Extra;
  std::memset(RawBytes, 0x66, Extra);
  std::memcpy(RawBytes + Extra, Forms[FormLen - 1], FormLen);
  RawLen = static_cast<uint8_t>(Len);
  return MaoStatus::success();
}

MaoStatus EncodingBuilder::encodeSseMov() {
  assert(Insn.Ops.size() == 2 && "SSE move needs src, dst");
  const OpcodeInfo &Info = Insn.info();
  static const uint8_t PrefixFor[] = {0x00, 0x66, 0xf3, 0xf2};
  if (uint8_t P = PrefixFor[Info.EncA])
    addPrefix(P);
  const Operand &Src = Insn.Ops[0];
  const Operand &Dst = Insn.Ops[1];
  if (Dst.isReg() && regIsXmm(Dst.R)) {
    addOpcode(0x0f);
    addOpcode(Info.EncB);
    setModRMReg(Dst.R);
    return setRM(Src);
  }
  if (Src.isReg() && regIsXmm(Src.R) && Dst.isMem()) {
    addOpcode(0x0f);
    addOpcode(static_cast<uint8_t>(Info.EncB + 1));
    setModRMReg(Src.R);
    return setRM(Dst);
  }
  return MaoStatus::error("unsupported SSE move operand combination");
}

MaoStatus EncodingBuilder::encodeSseCvtMov() {
  assert(Insn.Ops.size() == 2 && "movd/movq need src, dst");
  const Operand &Src = Insn.Ops[0];
  const Operand &Dst = Insn.Ops[1];
  if (Insn.Mn == Mnemonic::MOVQX)
    Rex |= RexW;
  addPrefix(0x66);
  if (Dst.isReg() && regIsXmm(Dst.R) && (Src.isReg() || Src.isMem())) {
    addOpcode(0x0f);
    addOpcode(0x6e);
    setModRMReg(Dst.R);
    return setRM(Src);
  }
  if (Src.isReg() && regIsXmm(Src.R) && (Dst.isReg() || Dst.isMem())) {
    addOpcode(0x0f);
    addOpcode(0x7e);
    setModRMReg(Src.R);
    return setRM(Dst);
  }
  return MaoStatus::error("unsupported movd/movq operand combination");
}

MaoStatus EncodingBuilder::encodeSseAlu() {
  assert(Insn.Ops.size() == 2 && "SSE ALU needs src, dst");
  const OpcodeInfo &Info = Insn.info();
  static const uint8_t PrefixFor[] = {0x00, 0x66, 0xf3, 0xf2};
  if (uint8_t P = PrefixFor[Info.EncA])
    addPrefix(P);
  if (!Insn.Ops[1].isReg() || !regIsXmm(Insn.Ops[1].R))
    return MaoStatus::error("SSE ALU needs an xmm destination");
  addOpcode(0x0f);
  addOpcode(Info.EncB);
  setModRMReg(Insn.Ops[1].R);
  return setRM(Insn.Ops[0]);
}

MaoStatus EncodingBuilder::encodePrefetch() {
  assert(Insn.Ops.size() == 1 && "prefetch needs a memory operand");
  if (!Insn.Ops[0].isMem())
    return MaoStatus::error("prefetch needs a memory operand");
  addOpcode(0x0f);
  addOpcode(0x18);
  setModRMDigit(Insn.info().EncA);
  return setRM(Insn.Ops[0]);
}

MaoStatus EncodingBuilder::encodeBody() {
  switch (Insn.info().Kind) {
  case EncKind::Mov:
    return encodeMov();
  case EncKind::Movx:
    return encodeMovx();
  case EncKind::Lea:
    return encodeLea();
  case EncKind::AluRMI:
    return encodeAluRMI();
  case EncKind::Test:
    return encodeTest();
  case EncKind::UnaryRM:
    return encodeUnaryRM();
  case EncKind::ImulMulti:
    return encodeImul();
  case EncKind::ShiftRot:
    return encodeShiftRot();
  case EncKind::Push:
    return encodePush();
  case EncKind::Pop:
    return encodePop();
  case EncKind::Xchg:
    return encodeXchg();
  case EncKind::Bswap:
    return encodeBswap();
  case EncKind::Jmp:
  case EncKind::Jcc:
    return encodeBranch();
  case EncKind::Call:
    return encodeCall();
  case EncKind::Ret:
    return encodeRet();
  case EncKind::Setcc:
    return encodeSetcc();
  case EncKind::Cmovcc:
    return encodeCmovcc();
  case EncKind::Fixed:
    return encodeFixed();
  case EncKind::Nop:
    return encodeNop();
  case EncKind::SseMov:
    return encodeSseMov();
  case EncKind::SseCvtMov:
    return encodeSseCvtMov();
  case EncKind::SseAlu:
    return encodeSseAlu();
  case EncKind::Prefetch:
    return encodePrefetch();
  case EncKind::Opaque:
    // Unknown instruction: a fixed-size placeholder (see header comment).
    static_assert(OpaqueInstructionSizeEstimate <= sizeof(RawBytes));
    std::memset(RawBytes, 0xcc, OpaqueInstructionSizeEstimate);
    RawLen = OpaqueInstructionSizeEstimate;
    return MaoStatus::success();
  }
  assert(false && "covered switch");
  return MaoStatus::error("unreachable");
}

MaoStatus EncodingBuilder::run(std::vector<uint8_t> &Out) {
  if (MaoStatus S = encodeBody())
    return S;

  if (RawLen != 0) {
    Out.insert(Out.end(), RawBytes, RawBytes + RawLen);
    return MaoStatus::success();
  }

  if (HighByteUsed && rexByteNeeded())
    return MaoStatus::error(
        "high-byte register cannot be combined with a REX prefix");

  if (DispIsPcRel) {
    int64_t Target = resolveSym(*PcRelSym, PcRelAddend);
    // PcRelSym may legitimately be unresolved (external symbol): encode 0.
    if (Labels && Labels->count(*PcRelSym))
      Disp = Target - (Address + totalLength());
    else
      Disp = 0;
    if (DispSize == 1 && !fitsInt8(Disp))
      return MaoStatus::error("rel8 branch displacement out of range");
  }

  for (uint8_t I = 0; I < NumPrefixes; ++I)
    Out.push_back(Prefixes[I]);
  if (Need66)
    Out.push_back(0x66);
  if (rexByteNeeded())
    Out.push_back(static_cast<uint8_t>(0x40 | Rex));
  for (uint8_t I = 0; I < OpcodeLen; ++I)
    Out.push_back(Opcode[I]);
  if (HasModRM)
    Out.push_back(ModRM);
  if (HasSib)
    Out.push_back(Sib);
  for (unsigned I = 0; I < DispSize; ++I)
    Out.push_back(static_cast<uint8_t>((Disp >> (8 * I)) & 0xff));
  for (unsigned I = 0; I < ImmSize; ++I)
    Out.push_back(static_cast<uint8_t>((Imm >> (8 * I)) & 0xff));
  return MaoStatus::success();
}

} // namespace

MaoStatus mao::encodeInstruction(const Instruction &Insn, int64_t Address,
                                 const LabelAddressMap *Labels,
                                 std::vector<uint8_t> &Out) {
  // Fault-injection point: only the fallible public entry is instrumented;
  // instructionLength() below bypasses it because callers assert success.
  if (FaultInjector::instance().shouldFail(FaultSite::Encoder))
    return MaoStatus::error("injected encoder fault");
  EncodingBuilder Builder(Insn, Address, Labels);
  return Builder.run(Out);
}

MaoStatus mao::encodeInstructionNoInject(const Instruction &Insn,
                                         int64_t Address,
                                         const LabelAddressMap *Labels,
                                         std::vector<uint8_t> &Out) {
  EncodingBuilder Builder(Insn, Address, Labels);
  return Builder.run(Out);
}

unsigned mao::instructionLength(const Instruction &Insn) {
  return EncodeCache::instance().length(Insn);
}

unsigned mao::instructionLengthUncached(const Instruction &Insn) {
  std::vector<uint8_t> Bytes;
  EncodingBuilder Builder(Insn, 0, nullptr);
  MaoStatus S = Builder.run(Bytes);
  (void)S;
  assert(S.ok() && "instructionLength on an unencodable instruction");
  return static_cast<unsigned>(Bytes.size());
}
