//===- x86/Encoder.h - x86-64 binary encoder --------------------*- C++ -*-===//
///
/// \file
/// Binary encoding of the modelled instruction subset. This is the substrate
/// the original MAO borrowed from gas: exact encodings give exact lengths,
/// which is what makes relaxation and every alignment-specific optimization
/// possible (paper Sec. II).
///
/// Direct branches encode with the displacement size recorded in
/// Instruction::BranchSize (1 = rel8, 4 = rel32); when unset, rel32 is
/// assumed. Displacements for branches and RIP-relative operands are
/// resolved against a label-address map when one is provided; unknown labels
/// encode as 0 (a relocation stand-in), which never changes the length.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_X86_ENCODER_H
#define MAO_X86_ENCODER_H

#include "support/Status.h"
#include "x86/Instruction.h"

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mao {

/// Symbol name -> byte address within the current layout. Keys are views
/// into storage owned by the unit being laid out (entry label names /
/// interned strings), so a map must not outlive its unit; in exchange,
/// relaxation rounds and encoding do zero string allocations per lookup
/// (std::string arguments convert to string_view implicitly).
using LabelAddressMap = std::unordered_map<std::string_view, int64_t>;

/// Number of bytes an Opaque (unmodelled) instruction is assumed to occupy.
/// The original MAO has gas' exact sizes even for exotic instructions; we
/// use a fixed estimate so address computation stays defined in their
/// presence, and flag the enclosing function (see MaoFunction).
constexpr unsigned OpaqueInstructionSizeEstimate = 4;

/// Encodes \p Insn at byte address \p Address, appending to \p Out.
/// \p Labels may be null when no displacement resolution is wanted.
/// Returns an error for operand combinations outside the supported subset.
MaoStatus encodeInstruction(const Instruction &Insn, int64_t Address,
                            const LabelAddressMap *Labels,
                            std::vector<uint8_t> &Out);

/// Like encodeInstruction but without the fault-injection draw. For
/// callers that draw the injection decision themselves (the verifier's
/// cache-assisted encoding check) so the per-site draw sequence stays
/// one-per-instruction regardless of cache state.
MaoStatus encodeInstructionNoInject(const Instruction &Insn, int64_t Address,
                                    const LabelAddressMap *Labels,
                                    std::vector<uint8_t> &Out);

/// Returns the encoded length in bytes (branches honour BranchSize).
/// Asserts that the instruction is encodable; use encodeInstruction for
/// fallible validation of parsed input. Memoized through EncodeCache —
/// lengths are position-independent, so repeated relaxation rounds hit
/// the cache instead of re-encoding.
unsigned instructionLength(const Instruction &Insn);

/// The uncached measurement instructionLength is built on; EncodeCache
/// calls this on a miss.
unsigned instructionLengthUncached(const Instruction &Insn);

} // namespace mao

#endif // MAO_X86_ENCODER_H
