//===- x86/Opcodes.h - Mnemonic enumeration and opcode info -----*- C++ -*-===//
///
/// \file
/// Mnemonic enumeration plus the per-mnemonic OpcodeInfo record generated
/// from Opcodes.def. The record carries everything downstream clients need:
/// encoding family, flag side effects, implicit register effects, and the
/// scheduling class used by the micro-architectural simulator.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_X86_OPCODES_H
#define MAO_X86_OPCODES_H

#include "x86/X86Defs.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace mao {

/// Encoding/operand-shape family; drives both parsing validation and the
/// binary encoder.
enum class EncKind : uint8_t {
  Fixed,      // no explicit operands, fixed byte pattern
  Mov,        // mov in all its forms (incl. movabs)
  Movx,       // movz../movs.. with two widths (incl. movslq)
  Lea,
  AluRMI,     // add/or/adc/sbb/and/sub/xor/cmp
  Test,
  UnaryRM,    // not/neg/mul/div/idiv (F6/F7), inc/dec (FE/FF)
  ImulMulti,  // imul: 1-, 2-, and 3-operand forms
  ShiftRot,
  Push,
  Pop,
  Xchg,
  Bswap,
  Jmp,
  Jcc,
  Call,
  Ret,
  Setcc,
  Cmovcc,
  Nop,
  SseMov,     // xmm <-> xmm/mem moves
  SseCvtMov,  // movd/movq between GPR and xmm
  SseAlu,     // xmm arithmetic/logic, reg <- reg/mem
  Prefetch,
  Opaque,     // unmodelled instruction kept as raw text
};

/// Implicit register effect bits (super registers).
enum ImpRegBit : uint8_t {
  ImpRAX = 1 << 0,
  ImpRBX = 1 << 1,
  ImpRCX = 1 << 2,
  ImpRDX = 1 << 3,
  ImpRSP = 1 << 4,
  ImpRBP = 1 << 5,
  ImpRSI = 1 << 6,
  ImpRDI = 1 << 7,
};
constexpr uint8_t ImpAllRegs = 0xff;

/// All mnemonics MAO models, in Opcodes.def order.
enum class Mnemonic : uint8_t {
  Invalid = 0,
#define MAO_MNEM(Enum, Name, Kind, FDef, FUse, IDef, IUse, EncA, EncB, Lat,   \
                 Ports, Uops)                                                  \
  Enum,
#include "x86/Opcodes.def"
  NumMnemonics,
};

/// Static description of one mnemonic.
struct OpcodeInfo {
  const char *Name;    ///< Base AT&T spelling, without width/cc suffix.
  EncKind Kind;
  uint8_t FlagsDef;    ///< Status flags written (incl. "undefined" ones).
  uint8_t FlagsUse;    ///< Status flags read (CC-dependent flags excluded).
  uint8_t ImpDef;      ///< Implicitly written super registers.
  uint8_t ImpUse;      ///< Implicitly read super registers.
  uint8_t EncA;        ///< Kind-specific encoding datum.
  uint8_t EncB;        ///< Kind-specific encoding datum.
  uint8_t Latency;     ///< Result latency in cycles (modelled machine).
  uint8_t Ports;       ///< Execution-port mask (PortBit).
  uint8_t Uops;        ///< Fused-domain micro-ops.
};

/// The per-mnemonic table, generated from Opcodes.def (defined in
/// Opcodes.cpp). Indexed by the Mnemonic enumerator value; exposed so
/// opcodeInfo() inlines to a single indexed load — it sits on the encode
/// and parse hot paths and is consulted several times per instruction.
extern const OpcodeInfo OpcodeTable[static_cast<unsigned>(
    Mnemonic::NumMnemonics)];

/// Returns the static record for \p Mn.
inline const OpcodeInfo &opcodeInfo(Mnemonic Mn) {
  return OpcodeTable[static_cast<unsigned>(Mn)];
}

/// Finds a mnemonic whose base spelling is exactly \p Name (no suffix
/// processing); Mnemonic::Invalid when unknown.
Mnemonic findMnemonicExact(std::string_view Name);

/// True for instructions that end or redirect straight-line execution.
inline bool isControlFlow(Mnemonic Mn) {
  EncKind K = opcodeInfo(Mn).Kind;
  return K == EncKind::Jmp || K == EncKind::Jcc || K == EncKind::Call ||
         K == EncKind::Ret;
}

} // namespace mao

#endif // MAO_X86_OPCODES_H
