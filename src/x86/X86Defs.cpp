//===- x86/X86Defs.cpp - Core x86-64 definitions ---------------------------==//

#include "x86/X86Defs.h"

#include <functional>
#include <unordered_map>

using namespace mao;

const char *mao::condCodeName(CondCode CC) {
  switch (CC) {
  case CondCode::O:
    return "o";
  case CondCode::NO:
    return "no";
  case CondCode::B:
    return "b";
  case CondCode::AE:
    return "ae";
  case CondCode::E:
    return "e";
  case CondCode::NE:
    return "ne";
  case CondCode::BE:
    return "be";
  case CondCode::A:
    return "a";
  case CondCode::S:
    return "s";
  case CondCode::NS:
    return "ns";
  case CondCode::P:
    return "p";
  case CondCode::NP:
    return "np";
  case CondCode::L:
    return "l";
  case CondCode::GE:
    return "ge";
  case CondCode::LE:
    return "le";
  case CondCode::G:
    return "g";
  case CondCode::None:
    return "<none>";
  }
  assert(false && "covered switch");
  return "<invalid>";
}

namespace {
struct SvHash {
  using is_transparent = void;
  size_t operator()(std::string_view S) const {
    return std::hash<std::string_view>{}(S);
  }
};

} // namespace

const CondCodeSpelling mao::CondCodeSpellings[NumCondCodeSpellings] = {
    {"o", CondCode::O},    {"no", CondCode::NO},  {"b", CondCode::B},
    {"c", CondCode::B},    {"nae", CondCode::B},  {"ae", CondCode::AE},
    {"nb", CondCode::AE},  {"nc", CondCode::AE},  {"e", CondCode::E},
    {"z", CondCode::E},    {"ne", CondCode::NE},  {"nz", CondCode::NE},
    {"be", CondCode::BE},  {"na", CondCode::BE},  {"a", CondCode::A},
    {"nbe", CondCode::A},  {"s", CondCode::S},    {"ns", CondCode::NS},
    {"p", CondCode::P},    {"pe", CondCode::P},   {"np", CondCode::NP},
    {"po", CondCode::NP},  {"l", CondCode::L},    {"nge", CondCode::L},
    {"ge", CondCode::GE},  {"nl", CondCode::GE},  {"le", CondCode::LE},
    {"ng", CondCode::LE},  {"g", CondCode::G},    {"nle", CondCode::G},
};

CondCode mao::parseCondCode(std::string_view Text) {
  static const std::unordered_map<std::string, CondCode, SvHash,
                                  std::equal_to<>>
      Map = [] {
    std::unordered_map<std::string, CondCode, SvHash, std::equal_to<>> M;
    for (const CondCodeSpelling &S : CondCodeSpellings)
      M.emplace(S.Name, S.CC);
    return M;
  }();
  auto It = Map.find(Text);
  return It == Map.end() ? CondCode::None : It->second;
}

uint8_t mao::condCodeFlagsUsed(CondCode CC) {
  switch (CC) {
  case CondCode::O:
  case CondCode::NO:
    return FlagOF;
  case CondCode::B:
  case CondCode::AE:
    return FlagCF;
  case CondCode::E:
  case CondCode::NE:
    return FlagZF;
  case CondCode::BE:
  case CondCode::A:
    return FlagCF | FlagZF;
  case CondCode::S:
  case CondCode::NS:
    return FlagSF;
  case CondCode::P:
  case CondCode::NP:
    return FlagPF;
  case CondCode::L:
  case CondCode::GE:
    return FlagSF | FlagOF;
  case CondCode::LE:
  case CondCode::G:
    return FlagZF | FlagSF | FlagOF;
  case CondCode::None:
    return 0;
  }
  assert(false && "covered switch");
  return 0;
}

std::string mao::flagMaskToString(uint8_t Mask) {
  static const struct {
    uint8_t Bit;
    const char *Name;
  } Bits[] = {{FlagCF, "CF"}, {FlagPF, "PF"}, {FlagAF, "AF"}, {FlagZF, "ZF"},
              {FlagSF, "SF"}, {FlagOF, "OF"}, {FlagDF, "DF"}};
  std::string Out;
  for (const auto &B : Bits) {
    if (!(Mask & B.Bit))
      continue;
    if (!Out.empty())
      Out += '|';
    Out += B.Name;
  }
  return Out.empty() ? "-" : Out;
}
