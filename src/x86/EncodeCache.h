//===- x86/EncodeCache.h - Encoding-length memoization ----------*- C++ -*-===//
///
/// \file
/// A process-wide memoization cache for instruction encoding lengths, the
/// dominant cost of a relaxation round: relaxation re-measures every
/// non-branch instruction of a unit once per relaxUnit() call, and the
/// alignment passes call relaxUnit() once per optimization round, so the
/// same instruction content is measured many times over a pipeline.
///
/// Keys are the instruction's full serialized content (mnemonic, widths,
/// condition code, NOP length, relaxed branch size, and every operand
/// field) — not a hash of it — so two distinct instructions can never
/// alias a cache entry and lengths stay exact; exactness is what the
/// relaxer's correctness and the bit-identical-output guarantee of the
/// sharded pipeline rest on. Lengths are position-independent (branch
/// displacement *width* is part of the content via BranchSize), which is
/// why a content-keyed cache is sound at all.
///
/// Only successful encodes are cached: a miss that fails to encode is not
/// recorded, so fallible validation (the verifier) keeps re-checking bad
/// instructions. The cache is sharded over independently locked buckets so
/// parallel pass shards measuring lengths concurrently do not serialize.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_X86_ENCODECACHE_H
#define MAO_X86_ENCODECACHE_H

#include "x86/Instruction.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace mao {

class EncodeCache {
public:
  static EncodeCache &instance();

  /// Returns the encoded length of \p Insn, consulting the cache first.
  /// On a miss the instruction is encoded once (asserting success, like
  /// instructionLength) and the length is memoized.
  unsigned length(const Instruction &Insn);

  /// Lookup only: the memoized length if \p Insn was successfully encoded
  /// before, std::nullopt otherwise. Never encodes and never counts toward
  /// hit/miss statistics — whether a probe finds its key depends on what
  /// other shards cached first, so counting probes would make the stats
  /// scheduling-dependent.
  std::optional<unsigned> cachedLength(const Instruction &Insn) const;

  /// Records a successful encode of \p Insn with \p Length bytes.
  void noteLength(const Instruction &Insn, unsigned Length);

  /// Drops the entry for \p Insn's *current* content, if present, and
  /// returns whether one was dropped. Callers that mutate an instruction
  /// in place (the tuner's NOP-resize scratch protocol) invalidate the
  /// pre-mutation content explicitly before rewriting it: content-keying
  /// keeps mutation *correct* without this, but every transient length the
  /// search touches would otherwise stay resident for the process
  /// lifetime. Invalidate before mutating — afterwards the old key is no
  /// longer reachable from the instruction.
  bool invalidate(const Instruction &Insn);

  /// Drops every entry (tests and benchmarks isolating cold behaviour).
  void clear();

  /// Caps resident key bytes at \p Bytes, split evenly across shards;
  /// inserts over budget evict in FIFO order. 0 (the default) disables
  /// eviction entirely: an uncapped cache keeps the published hit/miss
  /// numbers independent of insertion order, so the cap is strictly
  /// opt-in (--mao-encode-cache-budget) for long-lived maod processes
  /// that would otherwise grow without bound.
  void setByteBudget(uint64_t Bytes);

  /// Exact accounting for length() calls: Hits + Misses equals the number
  /// of length() calls and Misses equals the number of entries inserted
  /// through length(), regardless of thread interleaving (a racing
  /// double-encode is counted as one miss — whoever wins the insert — and
  /// one hit). cachedLength()/noteLength() probes are not counted, so the
  /// numbers published by --mao-report are identical across --mao-jobs
  /// values.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    size_t Entries = 0;
  };
  Stats stats() const;

  /// Serializes the content that determines \p Insn's encoded length into
  /// a byte-exact key. Exposed for tests.
  static std::string makeKey(const Instruction &Insn);

private:
  EncodeCache() = default;

  static constexpr unsigned NumShards = 16;
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<std::string, unsigned> Map;
    /// Insertion order for FIFO eviction. Pointers into Map's keys are
    /// stable (node-based container); entries removed via invalidate()
    /// are also unlinked here.
    std::deque<const std::string *> Order;
    size_t KeyBytes = 0;
  };

  Shard &shardFor(const std::string &Key);
  const Shard &shardFor(const std::string &Key) const;

  /// Records \p It's insertion in \p S and evicts FIFO-oldest entries
  /// while the shard exceeds its slice of the budget. Caller holds S.M.
  void noteInsert(Shard &S,
                  std::unordered_map<std::string, unsigned>::iterator It);

  std::array<Shard, NumShards> Shards;
  std::atomic<uint64_t> ByteBudget{0};
  mutable std::atomic<uint64_t> Hits{0};
  mutable std::atomic<uint64_t> Misses{0};
  mutable std::atomic<uint64_t> Evictions{0};
};

} // namespace mao

#endif // MAO_X86_ENCODECACHE_H
