//===- x86/Registers.cpp - x86-64 register model ---------------------------==//

#include "x86/Registers.h"

#include <cassert>
#include <unordered_map>

using namespace mao;

namespace {

struct RegInfo {
  const char *Name;
  Width W;
  uint8_t Encoding;
  Reg Super;
  bool NeedsRex;
  bool HighByte;
};

const RegInfo RegTable[] = {
    {"none", Width::None, 0, Reg::None, false, false},
#define MAO_REG(Name, Att, W, Enc, Super, Rex, High)                           \
  {Att, Width::W, Enc, Reg::Super, Rex != 0, High != 0},
#include "x86/Registers.def"
};

const RegInfo &infoFor(Reg R) {
  assert(R < Reg::NumRegs && "register out of range");
  return RegTable[static_cast<unsigned>(R)];
}

} // namespace

const char *mao::regName(Reg R) { return infoFor(R).Name; }

Reg mao::parseRegName(const std::string &Name) {
  static const std::unordered_map<std::string, Reg> Map = [] {
    std::unordered_map<std::string, Reg> M;
    for (unsigned I = 1; I < static_cast<unsigned>(Reg::NumRegs); ++I)
      M.emplace(RegTable[I].Name, static_cast<Reg>(I));
    return M;
  }();
  auto It = Map.find(Name);
  return It == Map.end() ? Reg::None : It->second;
}

Width mao::regWidth(Reg R) { return infoFor(R).W; }

unsigned mao::regEncoding(Reg R) { return infoFor(R).Encoding; }

Reg mao::superReg(Reg R) { return infoFor(R).Super; }

bool mao::regNeedsRex(Reg R) { return infoFor(R).NeedsRex; }

bool mao::regIsHighByte(Reg R) { return infoFor(R).HighByte; }

bool mao::regIsGpr(Reg R) {
  return R >= Reg::RAX && R <= Reg::BH;
}

bool mao::regIsXmm(Reg R) { return R >= Reg::XMM0 && R <= Reg::XMM15; }

Reg mao::gprWithWidth(Reg Super64, Width W) {
  assert(Super64 >= Reg::RAX && Super64 <= Reg::R15 &&
         "gprWithWidth needs a 64-bit super register");
  unsigned Index = static_cast<unsigned>(Super64) -
                   static_cast<unsigned>(Reg::RAX);
  switch (W) {
  case Width::Q:
    return Super64;
  case Width::L:
    return static_cast<Reg>(static_cast<unsigned>(Reg::EAX) + Index);
  case Width::W:
    return static_cast<Reg>(static_cast<unsigned>(Reg::AX) + Index);
  case Width::B:
    return static_cast<Reg>(static_cast<unsigned>(Reg::AL) + Index);
  case Width::None:
    break;
  }
  assert(false && "invalid width for a GPR view");
  return Reg::None;
}

unsigned mao::gprSuperIndex(Reg R) {
  Reg Super = superReg(R);
  assert(Super >= Reg::RAX && Super <= Reg::R15 && "not a GPR");
  return static_cast<unsigned>(Super) - static_cast<unsigned>(Reg::RAX);
}
