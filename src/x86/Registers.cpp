//===- x86/Registers.cpp - x86-64 register model ---------------------------==//

#include "x86/Registers.h"

#include <cassert>
#include <cstring>
#include <unordered_map>

using namespace mao;

const RegInfo mao::RegTable[static_cast<unsigned>(Reg::NumRegs)] = {
    {"none", Width::None, 0, Reg::None, false, false},
#define MAO_REG(Name, Att, W, Enc, Super, Rex, High)                           \
  {Att, Width::W, Enc, Reg::Super, Rex != 0, High != 0},
#include "x86/Registers.def"
};

namespace {

/// Every modelled register name fits in 8 bytes ("xmm15" is the longest),
/// so names pack losslessly into a uint64_t and the lookup hashes one
/// integer instead of a byte string.
uint64_t packShortName(std::string_view Name) {
  uint64_t Key = 0;
  std::memcpy(&Key, Name.data(), Name.size());
  return Key;
}

} // namespace

Reg mao::parseRegName(std::string_view Name) {
  static const std::unordered_map<uint64_t, Reg> Map = [] {
    std::unordered_map<uint64_t, Reg> M;
    for (unsigned I = 1; I < static_cast<unsigned>(Reg::NumRegs); ++I) {
      assert(std::strlen(RegTable[I].Name) <= 8 &&
             "register name no longer packs into the uint64_t fast key");
      M.emplace(packShortName(RegTable[I].Name), static_cast<Reg>(I));
    }
    return M;
  }();
  if (Name.empty() || Name.size() > 8 || Name.back() == '\0')
    return Reg::None;
  auto It = Map.find(packShortName(Name));
  return It == Map.end() ? Reg::None : It->second;
}

Reg mao::gprWithWidth(Reg Super64, Width W) {
  assert(Super64 >= Reg::RAX && Super64 <= Reg::R15 &&
         "gprWithWidth needs a 64-bit super register");
  unsigned Index = static_cast<unsigned>(Super64) -
                   static_cast<unsigned>(Reg::RAX);
  switch (W) {
  case Width::Q:
    return Super64;
  case Width::L:
    return static_cast<Reg>(static_cast<unsigned>(Reg::EAX) + Index);
  case Width::W:
    return static_cast<Reg>(static_cast<unsigned>(Reg::AX) + Index);
  case Width::B:
    return static_cast<Reg>(static_cast<unsigned>(Reg::AL) + Index);
  case Width::None:
    break;
  }
  assert(false && "invalid width for a GPR view");
  return Reg::None;
}

unsigned mao::gprSuperIndex(Reg R) {
  Reg Super = superReg(R);
  assert(Super >= Reg::RAX && Super <= Reg::R15 && "not a GPR");
  return static_cast<unsigned>(Super) - static_cast<unsigned>(Reg::RAX);
}
