//===- x86/Instruction.cpp - The single instruction struct -----------------==//

#include "x86/Instruction.h"

#include <cassert>

using namespace mao;

RegMask mao::regMaskBit(Reg R) {
  if (R == Reg::None || R == Reg::RIP)
    return 0;
  if (regIsXmm(R))
    return 1u << (16 + regEncoding(R));
  return 1u << gprSuperIndex(R);
}

namespace {

RegMask gprBit(Reg Super) { return regMaskBit(Super); }

} // namespace

const RegMask mao::CallClobberedMask =
    gprBit(Reg::RAX) | gprBit(Reg::RCX) | gprBit(Reg::RDX) |
    gprBit(Reg::RSI) | gprBit(Reg::RDI) | gprBit(Reg::R8) | gprBit(Reg::R9) |
    gprBit(Reg::R10) | gprBit(Reg::R11) | 0xffff0000u;

const RegMask mao::CallUsedMask =
    gprBit(Reg::RDI) | gprBit(Reg::RSI) | gprBit(Reg::RDX) |
    gprBit(Reg::RCX) | gprBit(Reg::R8) | gprBit(Reg::R9) | gprBit(Reg::RSP) |
    0x00ff0000u; // xmm0-7 may carry FP arguments

const RegMask mao::RetUsedMask =
    gprBit(Reg::RAX) | gprBit(Reg::RDX) | gprBit(Reg::RSP) |
    (1u << 16) | (1u << 17); // xmm0, xmm1 return values

const Operand *Instruction::branchTarget() const {
  EncKind K = info().Kind;
  if (K != EncKind::Jmp && K != EncKind::Jcc && K != EncKind::Call)
    return nullptr;
  assert(!Ops.empty() && "branch without a target operand");
  return &Ops[0];
}

bool Instruction::hasIndirectTarget() const {
  const Operand *Target = branchTarget();
  return Target && !Target->isSymbol();
}

const Operand *Instruction::memOperand() const {
  for (const Operand &Op : Ops)
    if (Op.isMem())
      return &Op;
  return nullptr;
}

Operand *Instruction::memOperand() {
  for (Operand &Op : Ops)
    if (Op.isMem())
      return &Op;
  return nullptr;
}

namespace {

/// How an explicit operand participates in the instruction.
enum class Role { None, Read, Write, ReadWrite, Address };

/// Fills \p Roles (parallel to Ops) for the instruction's encoding kind.
void operandRoles(const Instruction &Insn, std::vector<Role> &Roles) {
  const EncKind K = Insn.info().Kind;
  const size_t N = Insn.Ops.size();
  Roles.assign(N, Role::None);
  switch (K) {
  case EncKind::Mov:
  case EncKind::Movx:
  case EncKind::SseMov:
  case EncKind::SseCvtMov:
    assert(N == 2 && "move needs src, dst");
    Roles[0] = Role::Read;
    Roles[1] = Role::Write;
    return;
  case EncKind::Lea:
    assert(N == 2 && "lea needs mem, dst");
    Roles[0] = Role::Address;
    Roles[1] = Role::Write;
    return;
  case EncKind::AluRMI:
    assert(N == 2 && "ALU needs src, dst");
    Roles[0] = Role::Read;
    Roles[1] = Insn.Mn == Mnemonic::CMP ? Role::Read : Role::ReadWrite;
    return;
  case EncKind::Test:
    assert(N == 2 && "test needs two sources");
    Roles[0] = Roles[1] = Role::Read;
    return;
  case EncKind::UnaryRM:
    assert(N == 1 && "unary op needs one operand");
    Roles[0] = (Insn.Mn == Mnemonic::MUL || Insn.Mn == Mnemonic::DIV ||
                Insn.Mn == Mnemonic::IDIV)
                   ? Role::Read
                   : Role::ReadWrite;
    return;
  case EncKind::ImulMulti:
    if (N == 1) {
      Roles[0] = Role::Read;
    } else if (N == 2) {
      Roles[0] = Role::Read;
      Roles[1] = Role::ReadWrite;
    } else {
      assert(N == 3 && "imul takes 1-3 operands");
      Roles[0] = Roles[1] = Role::Read;
      Roles[2] = Role::Write;
    }
    return;
  case EncKind::ShiftRot:
    if (N == 1) {
      Roles[0] = Role::ReadWrite;
    } else {
      assert(N == 2 && "shift takes 1-2 operands");
      Roles[0] = Role::Read;
      Roles[1] = Role::ReadWrite;
    }
    return;
  case EncKind::Push:
    assert(N == 1);
    Roles[0] = Role::Read;
    return;
  case EncKind::Pop:
    assert(N == 1);
    Roles[0] = Role::Write;
    return;
  case EncKind::Xchg:
    assert(N == 2);
    Roles[0] = Roles[1] = Role::ReadWrite;
    return;
  case EncKind::Bswap:
    assert(N == 1);
    Roles[0] = Role::ReadWrite;
    return;
  case EncKind::Setcc:
    assert(N == 1);
    Roles[0] = Role::Write;
    return;
  case EncKind::Cmovcc:
    assert(N == 2);
    Roles[0] = Role::Read;
    Roles[1] = Role::ReadWrite;
    return;
  case EncKind::SseAlu:
    assert(N == 2);
    Roles[0] = Role::Read;
    Roles[1] = (Insn.Mn == Mnemonic::UCOMISS || Insn.Mn == Mnemonic::UCOMISD)
                   ? Role::Read
                   : Role::ReadWrite;
    return;
  case EncKind::Prefetch:
    assert(N == 1 && Insn.Ops[0].isMem() && "prefetch takes a memory operand");
    Roles[0] = Role::Address;
    return;
  case EncKind::Jmp:
  case EncKind::Jcc:
  case EncKind::Call:
    assert(N == 1 && "branch needs a target");
    // Direct targets are not data operands; indirect ones are read.
    Roles[0] = Insn.Ops[0].isSymbol() ? Role::None : Role::Read;
    return;
  case EncKind::Ret:
  case EncKind::Fixed:
  case EncKind::Nop:
  case EncKind::Opaque:
    return;
  }
  assert(false && "covered switch");
}

/// Maps an ImpRegBit mask from the opcode table to a RegMask.
RegMask impToRegMask(uint8_t Imp) {
  RegMask Mask = 0;
  if (Imp == ImpAllRegs)
    return 0xffffffffu;
  if (Imp & ImpRAX)
    Mask |= regMaskBit(Reg::RAX);
  if (Imp & ImpRBX)
    Mask |= regMaskBit(Reg::RBX);
  if (Imp & ImpRCX)
    Mask |= regMaskBit(Reg::RCX);
  if (Imp & ImpRDX)
    Mask |= regMaskBit(Reg::RDX);
  if (Imp & ImpRSP)
    Mask |= regMaskBit(Reg::RSP);
  if (Imp & ImpRBP)
    Mask |= regMaskBit(Reg::RBP);
  if (Imp & ImpRSI)
    Mask |= regMaskBit(Reg::RSI);
  if (Imp & ImpRDI)
    Mask |= regMaskBit(Reg::RDI);
  return Mask;
}

/// True when a register write covers the full architectural register:
/// 64-bit writes trivially, 32-bit writes by zero extension, XMM writes.
bool writeIsFullDef(Reg R) {
  if (regIsXmm(R))
    return true;
  Width W = regWidth(R);
  return W == Width::Q || W == Width::L;
}

} // namespace

InstructionEffects Instruction::effects() const {
  const OpcodeInfo &Info = info();
  InstructionEffects Fx;
  Fx.FlagsDef = Info.FlagsDef;
  Fx.FlagsUse = Info.FlagsUse;
  Fx.RegDefs = impToRegMask(Info.ImpDef);
  Fx.RegUses = impToRegMask(Info.ImpUse);

  // The 1-operand imul/mul family widens into rdx:rax; multi-operand imul
  // has no implicit operands, so the table carries none and we add the
  // accumulator effects only for the 1-operand form.
  if (Info.Kind == EncKind::ImulMulti && Ops.size() == 1) {
    Fx.RegDefs |= regMaskBit(Reg::RAX) | regMaskBit(Reg::RDX);
    Fx.RegUses |= regMaskBit(Reg::RAX);
  }

  if (CC != CondCode::None)
    Fx.FlagsUse |= condCodeFlagsUsed(CC);

  switch (Info.Kind) {
  case EncKind::Call:
    Fx.RegDefs |= CallClobberedMask;
    Fx.RegUses |= CallUsedMask;
    Fx.FlagsDef |= FlagsAllStatus;
    Fx.MemRead = Fx.MemWrite = true;
    Fx.Barrier = true;
    break;
  case EncKind::Ret:
    Fx.RegUses |= RetUsedMask;
    Fx.MemRead = true;
    break;
  case EncKind::Push:
    Fx.MemWrite = true;
    break;
  case EncKind::Pop:
    Fx.MemRead = true;
    break;
  case EncKind::Fixed:
    if (Mn == Mnemonic::LEAVE)
      Fx.MemRead = true;
    break;
  case EncKind::Opaque:
    Fx.MemRead = Fx.MemWrite = true;
    Fx.Barrier = true;
    break;
  default:
    break;
  }

  std::vector<Role> Roles;
  operandRoles(*this, Roles);
  for (size_t I = 0, E = Ops.size(); I != E; ++I) {
    const Operand &Op = Ops[I];
    const Role R = Roles[I];
    if (R == Role::None)
      continue;

    if (Op.isMem()) {
      Fx.RegUses |= regMaskBit(Op.Mem.Base) | regMaskBit(Op.Mem.Index);
      if (R == Role::Read || R == Role::ReadWrite)
        Fx.MemRead = true;
      if (R == Role::Write || R == Role::ReadWrite)
        Fx.MemWrite = true;
      continue;
    }
    if (!Op.isReg())
      continue;

    const RegMask Bit = regMaskBit(Op.R);
    if (R == Role::Read || R == Role::Address) {
      Fx.RegUses |= Bit;
      continue;
    }
    // Write or ReadWrite. Narrow writes merge into the old value, so they
    // also count as uses of the super register.
    Fx.RegDefs |= Bit;
    if (R == Role::ReadWrite || !writeIsFullDef(Op.R))
      Fx.RegUses |= Bit;
  }
  return Fx;
}

std::string Instruction::mnemonicText() const {
  const OpcodeInfo &Info = info();
  switch (Info.Kind) {
  case EncKind::Jcc:
    return std::string("j") + condCodeName(CC);
  case EncKind::Setcc:
    return std::string("set") + condCodeName(CC);
  case EncKind::Cmovcc:
    return std::string("cmov") + condCodeName(CC);
  case EncKind::Movx: {
    // movslq keeps its idiomatic spelling; others are movz/movs + both
    // width suffixes (movzbl, movswq, ...).
    if (Mn == Mnemonic::MOVSX && SrcW == Width::L && W == Width::Q)
      return "movslq";
    std::string Text = Info.Name;
    Text += widthSuffix(SrcW);
    Text += widthSuffix(W);
    return Text;
  }
  case EncKind::Nop:
    if (NopLength <= 1)
      return "nop";
    // MAO dialect: an explicit-length multi-byte NOP ("nop5" encodes as the
    // recommended 5-byte 0F 1F form). The original MAO reaches these via
    // gas; our assembler round-trips them textually.
    return "nop" + std::to_string(static_cast<unsigned>(NopLength));
  case EncKind::Mov:
  case EncKind::AluRMI:
  case EncKind::Test:
  case EncKind::UnaryRM:
  case EncKind::ImulMulti:
  case EncKind::ShiftRot:
  case EncKind::Push:
  case EncKind::Pop:
  case EncKind::Xchg:
  case EncKind::Lea: {
    std::string Text = Info.Name;
    if (char Suffix = widthSuffix(W))
      Text += Suffix;
    return Text;
  }
  case EncKind::SseCvtMov:
    // movd/movq spelling already encodes the GPR width.
    return Info.Name;
  default:
    return Info.Name;
  }
}

std::string Instruction::toString() const {
  if (isOpaque())
    return RawText;
  std::string Out = mnemonicText();
  if (Ops.empty())
    return Out;
  Out += '\t';
  for (size_t I = 0, E = Ops.size(); I != E; ++I) {
    if (I != 0)
      Out += ", ";
    Out += Ops[I].toString();
  }
  return Out;
}

Instruction mao::makeInstr(Mnemonic Mn, Width W) {
  Instruction Insn;
  Insn.Mn = Mn;
  Insn.W = W;
  return Insn;
}

Instruction mao::makeInstr(Mnemonic Mn, Width W, Operand Src, Operand Dst) {
  Instruction Insn = makeInstr(Mn, W);
  Insn.Ops.push_back(std::move(Src));
  Insn.Ops.push_back(std::move(Dst));
  return Insn;
}

Instruction mao::makeInstr(Mnemonic Mn, Width W, Operand Op) {
  Instruction Insn = makeInstr(Mn, W);
  Insn.Ops.push_back(std::move(Op));
  return Insn;
}

Instruction mao::makeJump(const std::string &Label) {
  Instruction Insn = makeInstr(Mnemonic::JMP, Width::None);
  Insn.Ops.push_back(Operand::makeSymbol(Label));
  return Insn;
}

Instruction mao::makeCondJump(CondCode CC, const std::string &Label) {
  Instruction Insn = makeInstr(Mnemonic::JCC, Width::None);
  Insn.CC = CC;
  Insn.Ops.push_back(Operand::makeSymbol(Label));
  return Insn;
}

Instruction mao::makeCall(const std::string &Label) {
  Instruction Insn = makeInstr(Mnemonic::CALL, Width::None);
  Insn.Ops.push_back(Operand::makeSymbol(Label));
  return Insn;
}

Instruction mao::makeNop(unsigned Bytes) {
  assert(Bytes >= 1 && Bytes <= 15 && "x86 NOPs encode in 1..15 bytes");
  Instruction Insn = makeInstr(Mnemonic::NOP, Width::None);
  Insn.NopLength = static_cast<uint8_t>(Bytes);
  return Insn;
}
