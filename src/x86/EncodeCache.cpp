//===- x86/EncodeCache.cpp - Encoding-length memoization ---------------------==//

#include "x86/EncodeCache.h"

#include "x86/Encoder.h"

using namespace mao;

EncodeCache &EncodeCache::instance() {
  static EncodeCache Cache;
  return Cache;
}

namespace {

void appendU64(std::string &Key, uint64_t V) {
  for (unsigned I = 0; I < 8; ++I)
    Key.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void appendString(std::string &Key, const std::string &S) {
  appendU64(Key, S.size());
  Key.append(S);
}

void appendOperand(std::string &Key, const Operand &Op) {
  Key.push_back(static_cast<char>(Op.Kind));
  Key.push_back(static_cast<char>(Op.R));
  Key.push_back(Op.IndirectStar ? 1 : 0);
  appendU64(Key, static_cast<uint64_t>(Op.Imm));
  appendString(Key, Op.Sym);
  Key.push_back(static_cast<char>(Op.Mem.Base));
  Key.push_back(static_cast<char>(Op.Mem.Index));
  Key.push_back(static_cast<char>(Op.Mem.Scale));
  appendU64(Key, static_cast<uint64_t>(Op.Mem.Disp));
  appendString(Key, Op.Mem.SymDisp);
}

} // namespace

std::string EncodeCache::makeKey(const Instruction &Insn) {
  // Every field that encodeInstruction reads must be part of the key;
  // symbol names matter because presence in a label map can change a
  // displacement's *value* but never its width, while Mem.SymDisp presence
  // toggles disp emission — serialize them all and stay exact.
  std::string Key;
  Key.reserve(32 + 32 * Insn.Ops.size());
  appendU64(Key, static_cast<uint64_t>(Insn.Mn));
  Key.push_back(static_cast<char>(Insn.W));
  Key.push_back(static_cast<char>(Insn.SrcW));
  Key.push_back(static_cast<char>(Insn.CC));
  Key.push_back(static_cast<char>(Insn.NopLength));
  Key.push_back(static_cast<char>(Insn.BranchSize));
  appendU64(Key, Insn.Ops.size());
  for (const Operand &Op : Insn.Ops)
    appendOperand(Key, Op);
  return Key;
}

EncodeCache::Shard &EncodeCache::shardFor(const std::string &Key) {
  return Shards[std::hash<std::string>{}(Key) % NumShards];
}

const EncodeCache::Shard &EncodeCache::shardFor(const std::string &Key) const {
  return Shards[std::hash<std::string>{}(Key) % NumShards];
}

void EncodeCache::setByteBudget(uint64_t Bytes) {
  ByteBudget.store(Bytes, std::memory_order_relaxed);
}

void EncodeCache::noteInsert(
    Shard &S, std::unordered_map<std::string, unsigned>::iterator It) {
  S.Order.push_back(&It->first);
  S.KeyBytes += It->first.size();
  const uint64_t Budget = ByteBudget.load(std::memory_order_relaxed);
  if (Budget == 0)
    return;
  const uint64_t ShardBudget = Budget / NumShards;
  // Never evict the entry just inserted: a key larger than the whole
  // shard budget still gets cached (and evicted by the next insert), so
  // a pathological budget degrades throughput, not correctness.
  while (S.KeyBytes > ShardBudget && S.Order.size() > 1) {
    const std::string *Oldest = S.Order.front();
    S.Order.pop_front();
    S.KeyBytes -= Oldest->size();
    S.Map.erase(*Oldest);
    Evictions.fetch_add(1, std::memory_order_relaxed);
  }
}

unsigned EncodeCache::length(const Instruction &Insn) {
  // Opaque instructions have a constant estimated size and unbounded raw
  // text; memoizing them would bloat the cache for no reuse.
  if (Insn.isOpaque())
    return OpaqueInstructionSizeEstimate;
  const std::string Key = makeKey(Insn);
  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      Hits.fetch_add(1, std::memory_order_relaxed);
      return It->second;
    }
  }
  unsigned Length = instructionLengthUncached(Insn);
  std::lock_guard<std::mutex> Lock(S.M);
  auto [It, Inserted] = S.Map.emplace(Key, Length);
  // Hit vs. miss is decided by the insert, not the probe above: when
  // another thread inserted this key between the unlock and here, the call
  // is counted a hit. That keeps Misses == entries inserted through
  // length() and Hits + Misses == calls, both independent of thread
  // scheduling — --mao-report publishes these as exact.
  (Inserted ? Misses : Hits).fetch_add(1, std::memory_order_relaxed);
  const unsigned Result = It->second;
  if (Inserted)
    noteInsert(S, It);
  return Result;
}

std::optional<unsigned> EncodeCache::cachedLength(const Instruction &Insn) const {
  if (Insn.isOpaque())
    return OpaqueInstructionSizeEstimate;
  const std::string Key = makeKey(Insn);
  const Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(Key);
  if (It == S.Map.end())
    return std::nullopt;
  return It->second;
}

void EncodeCache::noteLength(const Instruction &Insn, unsigned Length) {
  if (Insn.isOpaque())
    return;
  const std::string Key = makeKey(Insn);
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto [It, Inserted] = S.Map.emplace(Key, Length);
  if (Inserted)
    noteInsert(S, It);
}

bool EncodeCache::invalidate(const Instruction &Insn) {
  if (Insn.isOpaque())
    return false;
  const std::string Key = makeKey(Insn);
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.M);
  auto It = S.Map.find(Key);
  if (It == S.Map.end())
    return false;
  for (auto OI = S.Order.begin(); OI != S.Order.end(); ++OI) {
    if (*OI == &It->first) {
      S.Order.erase(OI);
      break;
    }
  }
  S.KeyBytes -= It->first.size();
  S.Map.erase(It);
  return true;
}

void EncodeCache::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    S.Map.clear();
    S.Order.clear();
    S.KeyBytes = 0;
  }
  Hits.store(0);
  Misses.store(0);
  Evictions.store(0);
}

EncodeCache::Stats EncodeCache::stats() const {
  Stats Result;
  Result.Hits = Hits.load();
  Result.Misses = Misses.load();
  Result.Evictions = Evictions.load();
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.M);
    Result.Entries += S.Map.size();
  }
  return Result;
}
