//===- x86/Opcodes.cpp - Mnemonic table ------------------------------------==//

#include "x86/Opcodes.h"

#include <cassert>
#include <unordered_map>

using namespace mao;

namespace {

const OpcodeInfo OpcodeTable[] = {
    {"<invalid>", EncKind::Opaque, 0, 0, 0, 0, 0, 0, 0, 0, 0},
#define MAO_MNEM(Enum, Name, Kind, FDef, FUse, IDef, IUse, EncA, EncB, Lat,   \
                 Ports, Uops)                                                  \
  {Name,                                                                       \
   EncKind::Kind,                                                              \
   static_cast<uint8_t>(FDef),                                                 \
   static_cast<uint8_t>(FUse),                                                 \
   static_cast<uint8_t>(IDef),                                                 \
   static_cast<uint8_t>(IUse),                                                 \
   EncA,                                                                       \
   EncB,                                                                       \
   Lat,                                                                        \
   Ports,                                                                      \
   Uops},
#include "x86/Opcodes.def"
};

} // namespace

const OpcodeInfo &mao::opcodeInfo(Mnemonic Mn) {
  assert(Mn < Mnemonic::NumMnemonics && "mnemonic out of range");
  return OpcodeTable[static_cast<unsigned>(Mn)];
}

Mnemonic mao::findMnemonicExact(const std::string &Name) {
  static const std::unordered_map<std::string, Mnemonic> Map = [] {
    std::unordered_map<std::string, Mnemonic> M;
    for (unsigned I = 1; I < static_cast<unsigned>(Mnemonic::NumMnemonics);
         ++I) {
      // Later duplicates (e.g. MOVQX also spelled "movq") do not shadow the
      // first entry; the parser disambiguates by operand kinds.
      M.emplace(OpcodeTable[I].Name, static_cast<Mnemonic>(I));
    }
    return M;
  }();
  auto It = Map.find(Name);
  return It == Map.end() ? Mnemonic::Invalid : It->second;
}
