//===- x86/Opcodes.cpp - Mnemonic table ------------------------------------==//

#include "x86/Opcodes.h"

#include <cassert>
#include <functional>
#include <unordered_map>

using namespace mao;

const OpcodeInfo mao::OpcodeTable[static_cast<unsigned>(
    Mnemonic::NumMnemonics)] = {
    {"<invalid>", EncKind::Opaque, 0, 0, 0, 0, 0, 0, 0, 0, 0},
#define MAO_MNEM(Enum, Name, Kind, FDef, FUse, IDef, IUse, EncA, EncB, Lat,   \
                 Ports, Uops)                                                  \
  {Name,                                                                       \
   EncKind::Kind,                                                              \
   static_cast<uint8_t>(FDef),                                                 \
   static_cast<uint8_t>(FUse),                                                 \
   static_cast<uint8_t>(IDef),                                                 \
   static_cast<uint8_t>(IUse),                                                 \
   EncA,                                                                       \
   EncB,                                                                       \
   Lat,                                                                        \
   Ports,                                                                      \
   Uops},
#include "x86/Opcodes.def"
};

namespace {
struct SvHash {
  using is_transparent = void;
  size_t operator()(std::string_view S) const {
    return std::hash<std::string_view>{}(S);
  }
};

} // namespace

Mnemonic mao::findMnemonicExact(std::string_view Name) {
  // Transparent hashing: lookups take the parser's string_view tokens
  // directly, with no per-call key allocation.
  static const std::unordered_map<std::string, Mnemonic, SvHash,
                                  std::equal_to<>>
      Map = [] {
    std::unordered_map<std::string, Mnemonic, SvHash, std::equal_to<>> M;
    for (unsigned I = 1; I < static_cast<unsigned>(Mnemonic::NumMnemonics);
         ++I) {
      // Later duplicates (e.g. MOVQX also spelled "movq") do not shadow the
      // first entry; the parser disambiguates by operand kinds.
      M.emplace(OpcodeTable[I].Name, static_cast<Mnemonic>(I));
    }
    return M;
  }();
  auto It = Map.find(Name);
  return It == Map.end() ? Mnemonic::Invalid : It->second;
}
