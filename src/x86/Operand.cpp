//===- x86/Operand.cpp - Instruction operand model -------------------------==//

#include "x86/Operand.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>

using namespace mao;

static void appendInt(std::string &Out, int64_t Value) {
  char Buffer[32];
  std::snprintf(Buffer, sizeof(Buffer), "%" PRId64, Value);
  Out += Buffer;
}

/// Renders "sym", "sym+4", or "" / decimal displacement.
static void appendSymPlusAddend(std::string &Out, const std::string &Sym,
                                int64_t Addend, bool OmitZero) {
  if (!Sym.empty()) {
    Out += Sym;
    if (Addend > 0) {
      Out += '+';
      appendInt(Out, Addend);
    } else if (Addend < 0) {
      appendInt(Out, Addend);
    }
    return;
  }
  if (Addend != 0 || !OmitZero)
    appendInt(Out, Addend);
}

std::string Operand::toString() const {
  std::string Out;
  switch (Kind) {
  case OperandKind::None:
    return "<none>";
  case OperandKind::Register:
    if (IndirectStar)
      Out += '*';
    Out += '%';
    Out += regName(R);
    return Out;
  case OperandKind::Immediate:
    Out += '$';
    appendSymPlusAddend(Out, Sym, Imm, /*OmitZero=*/false);
    return Out;
  case OperandKind::Symbol:
    appendSymPlusAddend(Out, Sym, Imm, /*OmitZero=*/false);
    return Out;
  case OperandKind::Memory: {
    if (IndirectStar)
      Out += '*';
    appendSymPlusAddend(Out, Mem.SymDisp, Mem.Disp, /*OmitZero=*/true);
    if (Mem.Base == Reg::None && Mem.Index == Reg::None)
      return Out;
    Out += '(';
    if (Mem.Base != Reg::None) {
      Out += '%';
      Out += regName(Mem.Base);
    }
    if (Mem.Index != Reg::None) {
      assert(Mem.Index != Reg::RSP && "rsp cannot be an index register");
      Out += ",%";
      Out += regName(Mem.Index);
      Out += ',';
      Out += static_cast<char>('0' + Mem.Scale);
    }
    Out += ')';
    return Out;
  }
  }
  assert(false && "covered switch");
  return Out;
}
