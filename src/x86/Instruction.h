//===- x86/Instruction.h - The single instruction struct --------*- C++ -*-===//
///
/// \file
/// "Every possible x86 instruction [is encoded] into a single C struct type"
/// (paper Sec. II). Instruction is that struct: mnemonic, operation width,
/// condition code, operands in AT&T order, and a handful of attributes the
/// optimizer manipulates directly (NOP length, relaxed branch size).
///
/// InstructionEffects is the table-driven side-effect summary that the
/// simple dataflow apparatus consumes: which super registers and which
/// condition flags an instruction defines and uses, and whether it touches
/// memory.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_X86_INSTRUCTION_H
#define MAO_X86_INSTRUCTION_H

#include "x86/Opcodes.h"
#include "x86/Operand.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mao {

/// Dense register mask: bits [0,16) are the GPR super registers RAX..R15,
/// bits [16,32) are XMM0..XMM15.
using RegMask = uint32_t;

/// Returns the RegMask bit for any register view (RIP yields 0).
RegMask regMaskBit(Reg R);

/// All GPRs clobbered by a call under the System V AMD64 ABI.
extern const RegMask CallClobberedMask;
/// GPRs that may carry arguments into a call (rdi,rsi,rdx,rcx,r8,r9,rsp).
extern const RegMask CallUsedMask;
/// Callee-visible registers a `ret` is conservatively said to use.
extern const RegMask RetUsedMask;

/// Side-effect summary of one instruction.
struct InstructionEffects {
  RegMask RegDefs = 0;
  RegMask RegUses = 0;
  uint8_t FlagsDef = 0;
  uint8_t FlagsUse = 0;
  bool MemRead = false;
  bool MemWrite = false;
  /// True when the instruction must not be reordered or reasoned across
  /// (opaque instructions, calls).
  bool Barrier = false;
};

/// One assembly instruction.
struct Instruction {
  Mnemonic Mn = Mnemonic::Invalid;
  Width W = Width::None;    ///< Operation width (b/w/l/q suffix).
  Width SrcW = Width::None; ///< Source width for movz/movs pairs.
  CondCode CC = CondCode::None;
  uint8_t NopLength = 1;    ///< Encoded length for NOP (1..15 bytes).
  /// Branch displacement size chosen by relaxation: 0 = not yet chosen,
  /// 1 = rel8, 4 = rel32. Calls are always rel32.
  uint8_t BranchSize = 0;
  OperandList Ops;          ///< AT&T order: sources first, destination last.
  std::string RawText;      ///< Verbatim text for Opaque instructions.

  const OpcodeInfo &info() const { return opcodeInfo(Mn); }

  bool isOpaque() const { return info().Kind == EncKind::Opaque; }
  bool isNop() const { return Mn == Mnemonic::NOP; }
  bool isCall() const { return info().Kind == EncKind::Call; }
  bool isReturn() const { return info().Kind == EncKind::Ret; }
  bool isUncondJump() const { return info().Kind == EncKind::Jmp; }
  bool isCondJump() const { return info().Kind == EncKind::Jcc; }
  bool isBranch() const { return isUncondJump() || isCondJump(); }
  /// True when straight-line execution cannot fall through this entry.
  bool endsStraightLine() const { return isUncondJump() || isReturn(); }
  /// True for instructions whose only architectural effect is writing the
  /// status flags (cmp/test/ucomis*): if the flags are dead, the whole
  /// instruction is dead.
  bool writesFlagsOnly() const {
    return info().Kind == EncKind::Test || Mn == Mnemonic::CMP ||
           Mn == Mnemonic::UCOMISS || Mn == Mnemonic::UCOMISD;
  }

  /// For branches/calls: the target operand (Symbol for direct targets,
  /// Register/Memory for indirect ones). Null for other instructions.
  const Operand *branchTarget() const;
  /// True for `jmp *%reg` / `jmp *mem` style targets.
  bool hasIndirectTarget() const;

  /// Returns the instruction's single memory operand, or null. (The modelled
  /// subset never has two memory operands.)
  const Operand *memOperand() const;
  Operand *memOperand();

  /// Computes the table-driven side-effect summary.
  InstructionEffects effects() const;

  /// Renders AT&T assembly text ("movl %eax, 4(%rsp)").
  std::string toString() const;

  /// Returns the full mnemonic including width/cc suffix ("movl", "jne").
  std::string mnemonicText() const;

  bool operator==(const Instruction &O) const = default;
};

/// Convenience builders used throughout passes, tests and the workload
/// generator. All take operands in AT&T order.

/// Builds `Mn` with no operands.
Instruction makeInstr(Mnemonic Mn, Width W = Width::None);
/// Builds `Mn src, dst`.
Instruction makeInstr(Mnemonic Mn, Width W, Operand Src, Operand Dst);
/// Builds `Mn op`.
Instruction makeInstr(Mnemonic Mn, Width W, Operand Op);
/// Builds a direct jump/call to \p Label.
Instruction makeJump(const std::string &Label);
Instruction makeCondJump(CondCode CC, const std::string &Label);
Instruction makeCall(const std::string &Label);
/// Builds a NOP of \p Bytes encoded bytes (1..15).
Instruction makeNop(unsigned Bytes);

} // namespace mao

#endif // MAO_X86_INSTRUCTION_H
