//===- x86/Operand.h - Instruction operand model ----------------*- C++ -*-===//
///
/// \file
/// Operand representation covering the x86-64 addressing modes that appear
/// in compiler-generated AT&T assembly: registers, (symbolic) immediates,
/// memory references `disp(base, index, scale)` including RIP-relative
/// forms, and direct symbol targets for branches and calls.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_X86_OPERAND_H
#define MAO_X86_OPERAND_H

#include "x86/Registers.h"

#include <cstdint>
#include <iterator>
#include <new>
#include <string>
#include <utility>

namespace mao {

/// A memory reference: SymDisp+Disp(Base, Index, Scale).
struct MemRef {
  std::string SymDisp; ///< Optional symbolic displacement part.
  int64_t Disp = 0;    ///< Constant displacement part.
  Reg Base = Reg::None;  ///< Base register; may be Reg::RIP.
  Reg Index = Reg::None; ///< Index register (never RSP).
  uint8_t Scale = 1;     ///< 1, 2, 4 or 8.

  bool hasSym() const { return !SymDisp.empty(); }
  bool isRipRelative() const { return Base == Reg::RIP; }
  bool operator==(const MemRef &O) const = default;
};

enum class OperandKind : uint8_t {
  None,
  Register,  ///< %reg (possibly an indirect '*%reg' branch target)
  Immediate, ///< $imm or $sym+imm
  Memory,    ///< disp(base,index,scale) (possibly an indirect '*mem' target)
  Symbol,    ///< bare symbol: direct branch/call target or data reference
};

/// One instruction operand. A small tagged union; the active members depend
/// on Kind. AT&T operand order is preserved: sources precede destinations.
struct Operand {
  OperandKind Kind = OperandKind::None;
  Reg R = Reg::None;     ///< Register when Kind == Register.
  int64_t Imm = 0;       ///< Immediate value / symbol addend.
  std::string Sym;       ///< Symbol when Kind is Immediate or Symbol.
  MemRef Mem;            ///< Memory reference when Kind == Memory.
  bool IndirectStar = false; ///< '*' prefix on a jump/call target.

  static Operand makeReg(Reg R) {
    Operand Op;
    Op.Kind = OperandKind::Register;
    Op.R = R;
    return Op;
  }

  static Operand makeImm(int64_t Value) {
    Operand Op;
    Op.Kind = OperandKind::Immediate;
    Op.Imm = Value;
    return Op;
  }

  static Operand makeImmSym(std::string Symbol, int64_t Addend = 0) {
    Operand Op;
    Op.Kind = OperandKind::Immediate;
    Op.Sym = std::move(Symbol);
    Op.Imm = Addend;
    return Op;
  }

  static Operand makeMem(MemRef M) {
    Operand Op;
    Op.Kind = OperandKind::Memory;
    Op.Mem = std::move(M);
    return Op;
  }

  static Operand makeSymbol(std::string Symbol, int64_t Addend = 0) {
    Operand Op;
    Op.Kind = OperandKind::Symbol;
    Op.Sym = std::move(Symbol);
    Op.Imm = Addend;
    return Op;
  }

  bool isReg() const { return Kind == OperandKind::Register; }
  bool isImm() const { return Kind == OperandKind::Immediate; }
  bool isMem() const { return Kind == OperandKind::Memory; }
  bool isSymbol() const { return Kind == OperandKind::Symbol; }
  bool isSymbolicImm() const { return isImm() && !Sym.empty(); }
  bool isConstImm() const { return isImm() && Sym.empty(); }

  bool operator==(const Operand &O) const = default;

  /// Renders the operand in AT&T syntax ("%rax", "$5", "8(%rsp,%rcx,4)").
  std::string toString() const;
};

/// The operand sequence of one instruction: a small-vector with two inline
/// slots. Nearly every modelled x86 instruction has at most two explicit
/// operands, so keeping them inside Instruction removes the heap
/// allocation-and-free per instruction that std::vector<Operand> cost on
/// the parse and clone hot paths; the rare three-operand imul spills to the
/// heap. Deliberately minimal: exactly the vector API surface the code base
/// uses (indexing, size, push_back, reverse iteration, equality).
class OperandList {
public:
  using value_type = Operand;
  using iterator = Operand *;
  using const_iterator = const Operand *;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  OperandList() = default;
  OperandList(const OperandList &O) {
    growTo(O.Count);
    for (uint32_t I = 0; I < O.Count; ++I)
      new (data() + I) Operand(O.data()[I]);
    Count = O.Count;
  }
  OperandList(OperandList &&O) noexcept { moveFrom(std::move(O)); }
  OperandList &operator=(const OperandList &O) {
    if (this != &O) {
      clear();
      growTo(O.Count);
      for (uint32_t I = 0; I < O.Count; ++I)
        new (data() + I) Operand(O.data()[I]);
      Count = O.Count;
    }
    return *this;
  }
  OperandList &operator=(OperandList &&O) noexcept {
    if (this != &O) {
      clear();
      releaseHeap();
      moveFrom(std::move(O));
    }
    return *this;
  }
  ~OperandList() {
    clear();
    releaseHeap();
  }

  Operand *data() {
    return Heap ? Heap : reinterpret_cast<Operand *>(Inline);
  }
  const Operand *data() const {
    return Heap ? Heap : reinterpret_cast<const Operand *>(Inline);
  }

  uint32_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  Operand &operator[](size_t I) { return data()[I]; }
  const Operand &operator[](size_t I) const { return data()[I]; }
  Operand &front() { return data()[0]; }
  const Operand &front() const { return data()[0]; }
  Operand &back() { return data()[Count - 1]; }
  const Operand &back() const { return data()[Count - 1]; }

  iterator begin() { return data(); }
  iterator end() { return data() + Count; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + Count; }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  void push_back(const Operand &Op) { emplace_back(Op); }
  void push_back(Operand &&Op) { emplace_back(std::move(Op)); }
  template <typename... Args> Operand &emplace_back(Args &&...A) {
    if (Count == Cap)
      growTo(Count + 1);
    Operand *P = new (data() + Count) Operand(std::forward<Args>(A)...);
    ++Count;
    return *P;
  }

  void clear() {
    for (uint32_t I = 0; I < Count; ++I)
      data()[I].~Operand();
    Count = 0;
  }

  /// Pre-sizes capacity; like std::vector, never shrinks.
  void reserve(size_t N) {
    if (N > Cap)
      growTo(static_cast<uint32_t>(N));
  }

  bool operator==(const OperandList &O) const {
    if (Count != O.Count)
      return false;
    for (uint32_t I = 0; I < Count; ++I)
      if (!(data()[I] == O.data()[I]))
        return false;
    return true;
  }

private:
  static constexpr uint32_t InlineCap = 2;

  void moveFrom(OperandList &&O) noexcept {
    if (O.Heap) {
      Heap = O.Heap;
      Cap = O.Cap;
      Count = O.Count;
      O.Heap = nullptr;
      O.Cap = InlineCap;
      O.Count = 0;
      return;
    }
    for (uint32_t I = 0; I < O.Count; ++I)
      new (data() + I) Operand(std::move(O.data()[I]));
    Count = O.Count;
    O.clear();
  }

  void growTo(uint32_t AtLeast) {
    if (AtLeast <= Cap)
      return;
    uint32_t NewCap = Cap * 2;
    while (NewCap < AtLeast)
      NewCap *= 2;
    Operand *NewData =
        static_cast<Operand *>(::operator new(sizeof(Operand) * NewCap));
    Operand *Old = data();
    for (uint32_t I = 0; I < Count; ++I) {
      new (NewData + I) Operand(std::move(Old[I]));
      Old[I].~Operand();
    }
    releaseHeap();
    Heap = NewData;
    Cap = NewCap;
  }

  void releaseHeap() {
    if (Heap) {
      ::operator delete(Heap);
      Heap = nullptr;
      Cap = InlineCap;
    }
  }

  Operand *Heap = nullptr;
  uint32_t Count = 0;
  uint32_t Cap = InlineCap;
  alignas(Operand) unsigned char Inline[sizeof(Operand) * InlineCap];
};

} // namespace mao

#endif // MAO_X86_OPERAND_H
