//===- x86/Operand.h - Instruction operand model ----------------*- C++ -*-===//
///
/// \file
/// Operand representation covering the x86-64 addressing modes that appear
/// in compiler-generated AT&T assembly: registers, (symbolic) immediates,
/// memory references `disp(base, index, scale)` including RIP-relative
/// forms, and direct symbol targets for branches and calls.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_X86_OPERAND_H
#define MAO_X86_OPERAND_H

#include "x86/Registers.h"

#include <cstdint>
#include <string>

namespace mao {

/// A memory reference: SymDisp+Disp(Base, Index, Scale).
struct MemRef {
  std::string SymDisp; ///< Optional symbolic displacement part.
  int64_t Disp = 0;    ///< Constant displacement part.
  Reg Base = Reg::None;  ///< Base register; may be Reg::RIP.
  Reg Index = Reg::None; ///< Index register (never RSP).
  uint8_t Scale = 1;     ///< 1, 2, 4 or 8.

  bool hasSym() const { return !SymDisp.empty(); }
  bool isRipRelative() const { return Base == Reg::RIP; }
  bool operator==(const MemRef &O) const = default;
};

enum class OperandKind : uint8_t {
  None,
  Register,  ///< %reg (possibly an indirect '*%reg' branch target)
  Immediate, ///< $imm or $sym+imm
  Memory,    ///< disp(base,index,scale) (possibly an indirect '*mem' target)
  Symbol,    ///< bare symbol: direct branch/call target or data reference
};

/// One instruction operand. A small tagged union; the active members depend
/// on Kind. AT&T operand order is preserved: sources precede destinations.
struct Operand {
  OperandKind Kind = OperandKind::None;
  Reg R = Reg::None;     ///< Register when Kind == Register.
  int64_t Imm = 0;       ///< Immediate value / symbol addend.
  std::string Sym;       ///< Symbol when Kind is Immediate or Symbol.
  MemRef Mem;            ///< Memory reference when Kind == Memory.
  bool IndirectStar = false; ///< '*' prefix on a jump/call target.

  static Operand makeReg(Reg R) {
    Operand Op;
    Op.Kind = OperandKind::Register;
    Op.R = R;
    return Op;
  }

  static Operand makeImm(int64_t Value) {
    Operand Op;
    Op.Kind = OperandKind::Immediate;
    Op.Imm = Value;
    return Op;
  }

  static Operand makeImmSym(std::string Symbol, int64_t Addend = 0) {
    Operand Op;
    Op.Kind = OperandKind::Immediate;
    Op.Sym = std::move(Symbol);
    Op.Imm = Addend;
    return Op;
  }

  static Operand makeMem(MemRef M) {
    Operand Op;
    Op.Kind = OperandKind::Memory;
    Op.Mem = std::move(M);
    return Op;
  }

  static Operand makeSymbol(std::string Symbol, int64_t Addend = 0) {
    Operand Op;
    Op.Kind = OperandKind::Symbol;
    Op.Sym = std::move(Symbol);
    Op.Imm = Addend;
    return Op;
  }

  bool isReg() const { return Kind == OperandKind::Register; }
  bool isImm() const { return Kind == OperandKind::Immediate; }
  bool isMem() const { return Kind == OperandKind::Memory; }
  bool isSymbol() const { return Kind == OperandKind::Symbol; }
  bool isSymbolicImm() const { return isImm() && !Sym.empty(); }
  bool isConstImm() const { return isImm() && Sym.empty(); }

  bool operator==(const Operand &O) const = default;

  /// Renders the operand in AT&T syntax ("%rax", "$5", "8(%rsp,%rcx,4)").
  std::string toString() const;
};

} // namespace mao

#endif // MAO_X86_OPERAND_H
