//===- x86/Registers.h - x86-64 register model ------------------*- C++ -*-===//
///
/// \file
/// Register enumeration and queries. The dataflow framework reasons about
/// *super registers*: every narrower view (AL, AX, EAX) aliases its 64-bit
/// parent (RAX), and a write to a 32-bit view zero-extends, i.e. defines the
/// whole 64-bit register. Byte and word writes merge, i.e. both define and
/// use the super register.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_X86_REGISTERS_H
#define MAO_X86_REGISTERS_H

#include "x86/X86Defs.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace mao {

/// Every register MAO models, in Registers.def order.
enum class Reg : uint8_t {
  None = 0,
#define MAO_REG(Name, Att, W, Enc, Super, Rex, High) Name,
#include "x86/Registers.def"
  NumRegs,
};

/// Number of distinct 64-bit GPR super registers (RAX..R15).
constexpr unsigned NumGprSupers = 16;

/// Static description of one register view. The table (generated from
/// Registers.def in Registers.cpp) is exposed so the accessors below inline
/// to indexed loads — they run several times per operand on the parse and
/// encode hot paths.
struct RegInfo {
  const char *Name;
  Width W;
  uint8_t Encoding;
  Reg Super;
  bool NeedsRex;
  bool HighByte;
};
extern const RegInfo RegTable[static_cast<unsigned>(Reg::NumRegs)];

/// Returns the AT&T name without the '%' sigil ("rax").
inline const char *regName(Reg R) {
  return RegTable[static_cast<unsigned>(R)].Name;
}

/// Parses a register name without the '%' sigil; Reg::None when unknown.
Reg parseRegName(std::string_view Name);

/// Returns the register's natural width (Width::None for XMM).
inline Width regWidth(Reg R) { return RegTable[static_cast<unsigned>(R)].W; }

/// Returns the 4-bit hardware encoding (bit 3 belongs in a REX prefix).
inline unsigned regEncoding(Reg R) {
  return RegTable[static_cast<unsigned>(R)].Encoding;
}

/// Returns the canonical 64-bit super register (RAX for AL/AX/EAX/RAX).
inline Reg superReg(Reg R) {
  return RegTable[static_cast<unsigned>(R)].Super;
}

/// True for registers that require a REX prefix to be encodable.
inline bool regNeedsRex(Reg R) {
  return RegTable[static_cast<unsigned>(R)].NeedsRex;
}

/// True for AH/CH/DH/BH, which cannot appear in a REX-prefixed instruction.
inline bool regIsHighByte(Reg R) {
  return RegTable[static_cast<unsigned>(R)].HighByte;
}

/// True for any general-purpose register view (not RIP, not XMM).
inline bool regIsGpr(Reg R) { return R >= Reg::RAX && R <= Reg::BH; }

/// True for XMM registers.
inline bool regIsXmm(Reg R) { return R >= Reg::XMM0 && R <= Reg::XMM15; }

/// Returns the GPR view of \p Super64 with width \p W (e.g. RAX + L -> EAX).
/// \p Super64 must be a 64-bit GPR; high-byte views are never returned.
Reg gprWithWidth(Reg Super64, Width W);

/// Returns a dense index in [0, NumGprSupers) for a GPR's super register,
/// used by bitset-based dataflow.
unsigned gprSuperIndex(Reg R);

} // namespace mao

#endif // MAO_X86_REGISTERS_H
