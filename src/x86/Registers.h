//===- x86/Registers.h - x86-64 register model ------------------*- C++ -*-===//
///
/// \file
/// Register enumeration and queries. The dataflow framework reasons about
/// *super registers*: every narrower view (AL, AX, EAX) aliases its 64-bit
/// parent (RAX), and a write to a 32-bit view zero-extends, i.e. defines the
/// whole 64-bit register. Byte and word writes merge, i.e. both define and
/// use the super register.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_X86_REGISTERS_H
#define MAO_X86_REGISTERS_H

#include "x86/X86Defs.h"

#include <cstdint>
#include <string>

namespace mao {

/// Every register MAO models, in Registers.def order.
enum class Reg : uint8_t {
  None = 0,
#define MAO_REG(Name, Att, W, Enc, Super, Rex, High) Name,
#include "x86/Registers.def"
  NumRegs,
};

/// Number of distinct 64-bit GPR super registers (RAX..R15).
constexpr unsigned NumGprSupers = 16;

/// Returns the AT&T name without the '%' sigil ("rax").
const char *regName(Reg R);

/// Parses a register name without the '%' sigil; Reg::None when unknown.
Reg parseRegName(const std::string &Name);

/// Returns the register's natural width (Width::None for XMM).
Width regWidth(Reg R);

/// Returns the 4-bit hardware encoding (bit 3 belongs in a REX prefix).
unsigned regEncoding(Reg R);

/// Returns the canonical 64-bit super register (RAX for AL/AX/EAX/RAX).
Reg superReg(Reg R);

/// True for registers that require a REX prefix to be encodable.
bool regNeedsRex(Reg R);

/// True for AH/CH/DH/BH, which cannot appear in a REX-prefixed instruction.
bool regIsHighByte(Reg R);

/// True for any general-purpose register view (not RIP, not XMM).
bool regIsGpr(Reg R);

/// True for XMM registers.
bool regIsXmm(Reg R);

/// Returns the GPR view of \p Super64 with width \p W (e.g. RAX + L -> EAX).
/// \p Super64 must be a 64-bit GPR; high-byte views are never returned.
Reg gprWithWidth(Reg Super64, Width W);

/// Returns a dense index in [0, NumGprSupers) for a GPR's super register,
/// used by bitset-based dataflow.
unsigned gprSuperIndex(Reg R);

} // namespace mao

#endif // MAO_X86_REGISTERS_H
