//===- check/SymbolicEval.cpp - Symbolic per-block evaluator -----------------==//

#include "check/SymbolicEval.h"

#include "x86/Opcodes.h"
#include "x86/Registers.h"

#include <bit>
#include <cassert>
#include <cstring>
#include <optional>
#include <sstream>

using namespace mao;

namespace {

uint64_t onesMask(unsigned Bits) {
  return Bits >= 64 ? ~0ULL : (1ULL << Bits) - 1;
}

/// Operand size in bytes; Width::None behaves like Q (the emulator's
/// convention for width-less instructions).
unsigned bytesOf(Width W) {
  unsigned B = widthBytes(W);
  return B ? B : 8;
}

uint64_t widthMask(Width W) { return onesMask(bytesOf(W) * 8); }

bool signOf(uint64_t Value, unsigned Bits) {
  return (Value >> (Bits - 1)) & 1;
}

int64_t sext(uint64_t Value, unsigned Bits) {
  if (Bits >= 64)
    return static_cast<int64_t>(Value);
  Value &= onesMask(Bits);
  const uint64_t Sign = 1ULL << (Bits - 1);
  return static_cast<int64_t>((Value ^ Sign) - Sign);
}

bool parity8(uint64_t Value) {
  return (std::popcount(Value & 0xff) % 2) == 0;
}

/// True for masks of the form 00..011..1 (at least one low bit set).
bool isLowOnesMask(uint64_t M) { return M != 0 && ((M + 1) & M) == 0; }

float asF32(uint64_t Bits) {
  float F;
  uint32_t U = static_cast<uint32_t>(Bits);
  std::memcpy(&F, &U, 4);
  return F;
}
uint64_t fromF32(float F) {
  uint32_t U;
  std::memcpy(&U, &F, 4);
  return U;
}
double asF64(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, 8);
  return D;
}
uint64_t fromF64(double D) {
  uint64_t U;
  std::memcpy(&U, &D, 8);
  return U;
}

/// Replicates Emulator's flagsAdd for one flag.
std::optional<bool> foldAddFlag(unsigned FlagPos, uint64_t A, uint64_t B,
                                uint64_t Carry, unsigned Bits) {
  const uint64_t Mask = onesMask(Bits);
  A &= Mask;
  B &= Mask;
  uint64_t R = (A + B + Carry) & Mask;
  switch (1u << FlagPos) {
  case FlagCF:
    return R < A || (Carry && R == A && B == Mask);
  case FlagOF:
    return signOf(A, Bits) == signOf(B, Bits) && signOf(R, Bits) != signOf(A, Bits);
  case FlagAF:
    return ((A ^ B ^ R) >> 4) & 1;
  case FlagZF:
    return R == 0;
  case FlagSF:
    return signOf(R, Bits);
  case FlagPF:
    return parity8(R);
  }
  return std::nullopt;
}

std::optional<bool> foldSubFlag(unsigned FlagPos, uint64_t A, uint64_t B,
                                uint64_t Borrow, unsigned Bits) {
  const uint64_t Mask = onesMask(Bits);
  A &= Mask;
  B &= Mask;
  uint64_t R = (A - B - Borrow) & Mask;
  switch (1u << FlagPos) {
  case FlagCF:
    return A < B + Borrow || (Borrow && B == Mask);
  case FlagOF:
    return signOf(A, Bits) != signOf(B, Bits) && signOf(R, Bits) != signOf(A, Bits);
  case FlagAF:
    return ((A ^ B ^ R) >> 4) & 1;
  case FlagZF:
    return R == 0;
  case FlagSF:
    return signOf(R, Bits);
  case FlagPF:
    return parity8(R);
  }
  return std::nullopt;
}

/// Constant evaluation of a FlagFn node: flag FlagPos of operation Mn at
/// width Bits over constant inputs. Returns nullopt when the emulator leaves
/// the flag unchanged / undefined (the node then stays symbolic, which is
/// fine — both compared sides build the identical node).
std::optional<bool> foldFlagFn(unsigned FlagPos, Mnemonic Mn, unsigned Bits,
                               const std::vector<uint64_t> &V) {
  const uint64_t Mask = onesMask(Bits);
  switch (Mn) {
  case Mnemonic::ADD:
  case Mnemonic::ADC:
    if (V.size() < 3)
      return std::nullopt;
    return foldAddFlag(FlagPos, V[0], V[1], V[2], Bits);
  case Mnemonic::SUB:
  case Mnemonic::SBB:
  case Mnemonic::CMP:
  case Mnemonic::NEG:
    if (V.size() < 3)
      return std::nullopt;
    return foldSubFlag(FlagPos, V[0], V[1], V[2], Bits);
  case Mnemonic::IMUL: {
    if (V.size() < 2 || (FlagPos != 0 && (1u << FlagPos) != FlagOF))
      return std::nullopt;
    __int128 Prod = static_cast<__int128>(sext(V[0], Bits)) * sext(V[1], Bits);
    uint64_t R = static_cast<uint64_t>(Prod) & Mask;
    return static_cast<__int128>(sext(R, Bits)) != Prod;
  }
  case Mnemonic::SHL:
  case Mnemonic::SHR:
  case Mnemonic::SAR:
  case Mnemonic::ROL:
  case Mnemonic::ROR: {
    if (V.size() < 2)
      return std::nullopt;
    uint64_t Val = V[0] & Mask;
    uint64_t Count = V[1];
    if (Count == 0)
      return std::nullopt; // Flags unchanged; cannot fold.
    uint64_t R = 0;
    bool CF = false, OF = false;
    switch (Mn) {
    case Mnemonic::SHL:
      CF = Count <= Bits && ((Val >> (Bits - Count)) & 1);
      R = (Val << Count) & Mask;
      OF = signOf(R, Bits) != CF;
      break;
    case Mnemonic::SHR:
      CF = (Val >> (Count - 1)) & 1;
      R = Val >> Count;
      OF = signOf(Val, Bits);
      break;
    case Mnemonic::SAR: {
      int64_t SVal = sext(Val, Bits);
      CF = (SVal >> (Count - 1)) & 1;
      R = static_cast<uint64_t>(SVal >> Count) & Mask;
      OF = false;
      break;
    }
    case Mnemonic::ROL:
      Count %= Bits;
      if (Count == 0)
        return std::nullopt;
      R = ((Val << Count) | (Val >> (Bits - Count))) & Mask;
      if ((1u << FlagPos) == FlagCF)
        return (R & 1) != 0;
      return std::nullopt; // Only CF is written.
    case Mnemonic::ROR:
      Count %= Bits;
      if (Count == 0)
        return std::nullopt;
      R = ((Val >> Count) | (Val << (Bits - Count))) & Mask;
      if ((1u << FlagPos) == FlagCF)
        return signOf(R, Bits);
      return std::nullopt;
    default:
      break;
    }
    switch (1u << FlagPos) {
    case FlagCF:
      return CF;
    case FlagOF:
      return OF;
    case FlagZF:
      return (R & Mask) == 0;
    case FlagSF:
      return signOf(R & Mask, Bits);
    case FlagPF:
      return parity8(R);
    default:
      return std::nullopt; // AF undefined after shifts.
    }
  }
  case Mnemonic::UCOMISS:
  case Mnemonic::UCOMISD: {
    if (V.size() < 2)
      return std::nullopt;
    bool Unordered, Eq, Lt;
    if (Mn == Mnemonic::UCOMISS) {
      float A = asF32(V[0]), B = asF32(V[1]);
      Unordered = A != A || B != B;
      Eq = A == B;
      Lt = A < B;
    } else {
      double A = asF64(V[0]), B = asF64(V[1]);
      Unordered = A != A || B != B;
      Eq = A == B;
      Lt = A < B;
    }
    switch (1u << FlagPos) {
    case FlagZF:
      return Unordered || Eq;
    case FlagCF:
      return Unordered || Lt;
    case FlagPF:
      return Unordered;
    default:
      return false; // OF/AF/SF are cleared.
    }
  }
  default:
    return std::nullopt; // MUL/DIV/... leave this flag undefined.
  }
}

} // namespace

unsigned mao::denseRegIndex(Reg R) {
  if (R == Reg::None)
    return ~0u;
  if (regIsXmm(R))
    return 16 + regEncoding(R);
  if (regIsGpr(R))
    return gprSuperIndex(R);
  return ~0u; // RIP
}

//===----------------------------------------------------------------------===//
// SymTable
//===----------------------------------------------------------------------===//

NodeId SymTable::intern(SymNode Node) {
  std::ostringstream Key;
  Key << static_cast<int>(Node.Kind) << '|' << static_cast<int>(Node.Tag)
      << '|' << Node.A << '|' << Node.B << '|' << Node.Value << '|'
      << Node.Aux << '|';
  for (NodeId Arg : Node.Args)
    Key << Arg << ',';
  auto It = Interned.find(Key.str());
  if (It != Interned.end())
    return It->second;
  NodeId Id = static_cast<NodeId>(Nodes.size());
  Nodes.push_back(std::move(Node));
  Interned.emplace(Key.str(), Id);
  return Id;
}

NodeId SymTable::makeConst(uint64_t Value) {
  SymNode N;
  N.Kind = SymKind::Const;
  N.Value = Value;
  N.KnownZero = ~Value;
  return intern(std::move(N));
}

NodeId SymTable::makeInitReg(unsigned DenseIndex) {
  SymNode N;
  N.Kind = SymKind::InitReg;
  N.A = DenseIndex;
  return intern(std::move(N));
}

NodeId SymTable::makeInitFlag(unsigned FlagPos) {
  SymNode N;
  N.Kind = SymKind::InitFlag;
  N.A = FlagPos;
  N.KnownZero = ~1ULL;
  return intern(std::move(N));
}

NodeId SymTable::makeSymAddr(const std::string &Sym, int64_t Addend) {
  SymNode N;
  N.Kind = SymKind::SymAddr;
  N.Aux = Sym;
  N.Value = static_cast<uint64_t>(Addend);
  return intern(std::move(N));
}

NodeId SymTable::makeUnknown(const std::string &Aux, uint32_t A, uint32_t B) {
  SymNode N;
  N.Kind = SymKind::Unknown;
  N.Aux = Aux;
  N.A = A;
  N.B = B;
  if (B >= 100)
    N.KnownZero = ~1ULL; // Flag-valued unknowns are 0/1.
  return intern(std::move(N));
}

namespace {

bool isCommutative(SymTag Tag) {
  switch (Tag) {
  case SymTag::Add:
  case SymTag::Mul:
  case SymTag::And:
  case SymTag::Or:
  case SymTag::Xor:
    return true;
  default:
    return false;
  }
}

/// Constant evaluation of an Op node. Returns nullopt for non-foldable tags
/// (Load, opaque FlagFns, division by a constant zero, ...).
std::optional<uint64_t> foldOp(SymTag Tag, uint32_t A, uint32_t B,
                               const std::vector<uint64_t> &V) {
  switch (Tag) {
  case SymTag::Add:
    return V[0] + V[1];
  case SymTag::Sub:
    return V[0] - V[1];
  case SymTag::Mul:
    return V[0] * V[1];
  case SymTag::MulHiU: {
    unsigned Bits = A;
    uint64_t Mask = onesMask(Bits);
    unsigned __int128 Prod =
        static_cast<unsigned __int128>(V[0] & Mask) * (V[1] & Mask);
    return static_cast<uint64_t>(Prod >> Bits) & Mask;
  }
  case SymTag::MulHiS: {
    unsigned Bits = A;
    __int128 Prod = static_cast<__int128>(sext(V[0], Bits)) * sext(V[1], Bits);
    return static_cast<uint64_t>(Prod >> Bits) & onesMask(Bits);
  }
  case SymTag::DivQ:
  case SymTag::DivR: {
    unsigned Bits = A;
    uint64_t Mask = onesMask(Bits);
    uint64_t Den = V[2] & Mask;
    if (Den == 0)
      return std::nullopt;
    unsigned __int128 Num =
        (static_cast<unsigned __int128>(V[0] & Mask) << Bits) | (V[1] & Mask);
    return static_cast<uint64_t>(Tag == SymTag::DivQ ? Num / Den : Num % Den) &
           Mask;
  }
  case SymTag::IDivQ:
  case SymTag::IDivR: {
    unsigned Bits = A;
    int64_t Den = sext(V[2], Bits);
    if (Den == 0)
      return std::nullopt;
    __int128 Num = (static_cast<__int128>(sext(V[0], Bits)) << Bits) |
                   (V[1] & onesMask(Bits));
    __int128 R = Tag == SymTag::IDivQ ? Num / Den : Num % Den;
    return static_cast<uint64_t>(R) & onesMask(Bits);
  }
  case SymTag::And:
    return V[0] & V[1];
  case SymTag::Or:
    return V[0] | V[1];
  case SymTag::Xor:
    return V[0] ^ V[1];
  case SymTag::Not:
    return ~V[0];
  case SymTag::Neg:
    return 0 - V[0];
  case SymTag::Shl:
    return V[1] >= 64 ? 0 : V[0] << V[1];
  case SymTag::Shr:
    return V[1] >= 64 ? 0 : V[0] >> V[1];
  case SymTag::Sar: {
    unsigned Bits = A ? A : 64;
    uint64_t Count = V[1] >= Bits ? Bits - 1 : V[1];
    return static_cast<uint64_t>(sext(V[0], Bits) >> Count) & onesMask(Bits);
  }
  case SymTag::Rol:
  case SymTag::Ror: {
    unsigned Bits = A ? A : 64;
    uint64_t Mask = onesMask(Bits);
    uint64_t Val = V[0] & Mask;
    uint64_t Count = V[1] % Bits;
    if (Count == 0)
      return Val;
    if (Tag == SymTag::Rol)
      return ((Val << Count) | (Val >> (Bits - Count))) & Mask;
    return ((Val >> Count) | (Val << (Bits - Count))) & Mask;
  }
  case SymTag::Bswap: {
    unsigned Bytes = (A ? A : 64) / 8;
    uint64_t R = 0;
    for (unsigned I = 0; I < Bytes; ++I)
      R |= ((V[0] >> (8 * I)) & 0xff) << (8 * (Bytes - 1 - I));
    return R;
  }
  case SymTag::SExt:
    return static_cast<uint64_t>(sext(V[0], A));
  case SymTag::Select:
    return V[0] ? V[1] : V[2];
  case SymTag::EqZero:
    return V[0] == 0 ? 1 : 0;
  case SymTag::SignBit:
    return (V[0] >> ((A ? A : 64) - 1)) & 1;
  case SymTag::Par8:
    return parity8(V[0]) ? 1 : 0;
  case SymTag::FlagFn: {
    auto R = foldFlagFn(A, static_cast<Mnemonic>(B & 0xffff), B >> 16, V);
    if (!R)
      return std::nullopt;
    return *R ? 1 : 0;
  }
  case SymTag::FAdd32:
    return fromF32(asF32(V[0]) + asF32(V[1]));
  case SymTag::FSub32:
    return fromF32(asF32(V[0]) - asF32(V[1]));
  case SymTag::FMul32:
    return fromF32(asF32(V[0]) * asF32(V[1]));
  case SymTag::FDiv32:
    return fromF32(asF32(V[0]) / asF32(V[1]));
  case SymTag::FAdd64:
    return fromF64(asF64(V[0]) + asF64(V[1]));
  case SymTag::FSub64:
    return fromF64(asF64(V[0]) - asF64(V[1]));
  case SymTag::FMul64:
    return fromF64(asF64(V[0]) * asF64(V[1]));
  case SymTag::FDiv64:
    return fromF64(asF64(V[0]) / asF64(V[1]));
  case SymTag::Load:
  case SymTag::None:
    return std::nullopt;
  }
  return std::nullopt;
}

} // namespace

NodeId SymTable::makeOp(SymTag Tag, uint32_t A, uint32_t B,
                        std::vector<NodeId> Args) {
  // Constant folding first: the fold paths replicate sim/Emulator exactly.
  bool AllConst = true;
  for (NodeId Arg : Args)
    AllConst = AllConst && Nodes[Arg].isConst();
  if (AllConst && !Args.empty()) {
    std::vector<uint64_t> Vals;
    Vals.reserve(Args.size());
    for (NodeId Arg : Args)
      Vals.push_back(Nodes[Arg].Value);
    if (auto R = foldOp(Tag, A, B, Vals))
      return makeConst(*R);
  }

  // Canonical argument order for commutative binary operations: constant
  // last, otherwise ascending NodeId. Shared-table interning then makes
  // syntactically flipped expressions identical.
  if (isCommutative(Tag) && Args.size() == 2) {
    bool C0 = Nodes[Args[0]].isConst(), C1 = Nodes[Args[1]].isConst();
    if ((C0 && !C1) || (!C0 && !C1 && Args[0] > Args[1]))
      std::swap(Args[0], Args[1]);
  }

  // Algebraic simplifications. Every rule is a semantic identity on the
  // 64-bit domain; they are chosen to discharge exactly the rewrites MAO's
  // peephole passes perform.
  switch (Tag) {
  case SymTag::Sub:
    if (Args[0] == Args[1])
      return makeConst(0);
    if (Nodes[Args[1]].isConst())
      return makeOp(SymTag::Add, 0, 0,
                    {Args[0], makeConst(0 - Nodes[Args[1]].Value)});
    break;
  case SymTag::Add: {
    if (isConst(Args[1], 0))
      return Args[0];
    // add(add(x, c1), c2) -> add(x, c1 + c2)
    const SymNode &L = Nodes[Args[0]];
    if (Nodes[Args[1]].isConst() && L.Kind == SymKind::Op &&
        L.Tag == SymTag::Add && L.Args.size() == 2 &&
        Nodes[L.Args[1]].isConst())
      return makeOp(SymTag::Add, 0, 0,
                    {L.Args[0], makeConst(Nodes[L.Args[1]].Value +
                                          Nodes[Args[1]].Value)});
    break;
  }
  case SymTag::And: {
    if (Args[0] == Args[1])
      return Args[0];
    if (Nodes[Args[1]].isConst()) {
      uint64_t M = Nodes[Args[1]].Value;
      if (M == 0)
        return makeConst(0);
      if (M == ~0ULL)
        return Args[0];
      // and(and(x, c1), c2) -> and(x, c1 & c2)
      const SymNode &L = Nodes[Args[0]];
      if (L.Kind == SymKind::Op && L.Tag == SymTag::And &&
          L.Args.size() == 2 && Nodes[L.Args[1]].isConst())
        return makeOp(SymTag::And, 0, 0,
                      {L.Args[0], makeConst(Nodes[L.Args[1]].Value & M)});
      // Low-ones masks commute with +, -, * on the bits they keep: strip
      // redundant interior masks so `and(add(and(x, m), c), m)` and
      // `and(add(x, c), m)` intern to the same node (32-bit arithmetic
      // chains rewritten by CONSTFOLD/ADDADD).
      if (isLowOnesMask(M)) {
        NodeId Stripped = stripLowMask(Args[0], M);
        if (Stripped != Args[0])
          return makeOp(SymTag::And, 0, 0, {Stripped, Args[1]});
      }
      // All bits the mask would clear are already known zero.
      if ((~M & ~Nodes[Args[0]].KnownZero) == 0)
        return Args[0];
    }
    break;
  }
  case SymTag::Or:
    if (Args[0] == Args[1])
      return Args[0];
    if (isConst(Args[1], 0))
      return Args[0];
    if (Nodes[Args[1]].isConst() && Nodes[Args[1]].Value == ~0ULL)
      return makeConst(~0ULL);
    break;
  case SymTag::Xor:
    if (Args[0] == Args[1])
      return makeConst(0);
    if (isConst(Args[1], 0))
      return Args[0];
    break;
  case SymTag::Mul:
    if (isConst(Args[1], 1))
      return Args[0];
    if (isConst(Args[1], 0))
      return makeConst(0);
    break;
  case SymTag::Shl:
  case SymTag::Shr:
  case SymTag::Sar:
  case SymTag::Rol:
  case SymTag::Ror:
    if (isConst(Args[1], 0))
      return Args[0];
    break;
  case SymTag::SExt:
    // High bits (sign bit included) already zero: sign extension is the
    // identity.
    if (A < 64 && ((~Nodes[Args[0]].KnownZero) >> (A - 1)) == 0)
      return Args[0];
    // sext of an exactly-matching low mask: the mask is redundant.
    if (Nodes[Args[0]].Kind == SymKind::Op &&
        Nodes[Args[0]].Tag == SymTag::And &&
        Nodes[Args[0]].Args.size() == 2 &&
        Nodes[Nodes[Args[0]].Args[1]].isConst() &&
        Nodes[Nodes[Args[0]].Args[1]].Value == onesMask(A))
      return makeOp(SymTag::SExt, A, 0, {Nodes[Args[0]].Args[0]});
    break;
  case SymTag::Select:
    if (Nodes[Args[0]].isConst())
      return Nodes[Args[0]].Value ? Args[1] : Args[2];
    if (Args[1] == Args[2])
      return Args[1];
    break;
  default:
    break;
  }

  SymNode N;
  N.Kind = SymKind::Op;
  N.Tag = Tag;
  N.A = A;
  N.B = B;
  N.Args = std::move(Args);

  // Known-zero propagation (sound under-approximation).
  switch (Tag) {
  case SymTag::And:
    N.KnownZero = Nodes[N.Args[0]].KnownZero | Nodes[N.Args[1]].KnownZero;
    break;
  case SymTag::Or:
  case SymTag::Xor:
    N.KnownZero = Nodes[N.Args[0]].KnownZero & Nodes[N.Args[1]].KnownZero;
    break;
  case SymTag::Load:
    N.KnownZero = ~onesMask(A * 8);
    break;
  case SymTag::Shl:
    if (Nodes[N.Args[1]].isConst() && Nodes[N.Args[1]].Value < 64) {
      uint64_t C = Nodes[N.Args[1]].Value;
      N.KnownZero = (Nodes[N.Args[0]].KnownZero << C) | onesMask(C);
    }
    break;
  case SymTag::Shr:
    if (Nodes[N.Args[1]].isConst() && Nodes[N.Args[1]].Value < 64) {
      uint64_t C = Nodes[N.Args[1]].Value;
      N.KnownZero = (Nodes[N.Args[0]].KnownZero >> C) | ~(~0ULL >> C);
    }
    break;
  case SymTag::Select:
    N.KnownZero = Nodes[N.Args[1]].KnownZero & Nodes[N.Args[2]].KnownZero;
    break;
  case SymTag::EqZero:
  case SymTag::SignBit:
  case SymTag::Par8:
  case SymTag::FlagFn:
    N.KnownZero = ~1ULL;
    break;
  case SymTag::Sar:
  case SymTag::Rol:
  case SymTag::Ror:
  case SymTag::MulHiU:
  case SymTag::MulHiS:
  case SymTag::DivQ:
  case SymTag::DivR:
  case SymTag::IDivQ:
  case SymTag::IDivR:
  case SymTag::Bswap:
    if (A && A < 64)
      N.KnownZero = ~onesMask(A);
    break;
  case SymTag::FAdd32:
  case SymTag::FSub32:
  case SymTag::FMul32:
  case SymTag::FDiv32:
    N.KnownZero = ~0xffffffffULL;
    break;
  default:
    break;
  }

  return intern(std::move(N));
}

/// Removes And-masks that are supersets of the low-ones mask \p M from a
/// +,-,* expression tree: under an outer `and m`, only the low bits matter,
/// and add/sub/mul carries propagate strictly upward.
NodeId SymTable::stripLowMask(NodeId Id, uint64_t M) {
  const SymNode &N = Nodes[Id];
  if (N.Kind != SymKind::Op)
    return Id;
  if (N.Tag == SymTag::And && N.Args.size() == 2 &&
      Nodes[N.Args[1]].isConst() && (Nodes[N.Args[1]].Value & M) == M)
    return stripLowMask(N.Args[0], M);
  if (N.Tag == SymTag::Add || N.Tag == SymTag::Sub || N.Tag == SymTag::Mul) {
    NodeId A0 = stripLowMask(N.Args[0], M);
    NodeId A1 = stripLowMask(N.Args[1], M);
    if (A0 != N.Args[0] || A1 != N.Args[1])
      return makeOp(N.Tag, N.A, N.B, {A0, A1});
  }
  return Id;
}

//===----------------------------------------------------------------------===//
// renderNode
//===----------------------------------------------------------------------===//

namespace {

const char *tagName(SymTag Tag) {
  switch (Tag) {
  case SymTag::None: return "none";
  case SymTag::Add: return "add";
  case SymTag::Sub: return "sub";
  case SymTag::Mul: return "mul";
  case SymTag::MulHiU: return "mulhiu";
  case SymTag::MulHiS: return "mulhis";
  case SymTag::DivQ: return "divq";
  case SymTag::DivR: return "divr";
  case SymTag::IDivQ: return "idivq";
  case SymTag::IDivR: return "idivr";
  case SymTag::And: return "and";
  case SymTag::Or: return "or";
  case SymTag::Xor: return "xor";
  case SymTag::Not: return "not";
  case SymTag::Neg: return "neg";
  case SymTag::Shl: return "shl";
  case SymTag::Shr: return "shr";
  case SymTag::Sar: return "sar";
  case SymTag::Rol: return "rol";
  case SymTag::Ror: return "ror";
  case SymTag::Bswap: return "bswap";
  case SymTag::SExt: return "sext";
  case SymTag::Select: return "select";
  case SymTag::Load: return "load";
  case SymTag::EqZero: return "eqz";
  case SymTag::SignBit: return "sign";
  case SymTag::Par8: return "par8";
  case SymTag::FlagFn: return "flagfn";
  case SymTag::FAdd32: return "fadd32";
  case SymTag::FSub32: return "fsub32";
  case SymTag::FMul32: return "fmul32";
  case SymTag::FDiv32: return "fdiv32";
  case SymTag::FAdd64: return "fadd64";
  case SymTag::FSub64: return "fsub64";
  case SymTag::FMul64: return "fmul64";
  case SymTag::FDiv64: return "fdiv64";
  }
  return "?";
}

void renderRec(const SymTable &T, NodeId Id, std::ostringstream &Out,
               unsigned Depth) {
  const SymNode &N = T.node(Id);
  if (Depth > 6) {
    Out << "#" << Id;
    return;
  }
  switch (N.Kind) {
  case SymKind::Const:
    Out << "0x" << std::hex << N.Value << std::dec;
    return;
  case SymKind::InitReg:
    Out << "reg" << N.A;
    return;
  case SymKind::InitFlag:
    Out << "flag" << N.A;
    return;
  case SymKind::SymAddr:
    Out << "&" << N.Aux;
    if (N.Value)
      Out << "+" << static_cast<int64_t>(N.Value);
    return;
  case SymKind::Unknown:
    Out << "?" << N.Aux << ":" << N.A << ":" << N.B;
    return;
  case SymKind::Op:
    Out << "(" << tagName(N.Tag);
    if (N.A)
      Out << "." << N.A;
    for (NodeId Arg : N.Args) {
      Out << " ";
      renderRec(T, Arg, Out, Depth + 1);
    }
    Out << ")";
    return;
  }
}

} // namespace

std::string mao::renderNode(const SymTable &T, NodeId Id) {
  std::ostringstream Out;
  renderRec(T, Id, Out, 0);
  return Out.str();
}

//===----------------------------------------------------------------------===//
// BlockEvaluator
//===----------------------------------------------------------------------===//

BlockEvaluator::BlockEvaluator(SymTable &Table) : T(Table) {
  for (unsigned I = 0; I < NumDenseRegs; ++I)
    InitRegs[I] = T.makeInitReg(I);
  for (unsigned I = 0; I < NumStatusFlags; ++I)
    InitFlags[I] = T.makeInitFlag(I);
}

void BlockEvaluator::setInitialReg(unsigned DenseIndex, NodeId Value) {
  InitRegs[DenseIndex] = Value;
}

void BlockEvaluator::setInitialFlag(unsigned FlagPos, NodeId Value) {
  InitFlags[FlagPos] = Value;
}

namespace {

/// One in-flight block evaluation: mirrors Interp in sim/Emulator.cpp.
class Eval {
public:
  Eval(SymTable &T, const std::array<NodeId, NumDenseRegs> &Regs,
       const std::array<NodeId, NumStatusFlags> &Flags)
      : T(T), Regs(Regs), Flags(Flags) {}

  BlockSummary run(const std::vector<const Instruction *> &Insns);

private:
  // --- Node shorthands ------------------------------------------------------
  NodeId cst(uint64_t V) { return T.makeConst(V); }
  NodeId op(SymTag Tag, std::vector<NodeId> Args) {
    return T.makeOp(Tag, 0, 0, std::move(Args));
  }
  NodeId opW(SymTag Tag, uint32_t A, std::vector<NodeId> Args) {
    return T.makeOp(Tag, A, 0, std::move(Args));
  }
  NodeId truncTo(NodeId V, unsigned Bits) {
    return Bits >= 64 ? V : op(SymTag::And, {V, cst(onesMask(Bits))});
  }
  NodeId not01(NodeId V) { return op(SymTag::Xor, {V, cst(1)}); }

  // --- Register file --------------------------------------------------------
  NodeId readReg(Reg R) {
    unsigned D = denseRegIndex(R);
    NodeId Full = Regs[D];
    if (regIsXmm(R))
      return Full;
    if (regIsHighByte(R))
      return op(SymTag::And, {op(SymTag::Shr, {Full, cst(8)}), cst(0xff)});
    switch (regWidth(R)) {
    case Width::B:
      return truncTo(Full, 8);
    case Width::W:
      return truncTo(Full, 16);
    case Width::L:
      return truncTo(Full, 32);
    default:
      return Full;
    }
  }

  void writeReg(Reg R, NodeId V) {
    unsigned D = denseRegIndex(R);
    if (regIsXmm(R)) {
      Regs[D] = V;
      return;
    }
    NodeId Full = Regs[D];
    if (regIsHighByte(R)) {
      Regs[D] = op(SymTag::Or,
                   {op(SymTag::And, {Full, cst(~0xff00ULL)}),
                    op(SymTag::Shl, {truncTo(V, 8), cst(8)})});
      return;
    }
    switch (regWidth(R)) {
    case Width::B:
      Regs[D] = op(SymTag::Or,
                   {op(SymTag::And, {Full, cst(~0xffULL)}), truncTo(V, 8)});
      break;
    case Width::W:
      Regs[D] = op(SymTag::Or, {op(SymTag::And, {Full, cst(~0xffffULL)}),
                                truncTo(V, 16)});
      break;
    case Width::L:
      Regs[D] = truncTo(V, 32); // 32-bit writes zero-extend.
      break;
    default:
      Regs[D] = V;
      break;
    }
  }

  // --- Memory ---------------------------------------------------------------
  NodeId memAddr(const MemRef &M) {
    NodeId A;
    if (M.hasSym())
      A = T.makeSymAddr(M.SymDisp, M.Disp);
    else if (M.isRipRelative())
      A = T.makeSymAddr("<rip>", M.Disp);
    else
      A = cst(static_cast<uint64_t>(M.Disp));
    if (M.Base != Reg::None && M.Base != Reg::RIP)
      A = op(SymTag::Add, {A, Regs[denseRegIndex(M.Base)]});
    if (M.Index != Reg::None) {
      NodeId Idx = Regs[denseRegIndex(M.Index)];
      if (M.Scale > 1)
        Idx = op(SymTag::Mul, {Idx, cst(M.Scale)});
      A = op(SymTag::Add, {A, Idx});
    }
    return A;
  }

  NodeId loadAt(NodeId Addr, unsigned Bytes) {
    if (LastStoreValid && LastStoreAddr == Addr && LastStoreBytes == Bytes)
      return LastStoreValue; // Exact store-to-load forwarding.
    return T.makeOp(SymTag::Load, Bytes, Epoch, {Addr});
  }

  void storeAt(NodeId Addr, NodeId V, unsigned Bytes) {
    NodeId Val = Bytes < 8 ? truncTo(V, Bytes * 8) : V;
    Sum.Stores.push_back({Addr, Val, static_cast<uint8_t>(Bytes)});
    ++Epoch;
    LastStoreValid = true;
    LastStoreAddr = Addr;
    LastStoreBytes = Bytes;
    LastStoreValue = Val;
  }

  void clobberMemory() {
    ++Epoch;
    LastStoreValid = false;
  }

  // --- Operand access (mirrors Interp::readOperand/writeOperand) ------------
  std::optional<NodeId> readOperand(const Operand &Op, Width W) {
    switch (Op.Kind) {
    case OperandKind::Immediate:
      if (!Op.Sym.empty())
        return truncTo(T.makeSymAddr(Op.Sym, Op.Imm), widthBytes(W) * 8);
      return cst(static_cast<uint64_t>(Op.Imm) & widthMask(W));
    case OperandKind::Register:
      return readReg(Op.R);
    case OperandKind::Memory:
      return loadAt(memAddr(Op.Mem), bytesOf(W));
    default:
      return std::nullopt;
    }
  }

  bool writeOperand(const Operand &Op, Width W, NodeId V) {
    if (Op.isReg()) {
      writeReg(Op.R, V);
      return true;
    }
    if (Op.isMem()) {
      storeAt(memAddr(Op.Mem), V, bytesOf(W));
      return true;
    }
    return false;
  }

  // --- Flags ----------------------------------------------------------------
  static unsigned flagPos(uint8_t Bit) {
    return static_cast<unsigned>(std::countr_zero(static_cast<unsigned>(Bit)));
  }

  void setFlag(uint8_t Bit, NodeId V) {
    Flags[flagPos(Bit)] = V;
    Touched |= Bit;
  }

  NodeId flagFn(uint8_t Bit, Mnemonic Mn, unsigned Bits,
                const std::vector<NodeId> &Args) {
    return T.makeOp(SymTag::FlagFn, flagPos(Bit),
                    static_cast<uint32_t>(Mn) | (Bits << 16), Args);
  }

  /// ZF/SF/PF from a width-truncated result (Interp::setResultFlags).
  void setResultFlags(NodeId TruncR, unsigned Bits) {
    setFlag(FlagZF, op(SymTag::EqZero, {TruncR}));
    setFlag(FlagSF, opW(SymTag::SignBit, Bits, {TruncR}));
    setFlag(FlagPF, op(SymTag::Par8, {TruncR}));
  }

  /// CF/OF/AF (+result flags) of an addition/subtraction with carry-in.
  void setArithFlags(Mnemonic Mn, NodeId A, NodeId B, NodeId Carry,
                     unsigned Bits, bool WithCF) {
    std::vector<NodeId> Args = {A, B, Carry};
    if (WithCF)
      setFlag(FlagCF, flagFn(FlagCF, Mn, Bits, Args));
    setFlag(FlagOF, flagFn(FlagOF, Mn, Bits, Args));
    setFlag(FlagAF, flagFn(FlagAF, Mn, Bits, Args));
  }

  void setLogicFlags(NodeId TruncR, unsigned Bits) {
    setFlag(FlagCF, cst(0));
    setFlag(FlagOF, cst(0));
    setFlag(FlagAF, cst(0));
    setResultFlags(TruncR, Bits);
  }

  NodeId condNode(CondCode CC) {
    NodeId CF = Flags[flagPos(FlagCF)], ZF = Flags[flagPos(FlagZF)],
           SF = Flags[flagPos(FlagSF)], OF = Flags[flagPos(FlagOF)],
           PF = Flags[flagPos(FlagPF)];
    switch (CC) {
    case CondCode::O:
      return OF;
    case CondCode::NO:
      return not01(OF);
    case CondCode::B:
      return CF;
    case CondCode::AE:
      return not01(CF);
    case CondCode::E:
      return ZF;
    case CondCode::NE:
      return not01(ZF);
    case CondCode::BE:
      return op(SymTag::Or, {CF, ZF});
    case CondCode::A:
      return op(SymTag::And, {not01(CF), not01(ZF)});
    case CondCode::S:
      return SF;
    case CondCode::NS:
      return not01(SF);
    case CondCode::P:
      return PF;
    case CondCode::NP:
      return not01(PF);
    case CondCode::L:
      return op(SymTag::Xor, {SF, OF});
    case CondCode::GE:
      return not01(op(SymTag::Xor, {SF, OF}));
    case CondCode::LE:
      return op(SymTag::Or, {ZF, op(SymTag::Xor, {SF, OF})});
    case CondCode::G:
      return op(SymTag::And, {not01(ZF), not01(op(SymTag::Xor, {SF, OF}))});
    case CondCode::None:
      break;
    }
    return cst(0);
  }

  bool translate(const Instruction &Insn, std::string &Why);
  void clobberForCall(const Instruction &Insn);
  void clobberForOpaque(const Instruction &Insn);

  SymTable &T;
  BlockSummary Sum;
  std::array<NodeId, NumDenseRegs> Regs;
  std::array<NodeId, NumStatusFlags> Flags;
  uint32_t Epoch = 0;
  unsigned CallOrdinal = 0;
  unsigned OpaqueOrdinal = 0;
  bool LastStoreValid = false;
  NodeId LastStoreAddr = 0;
  NodeId LastStoreValue = 0;
  unsigned LastStoreBytes = 0;
  /// Flags written by the current instruction's precise model; table-declared
  /// definitions not in this set become opaque FlagFn clobbers.
  uint8_t Touched = 0;
  /// When set, skip the table-declared flag clobber entirely (shift with a
  /// constant zero count: the emulator leaves flags untouched).
  bool SuppressTableFlags = false;
  /// Per-instruction operand inputs, used as the FlagFn argument vector for
  /// table-declared-but-emulator-undefined flags.
  std::vector<NodeId> FlagArgs;
};

void Eval::clobberForCall(const Instruction &Insn) {
  CallEvent Ev;
  if (Insn.hasIndirectTarget()) {
    Ev.Indirect = true;
    auto V = readOperand(Insn.Ops[0], Width::Q);
    Ev.IndirectTarget = V ? *V : cst(0);
    Ev.Target = "*";
  } else {
    Ev.Target = Insn.Ops[0].Sym;
  }
  for (unsigned I = 0; I < NumDenseRegs; ++I)
    if (CallUsedMask & (1u << I))
      Ev.Args.emplace_back(static_cast<uint8_t>(I), Regs[I]);
  Sum.Calls.push_back(std::move(Ev));

  const std::string Key = "call:" + Sum.Calls.back().Target;
  for (unsigned I = 0; I < NumDenseRegs; ++I)
    if (CallClobberedMask & (1u << I))
      Regs[I] = T.makeUnknown(Key, CallOrdinal, I);
  for (unsigned F = 0; F < NumStatusFlags; ++F)
    Flags[F] = T.makeUnknown(Key, CallOrdinal, 100 + F);
  clobberMemory();
  ++CallOrdinal;
}

void Eval::clobberForOpaque(const Instruction &Insn) {
  OpaqueEvent Ev;
  Ev.Text = Insn.RawText;
  Ev.RegState.assign(Regs.begin(), Regs.end());
  Ev.FlagState.assign(Flags.begin(), Flags.end());
  Sum.Opaques.push_back(std::move(Ev));

  const std::string Key = "opq:" + Insn.RawText;
  for (unsigned I = 0; I < NumDenseRegs; ++I)
    Regs[I] = T.makeUnknown(Key, OpaqueOrdinal, I);
  for (unsigned F = 0; F < NumStatusFlags; ++F)
    Flags[F] = T.makeUnknown(Key, OpaqueOrdinal, 100 + F);
  clobberMemory();
  ++OpaqueOrdinal;
}

bool Eval::translate(const Instruction &Insn, std::string &Why) {
  const Width W = Insn.W;
  const unsigned Bits = bytesOf(W) * 8;
  switch (Insn.info().Kind) {
  case EncKind::Nop:
  case EncKind::Prefetch:
    return true;

  case EncKind::Mov: {
    auto V = readOperand(Insn.Ops[0], W);
    if (!V || !writeOperand(Insn.Ops[1], W, *V)) {
      Why = "mov operand: " + Insn.toString();
      return false;
    }
    return true;
  }

  case EncKind::Movx: {
    auto V = readOperand(Insn.Ops[0], Insn.SrcW);
    if (!V) {
      Why = "movx source: " + Insn.toString();
      return false;
    }
    unsigned SrcBits = widthBytes(Insn.SrcW) * 8;
    NodeId Value = Insn.Mn == Mnemonic::MOVZX
                       ? *V
                       : opW(SymTag::SExt, SrcBits, {*V});
    return writeOperand(Insn.Ops[1], W, truncTo(Value, Bits));
  }

  case EncKind::Lea:
    return writeOperand(Insn.Ops[1], W,
                        truncTo(memAddr(Insn.Ops[0].Mem), Bits));

  case EncKind::AluRMI: {
    auto A = readOperand(Insn.Ops[1], W); // dest (first ALU input)
    auto B = readOperand(Insn.Ops[0], W); // src
    if (!A || !B) {
      Why = "ALU operand: " + Insn.toString();
      return false;
    }
    FlagArgs = {*A, *B};
    NodeId R = 0;
    switch (Insn.Mn) {
    case Mnemonic::ADD:
      setArithFlags(Mnemonic::ADD, *A, *B, cst(0), Bits, true);
      R = op(SymTag::Add, {*A, *B});
      break;
    case Mnemonic::ADC: {
      NodeId C = Flags[flagPos(FlagCF)];
      setArithFlags(Mnemonic::ADC, *A, *B, C, Bits, true);
      R = op(SymTag::Add, {op(SymTag::Add, {*A, *B}), C});
      break;
    }
    case Mnemonic::SUB:
    case Mnemonic::CMP:
      setArithFlags(Mnemonic::SUB, *A, *B, cst(0), Bits, true);
      R = op(SymTag::Sub, {*A, *B});
      break;
    case Mnemonic::SBB: {
      NodeId C = Flags[flagPos(FlagCF)];
      setArithFlags(Mnemonic::SBB, *A, *B, C, Bits, true);
      R = op(SymTag::Sub, {op(SymTag::Sub, {*A, *B}), C});
      break;
    }
    case Mnemonic::AND:
      R = op(SymTag::And, {*A, *B});
      setLogicFlags(truncTo(R, Bits), Bits);
      break;
    case Mnemonic::OR:
      R = op(SymTag::Or, {*A, *B});
      setLogicFlags(truncTo(R, Bits), Bits);
      break;
    case Mnemonic::XOR:
      R = op(SymTag::Xor, {*A, *B});
      setLogicFlags(truncTo(R, Bits), Bits);
      break;
    default:
      Why = "unexpected ALU mnemonic";
      return false;
    }
    if (Insn.Mn != Mnemonic::AND && Insn.Mn != Mnemonic::OR &&
        Insn.Mn != Mnemonic::XOR)
      setResultFlags(truncTo(R, Bits), Bits);
    if (Insn.Mn != Mnemonic::CMP)
      writeOperand(Insn.Ops[1], W, truncTo(R, Bits));
    return true;
  }

  case EncKind::Test: {
    auto A = readOperand(Insn.Ops[1], W);
    auto B = readOperand(Insn.Ops[0], W);
    if (!A || !B) {
      Why = "test operand";
      return false;
    }
    FlagArgs = {*A, *B};
    setLogicFlags(truncTo(op(SymTag::And, {*A, *B}), Bits), Bits);
    return true;
  }

  case EncKind::UnaryRM: {
    auto V = readOperand(Insn.Ops[0], W);
    if (!V) {
      Why = "unary operand";
      return false;
    }
    FlagArgs = {*V};
    switch (Insn.Mn) {
    case Mnemonic::NOT:
      return writeOperand(Insn.Ops[0], W, truncTo(op(SymTag::Not, {*V}), Bits));
    case Mnemonic::NEG:
      // Emulator: flagsSub(0, V) with an explicit CF = V != 0 — which is
      // exactly flagsSub's CF, so the generic SUB flag function is precise
      // (and makes neg equivalent to a sub-from-zero rewrite).
      setArithFlags(Mnemonic::SUB, cst(0), *V, cst(0), Bits, true);
      setResultFlags(truncTo(op(SymTag::Neg, {*V}), Bits), Bits);
      return writeOperand(Insn.Ops[0], W, truncTo(op(SymTag::Neg, {*V}), Bits));
    case Mnemonic::INC:
      // inc == add $1 except CF is preserved; sharing the ADD flag
      // functions makes inc/add rewrites provable.
      setArithFlags(Mnemonic::ADD, *V, cst(1), cst(0), Bits, false);
      setResultFlags(truncTo(op(SymTag::Add, {*V, cst(1)}), Bits), Bits);
      return writeOperand(Insn.Ops[0], W,
                          truncTo(op(SymTag::Add, {*V, cst(1)}), Bits));
    case Mnemonic::DEC:
      setArithFlags(Mnemonic::SUB, *V, cst(1), cst(0), Bits, false);
      setResultFlags(truncTo(op(SymTag::Sub, {*V, cst(1)}), Bits), Bits);
      return writeOperand(Insn.Ops[0], W,
                          truncTo(op(SymTag::Sub, {*V, cst(1)}), Bits));
    case Mnemonic::MUL: {
      NodeId A = readReg(gprWithWidth(Reg::RAX, W));
      FlagArgs = {A, *V};
      NodeId Lo = truncTo(op(SymTag::Mul, {A, *V}), Bits);
      NodeId Hi = opW(SymTag::MulHiU, Bits, {A, *V});
      writeReg(gprWithWidth(Reg::RAX, W), Lo);
      writeReg(gprWithWidth(Reg::RDX, W), Hi);
      NodeId HiNonZero = not01(op(SymTag::EqZero, {Hi}));
      setFlag(FlagCF, HiNonZero);
      setFlag(FlagOF, HiNonZero);
      return true;
    }
    case Mnemonic::DIV: {
      NodeId Hi = readReg(gprWithWidth(Reg::RDX, W));
      NodeId Lo = readReg(gprWithWidth(Reg::RAX, W));
      FlagArgs = {Hi, Lo, *V};
      writeReg(gprWithWidth(Reg::RAX, W), opW(SymTag::DivQ, Bits, {Hi, Lo, *V}));
      writeReg(gprWithWidth(Reg::RDX, W), opW(SymTag::DivR, Bits, {Hi, Lo, *V}));
      return true;
    }
    case Mnemonic::IDIV: {
      NodeId Hi = readReg(gprWithWidth(Reg::RDX, W));
      NodeId Lo = readReg(gprWithWidth(Reg::RAX, W));
      FlagArgs = {Hi, Lo, *V};
      writeReg(gprWithWidth(Reg::RAX, W),
               opW(SymTag::IDivQ, Bits, {Hi, Lo, *V}));
      writeReg(gprWithWidth(Reg::RDX, W),
               opW(SymTag::IDivR, Bits, {Hi, Lo, *V}));
      return true;
    }
    default:
      Why = "unexpected unary mnemonic";
      return false;
    }
  }

  case EncKind::ImulMulti: {
    if (Insn.Ops.size() == 1) {
      auto V = readOperand(Insn.Ops[0], W);
      if (!V) {
        Why = "imul operand";
        return false;
      }
      NodeId A = readReg(gprWithWidth(Reg::RAX, W));
      FlagArgs = {A, *V};
      writeReg(gprWithWidth(Reg::RAX, W), truncTo(op(SymTag::Mul, {A, *V}), Bits));
      writeReg(gprWithWidth(Reg::RDX, W), opW(SymTag::MulHiS, Bits, {A, *V}));
      setFlag(FlagCF, flagFn(FlagCF, Mnemonic::IMUL, Bits, {A, *V}));
      setFlag(FlagOF, flagFn(FlagOF, Mnemonic::IMUL, Bits, {A, *V}));
      return true;
    }
    std::optional<NodeId> A, B;
    const Operand *DstOp;
    if (Insn.Ops.size() == 2) {
      A = readOperand(Insn.Ops[0], W);
      B = readOperand(Insn.Ops[1], W);
      DstOp = &Insn.Ops[1];
    } else {
      A = readOperand(Insn.Ops[0], W); // immediate
      B = readOperand(Insn.Ops[1], W);
      DstOp = &Insn.Ops[2];
    }
    if (!A || !B) {
      Why = "imul operand";
      return false;
    }
    FlagArgs = {*A, *B};
    NodeId R = truncTo(op(SymTag::Mul, {*A, *B}), Bits);
    setFlag(FlagCF, flagFn(FlagCF, Mnemonic::IMUL, Bits, {*A, *B}));
    setFlag(FlagOF, flagFn(FlagOF, Mnemonic::IMUL, Bits, {*A, *B}));
    setResultFlags(R, Bits);
    return writeOperand(*DstOp, W, R);
  }

  case EncKind::ShiftRot: {
    const Operand &Target = Insn.Ops.back();
    auto V = readOperand(Target, W);
    if (!V) {
      Why = "shift operand";
      return false;
    }
    NodeId Count;
    bool CountIsConstZero = false;
    const uint64_t CountMask = (W == Width::Q) ? 63 : 31;
    if (Insn.Ops.size() == 2) {
      if (Insn.Ops[0].isReg()) {
        Count = op(SymTag::And, {readReg(Reg::CL), cst(CountMask)});
      } else {
        uint64_t C = static_cast<uint64_t>(Insn.Ops[0].Imm) & CountMask;
        Count = cst(C);
        CountIsConstZero = C == 0;
      }
    } else {
      Count = cst(1);
    }
    if (CountIsConstZero) {
      SuppressTableFlags = true; // Emulator: no write, flags unchanged.
      return true;
    }
    FlagArgs = {*V, Count};
    SymTag ValTag;
    switch (Insn.Mn) {
    case Mnemonic::SHL:
      ValTag = SymTag::Shl;
      break;
    case Mnemonic::SHR:
      ValTag = SymTag::Shr;
      break;
    case Mnemonic::SAR:
      ValTag = SymTag::Sar;
      break;
    case Mnemonic::ROL:
      ValTag = SymTag::Rol;
      break;
    case Mnemonic::ROR:
      ValTag = SymTag::Ror;
      break;
    default:
      Why = "unexpected shift mnemonic";
      return false;
    }
    NodeId R = truncTo(opW(ValTag, Bits, {*V, Count}), Bits);
    // Precisely modelled flags; the rest (AF always, and all-but-CF for
    // rotates) fall through to the table-declared opaque clobber.
    if (Insn.Mn == Mnemonic::SHL || Insn.Mn == Mnemonic::SHR ||
        Insn.Mn == Mnemonic::SAR) {
      setFlag(FlagCF, flagFn(FlagCF, Insn.Mn, Bits, {*V, Count}));
      setFlag(FlagOF, flagFn(FlagOF, Insn.Mn, Bits, {*V, Count}));
      setResultFlags(R, Bits);
    } else {
      setFlag(FlagCF, flagFn(FlagCF, Insn.Mn, Bits, {*V, Count}));
    }
    return writeOperand(Target, W, R);
  }

  case EncKind::Push: {
    auto V = readOperand(Insn.Ops[0], Width::Q);
    if (!V) {
      Why = "push operand";
      return false;
    }
    NodeId Rsp = op(SymTag::Add, {Regs[denseRegIndex(Reg::RSP)],
                                  cst(static_cast<uint64_t>(-8))});
    Regs[denseRegIndex(Reg::RSP)] = Rsp;
    storeAt(Rsp, *V, 8);
    return true;
  }
  case EncKind::Pop: {
    NodeId Rsp = Regs[denseRegIndex(Reg::RSP)];
    NodeId V = loadAt(Rsp, 8);
    Regs[denseRegIndex(Reg::RSP)] = op(SymTag::Add, {Rsp, cst(8)});
    return writeOperand(Insn.Ops[0], Width::Q, V);
  }

  case EncKind::Xchg: {
    auto A = readOperand(Insn.Ops[0], W);
    auto B = readOperand(Insn.Ops[1], W);
    if (!A || !B) {
      Why = "xchg operand";
      return false;
    }
    writeOperand(Insn.Ops[0], W, *B);
    writeOperand(Insn.Ops[1], W, *A);
    return true;
  }

  case EncKind::Bswap: {
    NodeId V = readReg(Insn.Ops[0].R);
    writeReg(Insn.Ops[0].R, opW(SymTag::Bswap, Bits, {V}));
    return true;
  }

  case EncKind::Setcc:
    return writeOperand(Insn.Ops[0], Width::B, condNode(Insn.CC));

  case EncKind::Cmovcc: {
    auto Src = readOperand(Insn.Ops[0], W);
    auto Dst = readOperand(Insn.Ops[1], W);
    if (!Src || !Dst) {
      Why = "cmov operand";
      return false;
    }
    // Uniform model: dst = cond ? src : dst, rewritten at the destination's
    // width — this matches the emulator including the not-taken 32-bit
    // zero-extension quirk.
    return writeOperand(Insn.Ops[1], W,
                        op(SymTag::Select, {condNode(Insn.CC), *Src, *Dst}));
  }

  case EncKind::Fixed:
    switch (Insn.Mn) {
    case Mnemonic::CLTQ:
      Regs[denseRegIndex(Reg::RAX)] =
          opW(SymTag::SExt, 32, {Regs[denseRegIndex(Reg::RAX)]});
      return true;
    case Mnemonic::CWTL:
      writeReg(Reg::EAX, truncTo(opW(SymTag::SExt, 16, {readReg(Reg::AX)}), 32));
      return true;
    case Mnemonic::CBTW:
      writeReg(Reg::AX, truncTo(opW(SymTag::SExt, 8, {readReg(Reg::AL)}), 16));
      return true;
    case Mnemonic::CLTD:
      writeReg(Reg::EDX,
               op(SymTag::Select,
                  {opW(SymTag::SignBit, 32, {readReg(Reg::EAX)}),
                   cst(0xffffffffULL), cst(0)}));
      return true;
    case Mnemonic::CQTO:
      Regs[denseRegIndex(Reg::RDX)] =
          op(SymTag::Select,
             {opW(SymTag::SignBit, 64, {Regs[denseRegIndex(Reg::RAX)]}),
              cst(~0ULL), cst(0)});
      return true;
    case Mnemonic::LEAVE: {
      NodeId Rbp = Regs[denseRegIndex(Reg::RBP)];
      Regs[denseRegIndex(Reg::RBP)] = loadAt(Rbp, 8);
      Regs[denseRegIndex(Reg::RSP)] = op(SymTag::Add, {Rbp, cst(8)});
      return true;
    }
    case Mnemonic::CPUID:
      Regs[denseRegIndex(Reg::RAX)] = cst(0);
      Regs[denseRegIndex(Reg::RBX)] = cst(0);
      Regs[denseRegIndex(Reg::RCX)] = cst(0);
      Regs[denseRegIndex(Reg::RDX)] = cst(0);
      return true;
    case Mnemonic::RDTSC:
      writeReg(Reg::EAX, cst(0));
      writeReg(Reg::EDX, cst(0));
      return true;
    default:
      Why = "unmodelled fixed instruction: " + Insn.toString();
      return false;
    }

  case EncKind::SseMov: {
    const Operand &Src = Insn.Ops[0];
    const Operand &Dst = Insn.Ops[1];
    unsigned Bytes = Insn.Mn == Mnemonic::MOVSS ? 4 : 8;
    NodeId V;
    if (Src.isReg() && regIsXmm(Src.R)) {
      V = Regs[denseRegIndex(Src.R)];
    } else if (Src.isMem()) {
      V = loadAt(memAddr(Src.Mem), Bytes);
    } else {
      Why = "SSE move source";
      return false;
    }
    if (Dst.isReg() && regIsXmm(Dst.R)) {
      // The emulator copies all 64 modelled bits even for movss; mirror it.
      Regs[denseRegIndex(Dst.R)] = V;
      return true;
    }
    if (Dst.isMem()) {
      storeAt(memAddr(Dst.Mem), V, Bytes);
      return true;
    }
    Why = "SSE move destination";
    return false;
  }

  case EncKind::SseCvtMov: {
    const Operand &Src = Insn.Ops[0];
    const Operand &Dst = Insn.Ops[1];
    const bool IsMovd = Insn.Mn == Mnemonic::MOVD;
    if (Dst.isReg() && regIsXmm(Dst.R)) {
      std::optional<NodeId> V;
      if (Src.isReg())
        V = readReg(Src.R);
      else
        V = readOperand(Src, Width::Q);
      if (!V) {
        Why = "movq/movd source";
        return false;
      }
      Regs[denseRegIndex(Dst.R)] = IsMovd ? truncTo(*V, 32) : *V;
      return true;
    }
    if (Src.isReg() && regIsXmm(Src.R)) {
      NodeId V = Regs[denseRegIndex(Src.R)];
      if (IsMovd)
        V = truncTo(V, 32);
      if (Dst.isReg()) {
        writeReg(Dst.R, V);
        return true;
      }
      if (Dst.isMem()) {
        storeAt(memAddr(Dst.Mem), V, IsMovd ? 4 : 8);
        return true;
      }
    }
    Why = "unsupported movd/movq form";
    return false;
  }

  case EncKind::SseAlu: {
    const Operand &Src = Insn.Ops[0];
    const Operand &Dst = Insn.Ops[1];
    if (!Dst.isReg() || !regIsXmm(Dst.R)) {
      Why = "SSE ALU needs xmm destination";
      return false;
    }
    NodeId SrcBits;
    if (Src.isReg() && regIsXmm(Src.R)) {
      SrcBits = Regs[denseRegIndex(Src.R)];
    } else if (Src.isMem()) {
      SrcBits = loadAt(memAddr(Src.Mem), 8);
    } else {
      Why = "SSE ALU source";
      return false;
    }
    NodeId &DstBits = Regs[denseRegIndex(Dst.R)];
    FlagArgs = {DstBits, SrcBits};
    auto Scalar32 = [&](SymTag Tag) {
      DstBits = op(SymTag::Or, {op(SymTag::And, {DstBits, cst(~0xffffffffULL)}),
                                op(Tag, {DstBits, SrcBits})});
    };
    switch (Insn.Mn) {
    case Mnemonic::ADDSS:
      Scalar32(SymTag::FAdd32);
      return true;
    case Mnemonic::SUBSS:
      Scalar32(SymTag::FSub32);
      return true;
    case Mnemonic::MULSS:
      Scalar32(SymTag::FMul32);
      return true;
    case Mnemonic::DIVSS:
      Scalar32(SymTag::FDiv32);
      return true;
    case Mnemonic::ADDSD:
      DstBits = op(SymTag::FAdd64, {DstBits, SrcBits});
      return true;
    case Mnemonic::SUBSD:
      DstBits = op(SymTag::FSub64, {DstBits, SrcBits});
      return true;
    case Mnemonic::MULSD:
      DstBits = op(SymTag::FMul64, {DstBits, SrcBits});
      return true;
    case Mnemonic::DIVSD:
      DstBits = op(SymTag::FDiv64, {DstBits, SrcBits});
      return true;
    case Mnemonic::XORPS:
    case Mnemonic::PXOR:
      DstBits = op(SymTag::Xor, {DstBits, SrcBits});
      return true;
    case Mnemonic::UCOMISS:
    case Mnemonic::UCOMISD:
      setFlag(FlagOF, cst(0));
      setFlag(FlagAF, cst(0));
      setFlag(FlagSF, cst(0));
      setFlag(FlagZF, flagFn(FlagZF, Insn.Mn, 0, {FlagArgs[0], FlagArgs[1]}));
      setFlag(FlagCF, flagFn(FlagCF, Insn.Mn, 0, {FlagArgs[0], FlagArgs[1]}));
      setFlag(FlagPF, flagFn(FlagPF, Insn.Mn, 0, {FlagArgs[0], FlagArgs[1]}));
      return true;
    default:
      Why = "unmodelled SSE ALU op: " + Insn.toString();
      return false;
    }
  }

  case EncKind::Jmp:
  case EncKind::Jcc:
  case EncKind::Call:
  case EncKind::Ret:
  case EncKind::Opaque:
    assert(false && "control flow handled by the run loop");
    return false;
  }
  Why = "unmodelled instruction: " + Insn.toString();
  return false;
}

BlockSummary Eval::run(const std::vector<const Instruction *> &Insns) {
  for (const Instruction *InsnP : Insns) {
    const Instruction &Insn = *InsnP;
    if (Insn.info().Kind == EncKind::Nop ||
        Insn.info().Kind == EncKind::Prefetch)
      continue;

    if (Insn.isCall()) {
      clobberForCall(Insn);
      continue;
    }
    if (Insn.isReturn()) {
      Sum.Term.Kind = TermKind::Return;
      for (unsigned I = 0; I < NumDenseRegs; ++I)
        if (RetUsedMask & (1u << I))
          Sum.Term.RetValues.emplace_back(static_cast<uint8_t>(I), Regs[I]);
      break;
    }
    if (Insn.isUncondJump()) {
      if (Insn.hasIndirectTarget()) {
        Sum.Term.Kind = TermKind::IndirectJump;
        auto V = readOperand(Insn.Ops[0], Width::Q);
        Sum.Term.Target = V ? *V : T.makeConst(0);
      } else {
        Sum.Term.Kind = TermKind::Jump;
        Sum.Term.TargetLabel = Insn.Ops[0].Sym;
      }
      break;
    }
    if (Insn.isCondJump()) {
      Sum.Term.Kind = TermKind::CondJump;
      Sum.Term.Cond = condNode(Insn.CC);
      Sum.Term.TargetLabel = Insn.Ops[0].Sym;
      break;
    }
    if (Insn.isOpaque()) {
      clobberForOpaque(Insn);
      continue;
    }

    Touched = 0;
    SuppressTableFlags = false;
    FlagArgs.clear();
    std::string Why;
    if (!translate(Insn, Why)) {
      Sum.Supported = false;
      Sum.UnsupportedWhy = Why;
      break;
    }
    // Table-declared flag definitions the precise model did not cover become
    // opaque deterministic functions of the instruction's inputs. This
    // mirrors what Dataflow liveness assumes (the table is the contract),
    // so passes exploiting a table-declared clobber still validate.
    if (!SuppressTableFlags) {
      uint8_t Remaining =
          Insn.effects().FlagsDef & FlagsAllStatus & ~Touched;
      for (unsigned F = 0; F < NumStatusFlags; ++F)
        if (Remaining & (1u << F))
          Flags[F] = T.makeOp(SymTag::FlagFn, F,
                              static_cast<uint32_t>(Insn.Mn) |
                                  (bytesOf(Insn.W) * 8 << 16),
                              FlagArgs);
    }
  }

  Sum.Regs = Regs;
  Sum.Flags = Flags;
  return Sum;
}

} // namespace

BlockSummary
BlockEvaluator::evaluate(const std::vector<const Instruction *> &Insns) {
  Eval E(T, InitRegs, InitFlags);
  return E.run(Insns);
}
