//===- check/SymbolicEval.h - Symbolic per-block evaluator ------*- C++ -*-===//
///
/// \file
/// A symbolic evaluator over the modelled x86-64 subset, the core of the
/// MaoCheck translation validator (Minotaur-style, see PAPERS.md): every
/// register, flag and stored value of one basic block is expressed as a
/// node in a hash-consed expression DAG over the block's inputs. Two blocks
/// are semantically equivalent when their observable outputs — live-out
/// registers and flags, the ordered store/call/opaque event lists, and the
/// terminator — map to the *same* node ids in a shared SymTable.
///
/// The node semantics mirror sim/Emulator instruction by instruction (the
/// constant-folding paths are the emulator's scalar code), with one
/// deliberate deviation: flags the ISA leaves undefined (and the opcode
/// table models as clobbered, e.g. ZF after mul, all flags after a shift)
/// are modelled as opaque deterministic functions of the operands rather
/// than as pass-through of the previous value. That matches the liveness
/// assumptions every pass is written against, so a pass exploiting
/// "table says clobbered" is not flagged as a miscompile.
///
/// Simplification rules are chosen to prove exactly the rewrites MAO's
/// peephole passes perform: known-zero-bit tracking discharges
/// zero-extension elimination, `and(x,x) -> x` discharges redundant-test
/// removal, constant reassociation discharges add/add collapsing and
/// constant folding, and epoch-tagged load nodes discharge redundant-load
/// elimination.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_CHECK_SYMBOLICEVAL_H
#define MAO_CHECK_SYMBOLICEVAL_H

#include "x86/Instruction.h"

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mao {

using NodeId = uint32_t;

/// Node kinds. Op carries a SymTag; the others are leaves.
enum class SymKind : uint8_t {
  Const,    ///< 64-bit constant (Value).
  InitReg,  ///< Register A (dense index, 0-15 GPR supers, 16-31 XMM) at
            ///< region entry.
  InitFlag, ///< Flag bit A (FlagBit position) at region entry.
  SymAddr,  ///< Address of symbol Aux (+ addend Value).
  Unknown,  ///< Opaque fresh value keyed by (Aux, A, B): call results,
            ///< post-opaque state.
  Op,       ///< Operation Tag over Args (see SymTag).
};

/// Operation tags for SymKind::Op nodes. Value operations work on the full
/// 64-bit domain (narrower widths are expressed by masking the inputs and
/// the result); flag extractors return 0/1.
enum class SymTag : uint16_t {
  None,
  // Integer value operations.
  Add,    // a + b (commutative; constant canonicalized last)
  Sub,    // a - b (sub-by-constant is normalized to Add)
  Mul,    // low 64 bits of a * b
  MulHiU, // A = width bits: high half of unsigned a * b at that width
  MulHiS, // A = width bits: high half of signed a * b
  DivQ,   // A = width bits: unsigned quotient of (hi:lo) / d, Args={hi,lo,d}
  DivR,   // unsigned remainder, same shape
  IDivQ,  // signed quotient
  IDivR,  // signed remainder
  And,    // a & b (commutative)
  Or,     // a | b (commutative)
  Xor,    // a ^ b (commutative)
  Not,    // ~a
  Neg,    // 0 - a
  Shl,    // a << b (b already masked to the width's count range)
  Shr,    // a >> b (logical; a pre-masked to width)
  Sar,    // A = width bits: arithmetic shift right
  Rol,    // A = width bits: rotate left
  Ror,    // A = width bits: rotate right
  Bswap,  // A = width bits: byte swap
  SExt,   // A = source bits: sign-extend low A bits of a to 64
  Select, // Args = {c, t, f}: c (0/1) ? t : f
  Load,   // A = bytes, B = memory epoch, Args = {addr}; zero-extended
  // Flag extractors (result is 0 or 1).
  EqZero,  // a == 0 (ZF of a width-masked result)
  SignBit, // A = width bits: bit A-1 of a (SF)
  Par8,    // even parity of a's low byte (PF)
  // Opaque-but-deterministic flag functions: flag A (FlagBit position) of
  // operation B = (mnemonic | widthBits << 16) applied to Args. Folds to a
  // constant when all Args are constants and the emulator defines the
  // result; otherwise both sides of a comparison build the same node for
  // the same inputs.
  FlagFn,
  // Scalar SSE value operations (bit-accurate float/double reinterpret).
  FAdd32, FSub32, FMul32, FDiv32,
  FAdd64, FSub64, FMul64, FDiv64,
};

/// One DAG node. Interned: equal structure implies equal NodeId.
struct SymNode {
  SymKind Kind = SymKind::Const;
  SymTag Tag = SymTag::None;
  uint32_t A = 0;
  uint32_t B = 0;
  uint64_t Value = 0; ///< Constant value / SymAddr addend.
  std::string Aux;    ///< Symbol name / unknown key / call target.
  std::vector<NodeId> Args;
  /// Bits known to be zero in every concrete evaluation; drives the
  /// zero-extension simplifications.
  uint64_t KnownZero = 0;

  bool isConst() const { return Kind == SymKind::Const; }
};

/// Hash-consing table shared by the evaluations that are to be compared.
class SymTable {
public:
  NodeId makeConst(uint64_t Value);
  NodeId makeInitReg(unsigned DenseIndex);
  NodeId makeInitFlag(unsigned FlagPos);
  NodeId makeSymAddr(const std::string &Sym, int64_t Addend);
  NodeId makeUnknown(const std::string &Aux, uint32_t A, uint32_t B);
  /// Builds (and simplifies) an operation node.
  NodeId makeOp(SymTag Tag, uint32_t A, uint32_t B,
                std::vector<NodeId> Args);

  const SymNode &node(NodeId Id) const { return Nodes[Id]; }
  size_t size() const { return Nodes.size(); }

  /// True when \p Id is the constant \p Value.
  bool isConst(NodeId Id, uint64_t Value) const {
    return Nodes[Id].isConst() && Nodes[Id].Value == Value;
  }

private:
  NodeId intern(SymNode Node);
  /// Strips And-masks subsumed by the low-ones mask \p M from a +,-,*
  /// expression tree (carries only propagate upward).
  NodeId stripLowMask(NodeId Id, uint64_t M);

  std::vector<SymNode> Nodes;
  std::map<std::string, NodeId> Interned;
};

/// One buffered store: the address/value expressions and the size.
struct StoreEvent {
  NodeId Addr = 0;
  NodeId Value = 0;
  uint8_t Bytes = 0;
  bool operator==(const StoreEvent &O) const = default;
};

/// One call site: target plus the ABI-visible argument state.
struct CallEvent {
  std::string Target;
  bool Indirect = false;
  NodeId IndirectTarget = 0;
  /// (dense register index, value) for every register in CallUsedMask.
  std::vector<std::pair<uint8_t, NodeId>> Args;
  bool operator==(const CallEvent &O) const = default;
};

/// One opaque instruction: raw text plus the full machine state it sees.
struct OpaqueEvent {
  std::string Text;
  std::vector<NodeId> RegState;  ///< All 32 dense registers, in order.
  std::vector<NodeId> FlagState; ///< The 6 status flags, in order.
  bool operator==(const OpaqueEvent &O) const = default;
};

/// How the block ends.
enum class TermKind : uint8_t {
  Fallthrough,
  Jump,
  CondJump,
  IndirectJump,
  Return,
};

struct Terminator {
  TermKind Kind = TermKind::Fallthrough;
  std::string TargetLabel; ///< Jump / CondJump direct target.
  NodeId Cond = 0;         ///< CondJump: 0/1 condition expression.
  NodeId Target = 0;       ///< IndirectJump: target address expression.
  /// Return: (dense register index, value) for the ABI return registers.
  std::vector<std::pair<uint8_t, NodeId>> RetValues;
};

/// Everything observable about one evaluated block.
struct BlockSummary {
  bool Supported = true;
  std::string UnsupportedWhy;
  std::array<NodeId, 32> Regs{};  ///< Final value per dense register.
  std::array<NodeId, 6> Flags{};  ///< Final CF,PF,AF,ZF,SF,OF (bit order).
  std::vector<StoreEvent> Stores;
  std::vector<CallEvent> Calls;
  std::vector<OpaqueEvent> Opaques;
  Terminator Term;
};

/// Number of dense register slots (16 GPR supers + 16 XMM).
constexpr unsigned NumDenseRegs = 32;
/// Number of tracked status flags (CF,PF,AF,ZF,SF,OF — FlagBit positions).
constexpr unsigned NumStatusFlags = 6;

/// Evaluates one straight-line instruction sequence into a BlockSummary.
/// Reusable: every evaluate() call starts from the configured initial
/// state. Two evaluators sharing one SymTable produce comparable node ids.
class BlockEvaluator {
public:
  explicit BlockEvaluator(SymTable &Table);

  /// Overrides the initial value of a register / flag (defaults are
  /// InitReg / InitFlag leaves). Used by the differential tests to seed
  /// concrete constants.
  void setInitialReg(unsigned DenseIndex, NodeId Value);
  void setInitialFlag(unsigned FlagPos, NodeId Value);

  BlockSummary evaluate(const std::vector<const Instruction *> &Insns);

private:
  SymTable &T;
  std::array<NodeId, NumDenseRegs> InitRegs{};
  std::array<NodeId, NumStatusFlags> InitFlags{};
};

/// Dense register index for any register view; ~0u for RIP/None.
unsigned denseRegIndex(Reg R);

/// Renders a node as a compact s-expression (diagnostics and tests).
std::string renderNode(const SymTable &T, NodeId Id);

} // namespace mao

#endif // MAO_CHECK_SYMBOLICEVAL_H
