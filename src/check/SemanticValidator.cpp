//===- check/SemanticValidator.cpp - Per-pass translation validation ------===//

#include "check/SemanticValidator.h"

#include "analysis/CFG.h"
#include "analysis/Dataflow.h"
#include "check/SymbolicEval.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

using namespace mao;

namespace {

const char *denseRegName(unsigned I) {
  static const char *Names[NumDenseRegs] = {
      "rax",  "rcx",  "rdx",  "rbx",  "rsp",   "rbp",   "rsi",   "rdi",
      "r8",   "r9",   "r10",  "r11",  "r12",   "r13",   "r14",   "r15",
      "xmm0", "xmm1", "xmm2", "xmm3", "xmm4",  "xmm5",  "xmm6",  "xmm7",
      "xmm8", "xmm9", "xmm10", "xmm11", "xmm12", "xmm13", "xmm14", "xmm15"};
  return I < NumDenseRegs ? Names[I] : "?";
}

const char *flagName(unsigned Pos) {
  static const char *Names[NumStatusFlags] = {"CF", "PF", "AF", "ZF", "SF",
                                              "OF"};
  return Pos < NumStatusFlags ? Names[Pos] : "?";
}

/// Everything the validator derives once per function side.
struct FnSide {
  CFG Graph;
  LivenessResult Live;
  std::vector<std::string> Keys;     ///< Stable per-block matching key.
  std::vector<bool> Reachable;
};

/// Labels defined at block starts of \p G.
std::set<std::string> blockLabels(const CFG &G) {
  std::set<std::string> Out;
  for (const BasicBlock &B : G.blocks())
    for (const std::string &L : B.Labels)
      Out.insert(L);
  return Out;
}

/// Assigns each block a key (anchor label, ordinal since anchor). Anchors
/// are labels present on BOTH sides, so labels a pass invents (alignment
/// targets, relaxation islands) do not desynchronize the matching; blocks
/// between anchors match by position.
std::vector<std::string> blockKeys(const CFG &G,
                                   const std::set<std::string> &Common) {
  std::vector<std::string> Keys;
  std::string Anchor; // Entry anchor is "".
  unsigned Ordinal = 0;
  for (const BasicBlock &B : G.blocks()) {
    for (const std::string &L : B.Labels)
      if (Common.count(L)) {
        Anchor = L;
        Ordinal = 0;
        break;
      }
    Keys.push_back(Anchor + "#" + std::to_string(Ordinal));
    ++Ordinal;
  }
  return Keys;
}

std::vector<bool> reachableBlocks(const CFG &G, bool AllReachable) {
  std::vector<bool> Seen(G.blocks().size(), AllReachable);
  if (AllReachable || G.blocks().empty())
    return Seen;
  std::vector<unsigned> Work = {0};
  Seen[0] = true;
  while (!Work.empty()) {
    unsigned B = Work.back();
    Work.pop_back();
    for (unsigned S : G.blocks()[B].Succs)
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  }
  return Seen;
}

std::string blockDisplayName(const BasicBlock &B) {
  if (!B.Labels.empty())
    return B.Labels.front();
  if (B.Index == 0)
    return "<entry>";
  return "<block " + std::to_string(B.Index) + ">";
}

std::vector<const Instruction *> blockInsns(const BasicBlock &B) {
  std::vector<const Instruction *> Out;
  Out.reserve(B.Insns.size());
  for (EntryIter It : B.Insns)
    if (It->isInstruction())
      Out.push_back(&It->instruction());
  return Out;
}

/// Non-NOP instruction text of a block, for the textual fallback on
/// unmodelled content.
std::vector<std::string> blockText(const BasicBlock &B) {
  std::vector<std::string> Out;
  for (const Instruction *I : blockInsns(B))
    if (!I->isNop())
      Out.push_back(I->toString());
  return Out;
}

/// Returns true when a block contains nothing observable (labels and NOPs
/// only, falling through) — such blocks may appear or vanish freely.
bool blockIsInert(const BasicBlock &B) {
  for (const Instruction *I : blockInsns(B))
    if (!I->isNop())
      return false;
  return true;
}

class Validator {
public:
  explicit Validator(MaoUnit &Before, MaoUnit &After)
      : Before(Before), After(After) {}

  ValidationReport run();

private:
  void checkFunction(MaoFunction &FnB, MaoFunction &FnA);
  void compareBlocks(const FnSide &SideB, const FnSide &SideA, unsigned BiB,
                     unsigned BiA, const std::string &FnName);
  void diverge(const std::string &Fn, const BasicBlock &B, std::string Detail);

  /// Maps a direct branch target to a comparable name: the matching key when
  /// the label is inside the function, else the raw label (external target).
  static std::string targetKey(const FnSide &S, const std::string &Label) {
    unsigned B = S.Graph.blockOfLabel(Label);
    return B == ~0u ? "@" + Label : S.Keys[B];
  }

  MaoUnit &Before;
  MaoUnit &After;
  ValidationReport Report;
  static constexpr unsigned MaxDivergences = 20;
};

void Validator::diverge(const std::string &Fn, const BasicBlock &B,
                        std::string Detail) {
  Report.Equivalent = false;
  if (Report.Divergences.size() >= MaxDivergences)
    return;
  Report.Divergences.push_back(
      {Fn, blockDisplayName(B), B.Index, std::move(Detail)});
}

void Validator::compareBlocks(const FnSide &SideB, const FnSide &SideA,
                              unsigned BiB, unsigned BiA,
                              const std::string &FnName) {
  const BasicBlock &BB = SideB.Graph.blocks()[BiB];
  const BasicBlock &BA = SideA.Graph.blocks()[BiA];
  ++Report.BlocksChecked;

  SymTable T;
  BlockEvaluator EvB(T), EvA(T);
  BlockSummary SB = EvB.evaluate(blockInsns(BB));
  BlockSummary SA = EvA.evaluate(blockInsns(BA));

  if (!SB.Supported || !SA.Supported) {
    ++Report.BlocksFallback;
    if (blockText(BB) != blockText(BA))
      diverge(FnName, BA,
              "block contains unmodelled instructions and its text changed (" +
                  (SB.Supported ? SA.UnsupportedWhy : SB.UnsupportedWhy) + ")");
    return;
  }

  // Registers and flags: only live-out state is observable. Take the union
  // of both sides' liveness so neither side can hide a change behind its own
  // (possibly already wrong) CFG.
  RegMask LiveRegs =
      SideB.Live.RegLiveOut[BiB] | SideA.Live.RegLiveOut[BiA];
  uint8_t LiveFlags = (SideB.Live.FlagsLiveOut[BiB] |
                       SideA.Live.FlagsLiveOut[BiA]) &
                      FlagsAllStatus;

  for (unsigned I = 0; I < NumDenseRegs; ++I) {
    if (!(LiveRegs & (1u << I)))
      continue;
    if (SB.Regs[I] != SA.Regs[I]) {
      diverge(FnName, BA,
              std::string("live-out register %") + denseRegName(I) +
                  " differs: " + renderNode(T, SB.Regs[I]) + " vs " +
                  renderNode(T, SA.Regs[I]));
      return;
    }
  }
  for (unsigned F = 0; F < NumStatusFlags; ++F) {
    if (!(LiveFlags & (1u << F)))
      continue;
    if (SB.Flags[F] != SA.Flags[F]) {
      diverge(FnName, BA,
              std::string("live-out flag ") + flagName(F) +
                  " differs: " + renderNode(T, SB.Flags[F]) + " vs " +
                  renderNode(T, SA.Flags[F]));
      return;
    }
  }

  if (SB.Stores != SA.Stores) {
    size_t N = std::min(SB.Stores.size(), SA.Stores.size());
    std::string Detail = "store sequence differs";
    for (size_t I = 0; I < N; ++I)
      if (!(SB.Stores[I] == SA.Stores[I])) {
        Detail += " at store " + std::to_string(I) + ": [" +
                  renderNode(T, SB.Stores[I].Addr) +
                  "] := " + renderNode(T, SB.Stores[I].Value) + " vs [" +
                  renderNode(T, SA.Stores[I].Addr) +
                  "] := " + renderNode(T, SA.Stores[I].Value);
        break;
      }
    if (SB.Stores.size() != SA.Stores.size())
      Detail += " (" + std::to_string(SB.Stores.size()) + " vs " +
                std::to_string(SA.Stores.size()) + " stores)";
    diverge(FnName, BA, Detail);
    return;
  }
  if (SB.Calls != SA.Calls) {
    diverge(FnName, BA, "call sequence differs (" +
                            std::to_string(SB.Calls.size()) + " vs " +
                            std::to_string(SA.Calls.size()) + " calls)");
    return;
  }
  if (SB.Opaques != SA.Opaques) {
    diverge(FnName, BA, "opaque-instruction sequence differs");
    return;
  }

  // Terminator.
  const Terminator &TB = SB.Term, &TA = SA.Term;
  if (TB.Kind != TA.Kind) {
    diverge(FnName, BA, "terminator kind differs");
    return;
  }
  switch (TB.Kind) {
  case TermKind::Fallthrough:
    break; // Position-based matching covers the successor.
  case TermKind::Jump:
    if (targetKey(SideB, TB.TargetLabel) != targetKey(SideA, TA.TargetLabel))
      diverge(FnName, BA, "jump target differs: " + TB.TargetLabel + " vs " +
                              TA.TargetLabel);
    break;
  case TermKind::CondJump:
    if (TB.Cond != TA.Cond) {
      diverge(FnName, BA,
              "branch condition differs: " + renderNode(T, TB.Cond) + " vs " +
                  renderNode(T, TA.Cond));
      return;
    }
    if (targetKey(SideB, TB.TargetLabel) != targetKey(SideA, TA.TargetLabel))
      diverge(FnName, BA, "branch target differs: " + TB.TargetLabel +
                              " vs " + TA.TargetLabel);
    break;
  case TermKind::IndirectJump:
    if (TB.Target != TA.Target)
      diverge(FnName, BA, "indirect jump target expression differs: " +
                              renderNode(T, TB.Target) + " vs " +
                              renderNode(T, TA.Target));
    break;
  case TermKind::Return:
    if (TB.RetValues != TA.RetValues)
      diverge(FnName, BA, "return-value state differs");
    break;
  }
}

void Validator::checkFunction(MaoFunction &FnB, MaoFunction &FnA) {
  ++Report.FunctionsChecked;

  FnSide SideB{CFG::build(FnB), {}, {}, {}};
  FnSide SideA{CFG::build(FnA), {}, {}, {}};
  resolveIndirectJumps(SideB.Graph);
  resolveIndirectJumps(SideA.Graph);
  SideB.Live = computeLiveness(SideB.Graph);
  SideA.Live = computeLiveness(SideA.Graph);

  std::set<std::string> LabelsB = blockLabels(SideB.Graph);
  std::set<std::string> LabelsA = blockLabels(SideA.Graph);
  std::set<std::string> Common;
  std::set_intersection(LabelsB.begin(), LabelsB.end(), LabelsA.begin(),
                        LabelsA.end(), std::inserter(Common, Common.begin()));

  SideB.Keys = blockKeys(SideB.Graph, Common);
  SideA.Keys = blockKeys(SideA.Graph, Common);
  SideB.Reachable =
      reachableBlocks(SideB.Graph, FnB.HasUnresolvedIndirect);
  SideA.Reachable =
      reachableBlocks(SideA.Graph, FnA.HasUnresolvedIndirect);

  std::unordered_map<std::string, unsigned> KeyToA;
  for (unsigned I = 0; I < SideA.Keys.size(); ++I)
    KeyToA.emplace(SideA.Keys[I], I);

  std::vector<bool> MatchedA(SideA.Keys.size(), false);
  for (unsigned BiB = 0; BiB < SideB.Keys.size(); ++BiB) {
    if (!SideB.Reachable[BiB])
      continue; // Unreachable before the pass: nothing observable.
    auto It = KeyToA.find(SideB.Keys[BiB]);
    const BasicBlock &BB = SideB.Graph.blocks()[BiB];
    if (It == KeyToA.end()) {
      if (!blockIsInert(BB))
        diverge(FnB.name(), BB,
                "reachable block disappeared from the pass output");
      continue;
    }
    MatchedA[It->second] = true;
    compareBlocks(SideB, SideA, BiB, It->second, FnB.name());
    if (Report.Divergences.size() >= MaxDivergences)
      return;
  }

  // Blocks the pass introduced: harmless when inert or unreachable.
  for (unsigned BiA = 0; BiA < SideA.Keys.size(); ++BiA) {
    if (MatchedA[BiA] || !SideA.Reachable[BiA])
      continue;
    const BasicBlock &BA = SideA.Graph.blocks()[BiA];
    if (!blockIsInert(BA))
      diverge(FnA.name(), BA,
              "pass introduced a reachable block with no counterpart");
  }
}

ValidationReport Validator::run() {
  Before.rebuildStructure();
  After.rebuildStructure();

  for (MaoFunction &FnB : Before.functions()) {
    MaoFunction *FnA = After.findFunction(FnB.name());
    if (!FnA) {
      Report.Equivalent = false;
      Report.Divergences.push_back(
          {FnB.name(), "<function>", 0,
           "function disappeared from the pass output"});
      continue;
    }
    checkFunction(FnB, *FnA);
  }
  for (MaoFunction &FnA : After.functions()) {
    if (!Before.findFunction(FnA.name())) {
      Report.Equivalent = false;
      Report.Divergences.push_back(
          {FnA.name(), "<function>", 0, "pass introduced a new function"});
    }
  }
  return Report;
}

} // namespace

std::string SemanticDivergence::toString() const {
  return "function '" + Function + "', block '" + Block + "' (index " +
         std::to_string(BlockIndex) + "): " + Detail;
}

std::string ValidationReport::firstMessage() const {
  return Divergences.empty() ? std::string() : Divergences.front().toString();
}

ValidationReport mao::validateSemantics(MaoUnit &Before, MaoUnit &After) {
  Validator V(Before, After);
  return V.run();
}
