//===- check/SemanticValidator.h - Per-pass translation validation -*- C++ -*-//
///
/// \file
/// The MaoCheck semantic validator: proves (per function, per basic block)
/// that a pass preserved observable behaviour, by symbolically evaluating
/// each block of the pre-pass checkpoint and the post-pass unit into a
/// shared hash-consed DAG (SymbolicEval.h) and comparing the observable
/// outputs — live-out registers and flags, the ordered store/call/opaque
/// event lists, and the terminator. The comparison is conservative: a
/// reported divergence names the first block whose observables differ, and
/// blocks outside the modelled subset fall back to a textual comparison.
///
/// Wired into the transactional pass runner via
/// PipelineOptions::SemanticCheck (--mao-validate=semantic), so a
/// semantics-changing pass is rolled back or skipped under the existing
/// OnErrorPolicy machinery.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_CHECK_SEMANTICVALIDATOR_H
#define MAO_CHECK_SEMANTICVALIDATOR_H

#include "ir/MaoUnit.h"

#include <string>
#include <vector>

namespace mao {

/// One point of semantic disagreement between checkpoint and result.
struct SemanticDivergence {
  std::string Function;
  std::string Block;   ///< First label of the block, or "<entry>"/"<block N>".
  unsigned BlockIndex = 0;
  std::string Detail;  ///< Which observable differs, with both expressions.

  std::string toString() const;
};

/// Outcome of one validation run.
struct ValidationReport {
  bool Equivalent = true;
  std::vector<SemanticDivergence> Divergences;
  unsigned FunctionsChecked = 0;
  unsigned BlocksChecked = 0;
  /// Blocks compared textually because they contain unmodelled instructions.
  unsigned BlocksFallback = 0;

  /// The first divergence rendered as a one-line message ("" when clean).
  std::string firstMessage() const;
};

/// Validates that \p After is observably equivalent to \p Before.
/// Rebuilds the derived structure of both units (checkpoints are taken with
/// MaoUnit::clone(), which skips it).
ValidationReport validateSemantics(MaoUnit &Before, MaoUnit &After);

} // namespace mao

#endif // MAO_CHECK_SEMANTICVALIDATOR_H
