//===- check/Lint.h - Rule-based assembly linter ----------------*- C++ -*-===//
///
/// \file
/// The MaoCheck linter: registered rules over CFG + Dataflow that flag
/// correctness smells (use-before-def, unreachable code, call-site stack
/// misalignment) and micro-architectural hazards (dead flag writes,
/// partial-register stalls, false dependencies), plus the
/// unresolved-indirect-jump audit that makes the paper's Sec. II resolution
/// experiment (246/320 -> 4/320) observable from tool output. Each rule has
/// its own DiagCode and emits through the DiagEngine, so findings reach the
/// text sink and the SARIF sink alike.
///
/// Exit-code contract (mao --lint): 0 clean, 1 findings (any warning or
/// error), 2 internal error. --lint-werror promotes Warning to Error.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_CHECK_LINT_H
#define MAO_CHECK_LINT_H

#include "ir/MaoUnit.h"
#include "support/Diag.h"

#include <string>
#include <vector>

namespace mao {

struct LintOptions {
  bool WarningsAsErrors = false;
  /// Input file name attached to every finding's SourceLoc.
  std::string FileName;
};

struct LintResult {
  unsigned Errors = 0;
  unsigned Warnings = 0;
  unsigned Notes = 0;
  bool InternalError = false;
  std::string InternalDetail;
  /// Unresolved-indirect audit totals across the unit (paper Sec. II).
  unsigned IndirectTotal = 0;
  unsigned IndirectUnresolved = 0;

  bool clean() const { return Errors == 0 && Warnings == 0; }
};

/// One registered rule (name doubles as the SARIF rule id suffix).
struct LintRuleInfo {
  const char *Name;
  DiagCode Code;
  const char *Summary;
};

/// The registered rule set, in execution order.
const std::vector<LintRuleInfo> &lintRules();

/// Runs every registered rule over \p Unit, emitting findings through
/// \p Diags. Never throws: internal failures are captured in the result.
LintResult lintUnit(MaoUnit &Unit, const LintOptions &Options,
                    DiagEngine &Diags);

/// Maps a lint result to the documented process exit code (0/1/2).
int lintExitCode(const LintResult &Result);

} // namespace mao

#endif // MAO_CHECK_LINT_H
