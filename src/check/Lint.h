//===- check/Lint.h - Rule-based assembly linter ----------------*- C++ -*-===//
///
/// \file
/// The MaoCheck linter: registered rules over CFG + Dataflow that flag
/// correctness smells (use-before-def, unreachable code, call-site stack
/// misalignment) and micro-architectural hazards (dead flag writes,
/// partial-register stalls, false dependencies), plus the
/// unresolved-indirect-jump audit that makes the paper's Sec. II resolution
/// experiment (246/320 -> 4/320) observable from tool output.
///
/// Since the interprocedural layer (analysis/CallGraph + Summaries) the
/// linter also checks System V AMD64 ABI conformance: callee-saved
/// registers clobbered without save/restore, unbalanced stack deltas
/// reaching `ret`, red-zone access in non-leaf functions, and argument
/// registers that arrive at a call site holding clobbered values. With
/// Interprocedural enabled (the default) a call clobbers only what its
/// callee's summary says instead of acting as an opaque barrier; the
/// clobber-everything model stays available for comparison.
///
/// Each rule has its own DiagCode and emits through the DiagEngine, so
/// findings reach the text sink and the SARIF sink alike. Per-function
/// analysis runs on a worker pool (Jobs) with findings buffered and merged
/// in function order, so the finding set, the counts, and FindingsDigest
/// are byte-identical for every Jobs value. A baseline file (one
/// diagFingerprint hex per line) suppresses known findings for incremental
/// adoption.
///
/// Exit-code contract (mao --lint): 0 clean, 1 findings (any warning or
/// error), 2 internal error. --lint-werror promotes Warning to Error.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_CHECK_LINT_H
#define MAO_CHECK_LINT_H

#include "ir/MaoUnit.h"
#include "support/Diag.h"

#include <string>
#include <vector>

namespace mao {

struct LintOptions {
  bool WarningsAsErrors = false;
  /// Input file name attached to every finding's SourceLoc.
  std::string FileName;
  /// Worker count for per-function analysis (0 = all hardware threads).
  /// Findings are merged in function order: identical for every value.
  unsigned Jobs = 1;
  /// Use call-graph summaries to sharpen call effects and run the ABI
  /// rules; false falls back to the clobber-everything call model (the
  /// comparison baseline for the summary-sharpened rules).
  bool Interprocedural = true;
  /// Baseline file of fingerprints to suppress (empty = none).
  std::string BaselinePath;
  /// When non-empty, write every current finding's fingerprint here (the
  /// file re-lints clean when used as BaselinePath).
  std::string BaselineOutPath;
};

struct LintResult {
  unsigned Errors = 0;
  unsigned Warnings = 0;
  unsigned Notes = 0;
  /// Findings matched by the baseline file and not emitted.
  unsigned Suppressed = 0;
  bool InternalError = false;
  std::string InternalDetail;
  /// Unresolved-indirect audit totals across the unit (paper Sec. II).
  unsigned IndirectTotal = 0;
  unsigned IndirectUnresolved = 0;
  /// Order-sensitive FNV-1a over the emitted findings' fingerprints; equal
  /// digests mean byte-identical finding sets (the cross-Jobs contract).
  uint64_t FindingsDigest = 0;

  bool clean() const { return Errors == 0 && Warnings == 0; }
};

/// One registered rule (name doubles as the SARIF rule id suffix).
struct LintRuleInfo {
  const char *Name;
  DiagCode Code;
  const char *Summary;
};

/// The registered rule set, in execution order.
const std::vector<LintRuleInfo> &lintRules();

/// Runs every registered rule over \p Unit, emitting findings through
/// \p Diags. Never throws: internal failures are captured in the result.
LintResult lintUnit(MaoUnit &Unit, const LintOptions &Options,
                    DiagEngine &Diags);

/// Maps a lint result to the documented process exit code (0/1/2).
int lintExitCode(const LintResult &Result);

} // namespace mao

#endif // MAO_CHECK_LINT_H
