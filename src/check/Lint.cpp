//===- check/Lint.cpp - Rule-based assembly linter ------------------------===//

#include "check/Lint.h"

#include "analysis/CFG.h"
#include "analysis/CallGraph.h"
#include "analysis/Dataflow.h"
#include "analysis/Summaries.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <array>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

using namespace mao;

namespace {

/// Shared state handed to every rule for one function.
struct FnLintContext {
  MaoFunction &Fn;
  CFG &G;
  const LivenessResult &Live;
  /// Interprocedural summaries, or null for the clobber-everything model.
  const SummaryTable *Table;
  /// This function's index in the unit (== call-graph node index).
  unsigned FnIndex;
};

/// One buffered finding, pre-promotion. Rules run per function on worker
/// threads and append here; the sequential merge applies werror, baseline
/// suppression, counting, and emission in function order — which is what
/// keeps the finding set byte-identical for every Jobs value.
struct Finding {
  DiagSeverity Severity; // Warning or Note.
  DiagCode Code;
  std::string Message;
};

class FindingBuf {
public:
  explicit FindingBuf(std::vector<Finding> &Out) : Out(Out) {}
  void warn(DiagCode Code, std::string Message) {
    Out.push_back({DiagSeverity::Warning, Code, std::move(Message)});
  }
  void note(DiagCode Code, std::string Message) {
    Out.push_back({DiagSeverity::Note, Code, std::move(Message)});
  }

private:
  std::vector<Finding> &Out;
};

std::string blockName(const BasicBlock &B) {
  if (!B.Labels.empty())
    return "'" + B.Labels.front() + "'";
  return "#" + std::to_string(B.Index);
}

bool blockIsInert(const BasicBlock &B) {
  for (EntryIter It : B.Insns)
    if (It->isInstruction() && !It->instruction().isNop())
      return false;
  return true;
}

const char *gprMaskName(unsigned Bit) {
  static const char *Names[] = {
      "rax",  "rcx",  "rdx",  "rbx",  "rsp",   "rbp",   "rsi",   "rdi",
      "r8",   "r9",   "r10",  "r11",  "r12",   "r13",   "r14",   "r15",
      "xmm0", "xmm1", "xmm2", "xmm3", "xmm4",  "xmm5",  "xmm6",  "xmm7",
      "xmm8", "xmm9", "xmm10", "xmm11", "xmm12", "xmm13", "xmm14", "xmm15"};
  return Names[Bit];
}

/// Supers readable at entry without a prior def: the six argument
/// registers, rax (vararg SSE count), rsp/rbp, the callee-saved set (a
/// read is how they get saved), and xmm0-7 (argument registers).
const RegMask EntryDefined =
    regMaskBit(Reg::RAX) | regMaskBit(Reg::RCX) | regMaskBit(Reg::RDX) |
    regMaskBit(Reg::RBX) | regMaskBit(Reg::RSP) | regMaskBit(Reg::RBP) |
    regMaskBit(Reg::RSI) | regMaskBit(Reg::RDI) | regMaskBit(Reg::R8) |
    regMaskBit(Reg::R9) | regMaskBit(Reg::R12) | regMaskBit(Reg::R13) |
    regMaskBit(Reg::R14) | regMaskBit(Reg::R15) |
    (0xffu << 16); // xmm0-7

//===----------------------------------------------------------------------===//
// R1: registers/flags directly read by an instruction before any definition
// reaches it, when the ABI does not define them at a call boundary (r10/r11
// are caller-clobbered scratch, xmm8-15 are argument-free and
// caller-clobbered, status flags are undefined). Computed as a forward
// definite-assignment fixpoint over direct instruction reads rather than
// backward liveness: an unresolved indirect jump makes liveness treat every
// register as live-in, which would drown the rule in false positives.
//
// Summary-sharpened: with interprocedural summaries a call defines only
// what its callee's summary clobbers, instead of everything — a register
// like %r10 that the callee provably leaves alone stays undefined across
// the call, so reads after the call are caught too.
//===----------------------------------------------------------------------===//

void ruleUseBeforeDef(const FnLintContext &C, FindingBuf &E) {
  const std::vector<BasicBlock> &Blocks = C.G.blocks();
  if (Blocks.empty())
    return;

  // Definitely-defined masks at block entry; meet is intersection over
  // predecessors, so the optimistic (all-defined) start descends to the
  // maximal fixpoint. Entry-unreachable blocks stay at top and report
  // nothing — the unreachable-block rule owns those.
  std::vector<RegMask> RegIn(Blocks.size(), ~RegMask(0));
  std::vector<uint8_t> FlagIn(Blocks.size(), FlagsAllStatus);
  RegIn[0] = EntryDefined;
  FlagIn[0] = 0;

  auto Transfer = [&C](const BasicBlock &B, RegMask &Regs, uint8_t &Flags,
                       RegMask *RegOffend, uint8_t *FlagOffend) {
    for (const EntryIter &It : B.Insns) {
      const Instruction &Insn = It->instruction();
      const InstructionEffects Eff = Insn.effects();
      if (RegOffend)
        *RegOffend |= Eff.RegUses & ~Regs;
      if (FlagOffend)
        *FlagOffend |=
            Eff.FlagsUse & FlagsAllStatus & static_cast<uint8_t>(~Flags);
      if (C.Table && Insn.isCall()) {
        // Summary-sharpened call: defines its clobber set (the flags are
        // still architecturally left in *some* state).
        Regs |= C.Table->callClobbers(Insn);
        Flags = FlagsAllStatus;
        continue;
      }
      Regs |= Eff.RegDefs;
      Flags |= Eff.FlagsDef & FlagsAllStatus;
      // Calls and opaque instructions leave every register in *some*
      // state; treat everything as defined past them to stay quiet.
      if (Eff.Barrier) {
        Regs = ~RegMask(0);
        Flags = FlagsAllStatus;
      }
    }
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const BasicBlock &B : Blocks) {
      RegMask Regs = RegIn[B.Index];
      uint8_t Flags = FlagIn[B.Index];
      Transfer(B, Regs, Flags, nullptr, nullptr);
      for (unsigned S : B.Succs) {
        RegMask NewR = RegIn[S] & Regs;
        uint8_t NewF = FlagIn[S] & Flags;
        if (NewR != RegIn[S] || NewF != FlagIn[S]) {
          RegIn[S] = NewR;
          FlagIn[S] = NewF;
          Changed = true;
        }
      }
    }
  }

  RegMask RegOffenders = 0;
  uint8_t FlagOffenders = 0;
  for (const BasicBlock &B : Blocks) {
    RegMask Regs = RegIn[B.Index];
    uint8_t Flags = FlagIn[B.Index];
    Transfer(B, Regs, Flags, &RegOffenders, &FlagOffenders);
  }

  for (unsigned I = 0; I < 32; ++I)
    if (RegOffenders & (1u << I))
      E.warn(DiagCode::LintUseBeforeDef,
             "function '" + C.Fn.name() + "': register %" +
                 std::string(gprMaskName(I)) +
                 " is read before any definition (not defined at function "
                 "entry by the ABI)");
  if (FlagOffenders)
    E.warn(DiagCode::LintUseBeforeDef,
           "function '" + C.Fn.name() +
               "': status flags are read before any definition (flags: " +
               flagMaskToString(FlagOffenders) + ")");
}

//===----------------------------------------------------------------------===//
// R2: compare/test instructions whose flags nobody reads before the next
// flag definition — pure wasted work.
//===----------------------------------------------------------------------===//

void ruleDeadFlagWrite(const FnLintContext &C, FindingBuf &E) {
  for (const BasicBlock &B : C.G.blocks()) {
    InsnLiveness IL = perInstructionLiveness(C.G, B.Index, C.Live);
    for (size_t I = 0; I < B.Insns.size(); ++I) {
      const Instruction &Insn = B.Insns[I]->instruction();
      if (!Insn.writesFlagsOnly())
        continue;
      uint8_t Defs = Insn.effects().FlagsDef & FlagsAllStatus;
      if (Defs && (Defs & IL.FlagsLiveAfter[I]) == 0)
        E.warn(DiagCode::LintDeadFlagWrite,
               "function '" + C.Fn.name() + "', block " + blockName(B) +
                   ": '" + Insn.toString() +
                   "' computes flags that are never read");
    }
  }
}

//===----------------------------------------------------------------------===//
// R3: blocks no path from the entry reaches. Skipped when the function has
// unresolved indirect branches (unknown edges could reach anything).
//===----------------------------------------------------------------------===//

void ruleUnreachable(const FnLintContext &C, FindingBuf &E) {
  if (C.Fn.HasUnresolvedIndirect || C.G.blocks().empty())
    return;
  std::vector<bool> Seen(C.G.blocks().size(), false);
  std::vector<unsigned> Work = {0};
  Seen[0] = true;
  while (!Work.empty()) {
    unsigned B = Work.back();
    Work.pop_back();
    for (unsigned S : C.G.blocks()[B].Succs)
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  }
  for (const BasicBlock &B : C.G.blocks())
    if (!Seen[B.Index] && !blockIsInert(B))
      E.warn(DiagCode::LintUnreachableBlock,
             "function '" + C.Fn.name() + "': block " + blockName(B) +
                 " is unreachable");
}

//===----------------------------------------------------------------------===//
// R4: call sites where the stack is provably misaligned. The SysV ABI makes
// %rsp ≡ 8 (mod 16) at function entry (the call pushed the return address
// onto an aligned stack) and requires %rsp ≡ 0 (mod 16) at every call, i.e.
// a known push-depth ≡ 8 (mod 16). Depth tracking is abandoned (not
// reported) at instructions that modify %rsp in unmodelled ways.
//===----------------------------------------------------------------------===//

/// Net bytes this instruction pushes onto the stack, or nullopt when the
/// effect on %rsp is not statically known.
std::optional<int64_t> stackDelta(const Instruction &Insn) {
  const OpcodeInfo &Info = Insn.info();
  switch (Info.Kind) {
  case EncKind::Push:
    return 8;
  case EncKind::Pop:
    return -8;
  case EncKind::Call: // Balanced: callee pops the return address.
  case EncKind::Ret:
    return 0;
  default:
    break;
  }
  // Explicit %rsp adjustments: add/sub $imm, %rsp.
  if (Info.Kind == EncKind::AluRMI && Insn.Ops.size() == 2 &&
      Insn.Ops[1].isReg() && superReg(Insn.Ops[1].R) == Reg::RSP &&
      Insn.Ops[0].isConstImm()) {
    if (Insn.Mn == Mnemonic::SUB)
      return Insn.Ops[0].Imm;
    if (Insn.Mn == Mnemonic::ADD)
      return -Insn.Ops[0].Imm;
    return std::nullopt;
  }
  // Any other write to %rsp (mov, lea, leave, opaque) loses tracking.
  if (Insn.effects().RegDefs & regMaskBit(Reg::RSP))
    return std::nullopt;
  return 0;
}

void ruleStackAlignment(const FnLintContext &C, FindingBuf &E) {
  const auto &Blocks = C.G.blocks();
  if (Blocks.empty())
    return;
  constexpr int64_t Unknown = INT64_MIN;
  std::vector<int64_t> EntryDepth(Blocks.size(), INT64_MIN + 1); // unvisited
  EntryDepth[0] = 0;
  std::vector<unsigned> Work = {0};
  while (!Work.empty()) {
    unsigned BI = Work.back();
    Work.pop_back();
    int64_t Depth = EntryDepth[BI];
    for (EntryIter It : Blocks[BI].Insns) {
      if (!It->isInstruction())
        continue;
      const Instruction &Insn = It->instruction();
      if (Depth != Unknown && Insn.isCall() && ((Depth % 16) + 16) % 16 != 8)
        E.warn(DiagCode::LintStackMisaligned,
               "function '" + C.Fn.name() + "', block " +
                   blockName(Blocks[BI]) + ": call '" + Insn.toString() +
                   "' with %rsp misaligned (push depth " +
                   std::to_string(Depth) + " bytes, need ≡ 8 mod 16)");
      if (Depth != Unknown) {
        auto Delta = stackDelta(Insn);
        Depth = Delta ? Depth + *Delta : Unknown;
      }
    }
    for (unsigned S : Blocks[BI].Succs) {
      if (EntryDepth[S] == INT64_MIN + 1) {
        EntryDepth[S] = Depth;
        Work.push_back(S);
      } else if (EntryDepth[S] != Depth) {
        // Conflicting depths at a join: stop checking downstream rather
        // than guessing.
        if (EntryDepth[S] != Unknown) {
          EntryDepth[S] = Unknown;
          Work.push_back(S);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// R5/R6: partial-register hazards. A narrow (8/16-bit) register write
// merges into the old super-register value; a following wider read stalls
// on the merge (R5), and the merge itself carries a false dependency on the
// previous producer of the register when nothing in the block defined it
// (R6, informational).
//===----------------------------------------------------------------------===//

/// Explicit register operands this instruction writes, with their views.
std::vector<Reg> writtenRegs(const Instruction &Insn) {
  std::vector<Reg> Out;
  const OpcodeInfo &Info = Insn.info();
  auto AddIfReg = [&](const Operand &Op) {
    if (Op.isReg())
      Out.push_back(Op.R);
  };
  switch (Info.Kind) {
  case EncKind::Mov:
  case EncKind::Movx:
  case EncKind::Lea:
  case EncKind::Cmovcc:
  case EncKind::SseMov:
  case EncKind::SseCvtMov:
  case EncKind::SseAlu:
    if (Insn.Ops.size() >= 2)
      AddIfReg(Insn.Ops[1]);
    break;
  case EncKind::AluRMI:
    if (Insn.Mn != Mnemonic::CMP && Insn.Ops.size() >= 2)
      AddIfReg(Insn.Ops[1]);
    break;
  case EncKind::ShiftRot:
  case EncKind::ImulMulti:
    if (!Insn.Ops.empty())
      AddIfReg(Insn.Ops.back());
    break;
  case EncKind::UnaryRM:
  case EncKind::Pop:
  case EncKind::Setcc:
  case EncKind::Bswap:
    if (!Insn.Ops.empty())
      AddIfReg(Insn.Ops[0]);
    break;
  case EncKind::Xchg:
    for (const Operand &Op : Insn.Ops)
      AddIfReg(Op);
    break;
  default:
    break;
  }
  return Out;
}

/// True when the destination is written without reading its old explicit
/// value (the cases where a zero-extending form would avoid the merge).
bool destIsWriteOnly(const Instruction &Insn) {
  switch (Insn.info().Kind) {
  case EncKind::Mov:
  case EncKind::Movx:
  case EncKind::Lea:
  case EncKind::Pop:
  case EncKind::Setcc:
    return true;
  default:
    return false;
  }
}

void rulePartialRegister(const FnLintContext &C, FindingBuf &E) {
  for (const BasicBlock &B : C.G.blocks()) {
    // Per super register: width of the last write in this block, or None.
    std::array<Width, 16> LastWrite;
    LastWrite.fill(Width::None);
    std::array<bool, 16> Written{};
    for (EntryIter It : B.Insns) {
      if (!It->isInstruction())
        continue;
      const Instruction &Insn = It->instruction();
      if (Insn.isOpaque() || Insn.isCall()) {
        LastWrite.fill(Width::None);
        Written.fill(Insn.isCall());
        continue;
      }
      // Wide reads of a super last written narrowly -> stall (R5).
      auto CheckRead = [&](Reg R, Width ReadW) {
        if (!regIsGpr(R))
          return;
        unsigned S = gprSuperIndex(R);
        Width WW = LastWrite[S];
        if ((WW == Width::B || WW == Width::W) &&
            (ReadW == Width::L || ReadW == Width::Q))
          E.warn(DiagCode::LintPartialRegStall,
                 "function '" + C.Fn.name() + "', block " + blockName(B) +
                     ": '" + Insn.toString() + "' reads %" + regName(R) +
                     " after a narrow write to the same register "
                     "(partial-register stall)");
      };
      for (const Operand &Op : Insn.Ops) {
        if (Op.isReg()) {
          bool IsDest = !writtenRegs(Insn).empty() &&
                        &Op == &Insn.Ops[Insn.Ops.size() - 1] &&
                        destIsWriteOnly(Insn);
          if (!IsDest)
            CheckRead(Op.R, regWidth(Op.R));
        } else if (Op.isMem()) {
          if (Op.Mem.Base != Reg::None && Op.Mem.Base != Reg::RIP)
            CheckRead(Op.Mem.Base, Width::Q);
          if (Op.Mem.Index != Reg::None)
            CheckRead(Op.Mem.Index, Width::Q);
        }
      }
      for (Reg R : writtenRegs(Insn)) {
        if (!regIsGpr(R))
          continue;
        unsigned S = gprSuperIndex(R);
        Width WW = regWidth(R);
        bool Narrow = WW == Width::B || WW == Width::W || regIsHighByte(R);
        if (Narrow && !Written[S] && destIsWriteOnly(Insn))
          E.note(DiagCode::LintFalseDependency,
                 "function '" + C.Fn.name() + "', block " + blockName(B) +
                     ": '" + Insn.toString() + "' merges into %" +
                     regName(superReg(R)) +
                     " without a prior full-width definition (false "
                     "dependency; consider a zero-extending move)");
        LastWrite[S] = regIsHighByte(R) ? Width::B : WW;
        Written[S] = true;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// R7: unresolved-indirect-jump audit with per-function counts — the paper's
// Sec. II resolution experiment as structured linter output.
//===----------------------------------------------------------------------===//

/// Per-function buffered output of one parallel analysis job.
struct FnOutput {
  std::vector<Finding> Findings;
  unsigned IndirectTotal = 0;
  unsigned IndirectUnresolved = 0;
};

void ruleIndirectAudit(const FnLintContext &C, FindingBuf &E, FnOutput &Out) {
  const CFG::Stats &S = C.G.stats();
  unsigned Unresolved = C.G.unresolvedJumps().size();
  Out.IndirectTotal += S.IndirectJumps;
  Out.IndirectUnresolved += Unresolved;
  if (S.IndirectJumps == 0)
    return;
  if (Unresolved > 0)
    E.warn(DiagCode::LintUnresolvedIndirect,
           "function '" + C.Fn.name() + "': " + std::to_string(Unresolved) +
               " of " + std::to_string(S.IndirectJumps) +
               " indirect jumps unresolved (same-block: " +
               std::to_string(S.ResolvedSameBlock) +
               ", reaching-defs: " + std::to_string(S.ResolvedReachingDefs) +
               ")");
  else
    E.note(DiagCode::LintUnresolvedIndirect,
           "function '" + C.Fn.name() + "': all " +
               std::to_string(S.IndirectJumps) +
               " indirect jumps resolved (same-block: " +
               std::to_string(S.ResolvedSameBlock) +
               ", reaching-defs: " + std::to_string(S.ResolvedReachingDefs) +
               ")");
}

//===----------------------------------------------------------------------===//
// R8-R10: ABI conformance findings precomputed by the function summaries —
// callee-saved registers clobbered without save/restore pairing, net stack
// deltas reaching `ret` (or a tail call), and red-zone accesses in
// functions that call out (the callee's frame overlaps the red zone).
//===----------------------------------------------------------------------===//

void ruleAbiSummary(const FnLintContext &C, FindingBuf &E) {
  if (!C.Table)
    return;
  const FunctionSummary &S = C.Table->summary(C.FnIndex);
  if (!S.Known)
    return; // Opaque or non-converging: conservative silence.
  for (const std::string &V : S.CalleeSavedViolations)
    E.warn(DiagCode::LintCalleeSavedClobbered,
           "function '" + C.Fn.name() + "': " + V);
  for (const std::string &V : S.StackViolations)
    E.warn(DiagCode::LintUnbalancedStack,
           "function '" + C.Fn.name() + "': " + V);
  if (!S.Leaf)
    for (const std::string &V : S.RedZoneSites)
      E.warn(DiagCode::LintRedZoneNonLeaf,
             "function '" + C.Fn.name() + "': " + V +
                 " in a non-leaf function (a callee's frame may overwrite "
                 "the red zone)");
}

//===----------------------------------------------------------------------===//
// R11/R12: argument-value tracking at call sites. "Valid" registers hold a
// meaningful value: the ABI-defined set at entry, plus everything written;
// a call invalidates what it clobbers (minus the return registers). An
// argument register the callee may read that is invalid at the call site is
// dead on arrival (R11). A write to an argument register that nothing
// consumes before a call that clobbers it without reading it is a dead
// write (R12, requires a known callee summary).
//
// Without summaries (the clobber-everything model) every call invalidates
// all argument registers and is assumed to read all of them — the
// comparison baseline that the summary sharpening strictly improves on.
//===----------------------------------------------------------------------===//

void ruleArgValues(const FnLintContext &C, FindingBuf &E) {
  const std::vector<BasicBlock> &Blocks = C.G.blocks();
  if (Blocks.empty())
    return;

  auto CallClob = [&](const Instruction &Insn) -> RegMask {
    return C.Table ? C.Table->callClobbers(Insn) : CallClobberedMask;
  };
  auto CallRead = [&](const Instruction &Insn) -> RegMask {
    return C.Table ? C.Table->callReads(Insn) : ArgRegsMask;
  };

  std::vector<RegMask> In(Blocks.size(), ~RegMask(0));
  In[0] = EntryDefined;

  auto Transfer = [&](const BasicBlock &B, RegMask Valid,
                      bool Report) -> RegMask {
    // Last unconsumed write to each argument register in this block, for
    // the dead-write check (reset at block boundaries: conservative).
    std::array<const Instruction *, 32> LastArgWrite{};
    for (const EntryIter &It : B.Insns) {
      const Instruction &Insn = It->instruction();
      const InstructionEffects Eff = Insn.effects();
      if (Insn.isCall()) {
        RegMask Reads = CallRead(Insn);
        RegMask Clob = CallClob(Insn);
        // With summaries, only a Known callee justifies a report (we can
        // prove it reads the register); an unknown callee's assumed
        // reads-all-args would be a false-positive firehose. Without
        // summaries every call is reported against the architectural
        // model — the comparison baseline.
        bool ReportReads = !C.Table || C.Table->calleeSummary(Insn);
        if (Report && ReportReads) {
          RegMask DeadArgs = Reads & ArgRegsMask & ~Valid;
          for (unsigned I = 0; I < 32; ++I)
            if (DeadArgs & (1u << I))
              E.warn(DiagCode::LintArgUndefinedAtCall,
                     "function '" + C.Fn.name() + "', block " + blockName(B) +
                         ": argument %" + gprMaskName(I) + " of '" +
                         Insn.toString() +
                         "' may hold a clobbered or undefined value");
          if (C.Table && C.Table->calleeSummary(Insn)) {
            RegMask DeadWrites = Clob & ~Reads & ArgRegsMask;
            for (unsigned I = 0; I < 32; ++I)
              if ((DeadWrites & (1u << I)) && LastArgWrite[I])
                E.note(DiagCode::LintDeadArgWrite,
                       "function '" + C.Fn.name() + "', block " +
                           blockName(B) + ": '" +
                           LastArgWrite[I]->toString() + "' writes %" +
                           gprMaskName(I) + " but '" + Insn.toString() +
                           "' neither reads nor preserves it (dead write)");
          }
        }
        Valid = (Valid & ~Clob) | ReturnRegsMask;
        LastArgWrite.fill(nullptr);
        continue;
      }
      if (Insn.isOpaque()) {
        Valid = ~RegMask(0);
        LastArgWrite.fill(nullptr);
        continue;
      }
      // Reads consume pending argument writes.
      for (unsigned I = 0; I < 32; ++I)
        if (Eff.RegUses & (1u << I))
          LastArgWrite[I] = nullptr;
      Valid |= Eff.RegDefs;
      RegMask ArgDefs = Eff.RegDefs & ArgRegsMask;
      for (unsigned I = 0; I < 32; ++I)
        if (ArgDefs & (1u << I))
          LastArgWrite[I] = &Insn;
    }
    return Valid;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const BasicBlock &B : Blocks) {
      RegMask Out = Transfer(B, In[B.Index], false);
      for (unsigned S : B.Succs) {
        RegMask Merged = In[S] & Out;
        if (Merged != In[S]) {
          In[S] = Merged;
          Changed = true;
        }
      }
    }
  }
  for (const BasicBlock &B : Blocks)
    Transfer(B, In[B.Index], true);
}

//===----------------------------------------------------------------------===//
// Baseline files: '#' comments and blank lines ignored; the first
// whitespace-delimited token of every other line is a 16-hex-digit
// diagFingerprint. Anything after the fingerprint is informational.
//===----------------------------------------------------------------------===//

bool loadBaseline(const std::string &Path,
                  std::unordered_set<uint64_t> &Out, std::string &Error) {
  std::ifstream File(Path);
  if (!File) {
    Error = "cannot open baseline file '" + Path + "'";
    return false;
  }
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(File, Line)) {
    ++LineNo;
    size_t Begin = Line.find_first_not_of(" \t\r");
    if (Begin == std::string::npos || Line[Begin] == '#')
      continue;
    size_t End = Line.find_first_of(" \t\r", Begin);
    std::string Token = Line.substr(
        Begin, End == std::string::npos ? std::string::npos : End - Begin);
    uint64_t Value = 0;
    if (Token.size() != 16 ||
        std::sscanf(Token.c_str(), "%16llx",
                    reinterpret_cast<unsigned long long *>(&Value)) != 1) {
      Error = "baseline file '" + Path + "', line " +
              std::to_string(LineNo) + ": expected a 16-hex-digit "
              "fingerprint, got '" + Token + "'";
      return false;
    }
    Out.insert(Value);
  }
  return true;
}

/// The rule name a DiagCode belongs to, for per-rule stats counters.
const char *ruleNameFor(DiagCode Code) {
  for (const LintRuleInfo &Rule : lintRules())
    if (Rule.Code == Code)
      return Rule.Name;
  return "internal";
}

/// Sequential merge stage: baseline suppression, werror promotion,
/// per-rule counters, the findings digest, and emission through the
/// DiagEngine — all in function order, independent of Jobs.
class Merger {
public:
  Merger(const LintOptions &Options, DiagEngine &Diags, LintResult &Result,
         const std::unordered_set<uint64_t> &Baseline)
      : Options(Options), Diags(Diags), Result(Result), Baseline(Baseline) {}

  void emit(Finding F) {
    uint64_t FP = diagFingerprint(F.Code, F.Message);
    All.push_back({FP, F.Code, F.Message});
    if (Baseline.count(FP)) {
      ++Result.Suppressed;
      StatsRegistry::instance().counter("lint.suppressed").add();
      return;
    }
    StatsRegistry::instance()
        .counter(std::string("lint.findings.") + ruleNameFor(F.Code))
        .add();
    Digest = (Digest ^ FP) * 1099511628211ull;
    SourceLoc Loc{Options.FileName, 0};
    if (F.Severity == DiagSeverity::Note) {
      ++Result.Notes;
      Diags.note(F.Code, std::move(F.Message), Loc, "lint");
    } else if (Options.WarningsAsErrors) {
      ++Result.Errors;
      Diags.error(F.Code, std::move(F.Message), Loc, "lint");
    } else {
      ++Result.Warnings;
      Diags.warning(F.Code, std::move(F.Message), Loc, "lint");
    }
  }

  void finish() { Result.FindingsDigest = Digest; }

  /// Writes every finding seen (suppressed or not) as a baseline file.
  bool writeBaseline(const std::string &Path, std::string &Error) const {
    std::ofstream File(Path, std::ios::trunc);
    if (!File) {
      Error = "cannot write baseline file '" + Path + "'";
      return false;
    }
    File << "# mao lint baseline (fingerprint  rule: message)\n";
    for (const Entry &E : All)
      File << diagFingerprintHex(E.Fingerprint) << "  "
           << diagCodeName(E.Code) << ": " << E.Message << "\n";
    File.flush();
    if (!File) {
      Error = "cannot write baseline file '" + Path + "'";
      return false;
    }
    return true;
  }

private:
  struct Entry {
    uint64_t Fingerprint;
    DiagCode Code;
    std::string Message;
  };
  const LintOptions &Options;
  DiagEngine &Diags;
  LintResult &Result;
  const std::unordered_set<uint64_t> &Baseline;
  std::vector<Entry> All;
  uint64_t Digest = 1469598103934665603ull;
};

} // namespace

const std::vector<LintRuleInfo> &mao::lintRules() {
  static const std::vector<LintRuleInfo> Rules = {
      {"use-before-def", DiagCode::LintUseBeforeDef,
       "register or flag read with no prior definition"},
      {"dead-flag-write", DiagCode::LintDeadFlagWrite,
       "compare/test result never consumed"},
      {"unreachable-block", DiagCode::LintUnreachableBlock,
       "basic block unreachable from the function entry"},
      {"stack-misaligned", DiagCode::LintStackMisaligned,
       "call site with %rsp not 16-byte aligned"},
      {"partial-reg-stall", DiagCode::LintPartialRegStall,
       "wide read after narrow write of the same register"},
      {"false-dependency", DiagCode::LintFalseDependency,
       "narrow merge-write without prior full-width definition"},
      {"unresolved-indirect", DiagCode::LintUnresolvedIndirect,
       "indirect-jump resolution audit (paper Sec. II)"},
      {"callee-saved-clobbered", DiagCode::LintCalleeSavedClobbered,
       "callee-saved register written without save/restore pairing"},
      {"unbalanced-stack", DiagCode::LintUnbalancedStack,
       "net stack delta reaches ret or a tail call"},
      {"red-zone-nonleaf", DiagCode::LintRedZoneNonLeaf,
       "red-zone access in a function that calls out"},
      {"arg-undefined", DiagCode::LintArgUndefinedAtCall,
       "argument register dead on arrival at a call site"},
      {"dead-arg-write", DiagCode::LintDeadArgWrite,
       "argument write the callee neither reads nor preserves"},
  };
  return Rules;
}

LintResult mao::lintUnit(MaoUnit &Unit, const LintOptions &Options,
                         DiagEngine &Diags) {
  LintResult Result;
  try {
    std::unordered_set<uint64_t> Baseline;
    if (!Options.BaselinePath.empty()) {
      std::string Error;
      if (!loadBaseline(Options.BaselinePath, Baseline, Error)) {
        Result.InternalError = true;
        Result.InternalDetail = Error;
        return Result;
      }
    }

    Unit.rebuildStructure();
    std::vector<MaoFunction> &Fns = Unit.functions();
    (void)Unit.labelMap(); // Force the lazy build before parallel readers.
    size_t N = Fns.size();

    unsigned Workers =
        Options.Jobs != 0 ? Options.Jobs : std::thread::hardware_concurrency();
    ThreadPool Pool(Workers != 0 ? Workers : 1);

    // Stage 1 (parallel): CFG construction + indirect-jump resolution.
    std::vector<CFG> Graphs(N);
    Pool.parallelFor(N, [&](size_t I) {
      Graphs[I] = CFG::build(Fns[I]);
      resolveIndirectJumps(Graphs[I]);
    });

    // Stage 2 (sequential): call graph and bottom-up summaries.
    CallGraph CG;
    SummaryTable Table;
    if (Options.Interprocedural) {
      CG = CallGraph::build(Unit);
      Table = SummaryTable::compute(CG, Graphs);
    }

    // Stage 3 (parallel): per-function rules into per-function buffers.
    std::vector<FnOutput> Outputs(N);
    Pool.parallelFor(N, [&](size_t I) {
      LivenessResult Live = computeLiveness(Graphs[I]);
      FnLintContext C{Fns[I], Graphs[I], Live,
                      Options.Interprocedural ? &Table : nullptr,
                      static_cast<unsigned>(I)};
      FindingBuf E(Outputs[I].Findings);
      ruleUseBeforeDef(C, E);
      ruleDeadFlagWrite(C, E);
      ruleUnreachable(C, E);
      ruleStackAlignment(C, E);
      rulePartialRegister(C, E);
      ruleAbiSummary(C, E);
      ruleArgValues(C, E);
      ruleIndirectAudit(C, E, Outputs[I]);
    });

    // Stage 4 (sequential): ordered merge.
    Merger M(Options, Diags, Result, Baseline);
    for (FnOutput &O : Outputs) {
      Result.IndirectTotal += O.IndirectTotal;
      Result.IndirectUnresolved += O.IndirectUnresolved;
      for (Finding &F : O.Findings)
        M.emit(std::move(F));
    }
    if (Result.IndirectTotal > 0)
      M.emit({DiagSeverity::Note, DiagCode::LintUnresolvedIndirect,
              "unit: " + std::to_string(Result.IndirectUnresolved) + " of " +
                  std::to_string(Result.IndirectTotal) +
                  " indirect jumps unresolved"});
    M.finish();
    if (!Options.BaselineOutPath.empty()) {
      std::string Error;
      if (!M.writeBaseline(Options.BaselineOutPath, Error)) {
        Result.InternalError = true;
        Result.InternalDetail = Error;
      }
    }
  } catch (const std::exception &Ex) {
    Result.InternalError = true;
    Result.InternalDetail = Ex.what();
  } catch (...) {
    Result.InternalError = true;
    Result.InternalDetail = "unknown exception";
  }
  return Result;
}

int mao::lintExitCode(const LintResult &Result) {
  if (Result.InternalError)
    return 2;
  return Result.clean() ? 0 : 1;
}
