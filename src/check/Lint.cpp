//===- check/Lint.cpp - Rule-based assembly linter ------------------------===//

#include "check/Lint.h"

#include "analysis/CFG.h"
#include "analysis/Dataflow.h"

#include <array>
#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <vector>

using namespace mao;

namespace {

/// Shared state handed to every rule for one function.
struct FnLintContext {
  MaoFunction &Fn;
  CFG &G;
  const LivenessResult &Live;
};

/// Collects findings, applying the werror promotion and counting.
class Emitter {
public:
  Emitter(const LintOptions &Options, DiagEngine &Diags, LintResult &Result)
      : Options(Options), Diags(Diags), Result(Result) {}

  void warn(DiagCode Code, std::string Message) {
    SourceLoc Loc{Options.FileName, 0};
    if (Options.WarningsAsErrors) {
      ++Result.Errors;
      Diags.error(Code, std::move(Message), Loc, "lint");
    } else {
      ++Result.Warnings;
      Diags.warning(Code, std::move(Message), Loc, "lint");
    }
  }

  void note(DiagCode Code, std::string Message) {
    ++Result.Notes;
    Diags.note(Code, std::move(Message), SourceLoc{Options.FileName, 0},
               "lint");
  }

private:
  const LintOptions &Options;
  DiagEngine &Diags;
  LintResult &Result;
};

std::string blockName(const BasicBlock &B) {
  if (!B.Labels.empty())
    return "'" + B.Labels.front() + "'";
  return "#" + std::to_string(B.Index);
}

bool blockIsInert(const BasicBlock &B) {
  for (EntryIter It : B.Insns)
    if (It->isInstruction() && !It->instruction().isNop())
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// R1: registers/flags directly read by an instruction before any definition
// reaches it, when the ABI does not define them at a call boundary (r10/r11
// are caller-clobbered scratch, xmm8-15 are argument-free and
// caller-clobbered, status flags are undefined). Computed as a forward
// definite-assignment fixpoint over direct instruction reads rather than
// backward liveness: an unresolved indirect jump makes liveness treat every
// register as live-in, which would drown the rule in false positives.
//===----------------------------------------------------------------------===//

void ruleUseBeforeDef(const FnLintContext &C, Emitter &E) {
  const std::vector<BasicBlock> &Blocks = C.G.blocks();
  if (Blocks.empty())
    return;
  // Supers readable at entry without a prior def: the six argument
  // registers, rax (vararg SSE count), rsp/rbp, the callee-saved set (a
  // read is how they get saved), and xmm0-7 (argument registers).
  static const RegMask EntryDefined =
      regMaskBit(Reg::RAX) | regMaskBit(Reg::RCX) | regMaskBit(Reg::RDX) |
      regMaskBit(Reg::RBX) | regMaskBit(Reg::RSP) | regMaskBit(Reg::RBP) |
      regMaskBit(Reg::RSI) | regMaskBit(Reg::RDI) | regMaskBit(Reg::R8) |
      regMaskBit(Reg::R9) | regMaskBit(Reg::R12) | regMaskBit(Reg::R13) |
      regMaskBit(Reg::R14) | regMaskBit(Reg::R15) |
      (0xffu << 16); // xmm0-7

  // Definitely-defined masks at block entry; meet is intersection over
  // predecessors, so the optimistic (all-defined) start descends to the
  // maximal fixpoint. Entry-unreachable blocks stay at top and report
  // nothing — the unreachable-block rule owns those.
  std::vector<RegMask> RegIn(Blocks.size(), ~RegMask(0));
  std::vector<uint8_t> FlagIn(Blocks.size(), FlagsAllStatus);
  RegIn[0] = EntryDefined;
  FlagIn[0] = 0;

  auto Transfer = [](const BasicBlock &B, RegMask &Regs, uint8_t &Flags,
                     RegMask *RegOffend, uint8_t *FlagOffend) {
    for (const EntryIter &It : B.Insns) {
      const InstructionEffects Eff = It->instruction().effects();
      if (RegOffend)
        *RegOffend |= Eff.RegUses & ~Regs;
      if (FlagOffend)
        *FlagOffend |= Eff.FlagsUse & FlagsAllStatus & static_cast<uint8_t>(~Flags);
      Regs |= Eff.RegDefs;
      Flags |= Eff.FlagsDef & FlagsAllStatus;
      // Calls and opaque instructions leave every register in *some*
      // state; treat everything as defined past them to stay quiet.
      if (Eff.Barrier) {
        Regs = ~RegMask(0);
        Flags = FlagsAllStatus;
      }
    }
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const BasicBlock &B : Blocks) {
      RegMask Regs = RegIn[B.Index];
      uint8_t Flags = FlagIn[B.Index];
      Transfer(B, Regs, Flags, nullptr, nullptr);
      for (unsigned S : B.Succs) {
        RegMask NewR = RegIn[S] & Regs;
        uint8_t NewF = FlagIn[S] & Flags;
        if (NewR != RegIn[S] || NewF != FlagIn[S]) {
          RegIn[S] = NewR;
          FlagIn[S] = NewF;
          Changed = true;
        }
      }
    }
  }

  RegMask RegOffenders = 0;
  uint8_t FlagOffenders = 0;
  for (const BasicBlock &B : Blocks) {
    RegMask Regs = RegIn[B.Index];
    uint8_t Flags = FlagIn[B.Index];
    Transfer(B, Regs, Flags, &RegOffenders, &FlagOffenders);
  }

  for (unsigned I = 0; I < 32; ++I)
    if (RegOffenders & (1u << I)) {
      static const char *Names[] = {
          "rax",  "rcx",  "rdx",  "rbx",  "rsp",   "rbp",   "rsi",   "rdi",
          "r8",   "r9",   "r10",  "r11",  "r12",   "r13",   "r14",   "r15",
          "xmm0", "xmm1", "xmm2", "xmm3", "xmm4",  "xmm5",  "xmm6",  "xmm7",
          "xmm8", "xmm9", "xmm10", "xmm11", "xmm12", "xmm13", "xmm14",
          "xmm15"};
      E.warn(DiagCode::LintUseBeforeDef,
             "function '" + C.Fn.name() + "': register %" +
                 std::string(Names[I]) +
                 " is read before any definition (not defined at function "
                 "entry by the ABI)");
    }
  if (FlagOffenders)
    E.warn(DiagCode::LintUseBeforeDef,
           "function '" + C.Fn.name() +
               "': status flags are read before any definition (flags: " +
               flagMaskToString(FlagOffenders) + ")");
}

//===----------------------------------------------------------------------===//
// R2: compare/test instructions whose flags nobody reads before the next
// flag definition — pure wasted work.
//===----------------------------------------------------------------------===//

void ruleDeadFlagWrite(const FnLintContext &C, Emitter &E) {
  for (const BasicBlock &B : C.G.blocks()) {
    InsnLiveness IL = perInstructionLiveness(C.G, B.Index, C.Live);
    for (size_t I = 0; I < B.Insns.size(); ++I) {
      const Instruction &Insn = B.Insns[I]->instruction();
      if (!Insn.writesFlagsOnly())
        continue;
      uint8_t Defs = Insn.effects().FlagsDef & FlagsAllStatus;
      if (Defs && (Defs & IL.FlagsLiveAfter[I]) == 0)
        E.warn(DiagCode::LintDeadFlagWrite,
               "function '" + C.Fn.name() + "', block " + blockName(B) +
                   ": '" + Insn.toString() +
                   "' computes flags that are never read");
    }
  }
}

//===----------------------------------------------------------------------===//
// R3: blocks no path from the entry reaches. Skipped when the function has
// unresolved indirect branches (unknown edges could reach anything).
//===----------------------------------------------------------------------===//

void ruleUnreachable(const FnLintContext &C, Emitter &E) {
  if (C.Fn.HasUnresolvedIndirect || C.G.blocks().empty())
    return;
  std::vector<bool> Seen(C.G.blocks().size(), false);
  std::vector<unsigned> Work = {0};
  Seen[0] = true;
  while (!Work.empty()) {
    unsigned B = Work.back();
    Work.pop_back();
    for (unsigned S : C.G.blocks()[B].Succs)
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  }
  for (const BasicBlock &B : C.G.blocks())
    if (!Seen[B.Index] && !blockIsInert(B))
      E.warn(DiagCode::LintUnreachableBlock,
             "function '" + C.Fn.name() + "': block " + blockName(B) +
                 " is unreachable");
}

//===----------------------------------------------------------------------===//
// R4: call sites where the stack is provably misaligned. The SysV ABI makes
// %rsp ≡ 8 (mod 16) at function entry (the call pushed the return address
// onto an aligned stack) and requires %rsp ≡ 0 (mod 16) at every call, i.e.
// a known push-depth ≡ 8 (mod 16). Depth tracking is abandoned (not
// reported) at instructions that modify %rsp in unmodelled ways.
//===----------------------------------------------------------------------===//

/// Net bytes this instruction pushes onto the stack, or nullopt when the
/// effect on %rsp is not statically known.
std::optional<int64_t> stackDelta(const Instruction &Insn) {
  const OpcodeInfo &Info = Insn.info();
  switch (Info.Kind) {
  case EncKind::Push:
    return 8;
  case EncKind::Pop:
    return -8;
  case EncKind::Call: // Balanced: callee pops the return address.
  case EncKind::Ret:
    return 0;
  default:
    break;
  }
  // Explicit %rsp adjustments: add/sub $imm, %rsp.
  if (Info.Kind == EncKind::AluRMI && Insn.Ops.size() == 2 &&
      Insn.Ops[1].isReg() && superReg(Insn.Ops[1].R) == Reg::RSP &&
      Insn.Ops[0].isConstImm()) {
    if (Insn.Mn == Mnemonic::SUB)
      return Insn.Ops[0].Imm;
    if (Insn.Mn == Mnemonic::ADD)
      return -Insn.Ops[0].Imm;
    return std::nullopt;
  }
  // Any other write to %rsp (mov, lea, leave, opaque) loses tracking.
  if (Insn.effects().RegDefs & regMaskBit(Reg::RSP))
    return std::nullopt;
  return 0;
}

void ruleStackAlignment(const FnLintContext &C, Emitter &E) {
  const auto &Blocks = C.G.blocks();
  if (Blocks.empty())
    return;
  constexpr int64_t Unknown = INT64_MIN;
  std::vector<int64_t> EntryDepth(Blocks.size(), INT64_MIN + 1); // unvisited
  EntryDepth[0] = 0;
  std::vector<unsigned> Work = {0};
  while (!Work.empty()) {
    unsigned BI = Work.back();
    Work.pop_back();
    int64_t Depth = EntryDepth[BI];
    for (EntryIter It : Blocks[BI].Insns) {
      if (!It->isInstruction())
        continue;
      const Instruction &Insn = It->instruction();
      if (Depth != Unknown && Insn.isCall() && ((Depth % 16) + 16) % 16 != 8)
        E.warn(DiagCode::LintStackMisaligned,
               "function '" + C.Fn.name() + "', block " +
                   blockName(Blocks[BI]) + ": call '" + Insn.toString() +
                   "' with %rsp misaligned (push depth " +
                   std::to_string(Depth) + " bytes, need ≡ 8 mod 16)");
      if (Depth != Unknown) {
        auto Delta = stackDelta(Insn);
        Depth = Delta ? Depth + *Delta : Unknown;
      }
    }
    for (unsigned S : Blocks[BI].Succs) {
      if (EntryDepth[S] == INT64_MIN + 1) {
        EntryDepth[S] = Depth;
        Work.push_back(S);
      } else if (EntryDepth[S] != Depth) {
        // Conflicting depths at a join: stop checking downstream rather
        // than guessing.
        if (EntryDepth[S] != Unknown) {
          EntryDepth[S] = Unknown;
          Work.push_back(S);
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// R5/R6: partial-register hazards. A narrow (8/16-bit) register write
// merges into the old super-register value; a following wider read stalls
// on the merge (R5), and the merge itself carries a false dependency on the
// previous producer of the register when nothing in the block defined it
// (R6, informational).
//===----------------------------------------------------------------------===//

/// Explicit register operands this instruction writes, with their views.
std::vector<Reg> writtenRegs(const Instruction &Insn) {
  std::vector<Reg> Out;
  const OpcodeInfo &Info = Insn.info();
  auto AddIfReg = [&](const Operand &Op) {
    if (Op.isReg())
      Out.push_back(Op.R);
  };
  switch (Info.Kind) {
  case EncKind::Mov:
  case EncKind::Movx:
  case EncKind::Lea:
  case EncKind::Cmovcc:
  case EncKind::SseMov:
  case EncKind::SseCvtMov:
  case EncKind::SseAlu:
    if (Insn.Ops.size() >= 2)
      AddIfReg(Insn.Ops[1]);
    break;
  case EncKind::AluRMI:
    if (Insn.Mn != Mnemonic::CMP && Insn.Ops.size() >= 2)
      AddIfReg(Insn.Ops[1]);
    break;
  case EncKind::ShiftRot:
  case EncKind::ImulMulti:
    if (!Insn.Ops.empty())
      AddIfReg(Insn.Ops.back());
    break;
  case EncKind::UnaryRM:
  case EncKind::Pop:
  case EncKind::Setcc:
  case EncKind::Bswap:
    if (!Insn.Ops.empty())
      AddIfReg(Insn.Ops[0]);
    break;
  case EncKind::Xchg:
    for (const Operand &Op : Insn.Ops)
      AddIfReg(Op);
    break;
  default:
    break;
  }
  return Out;
}

/// True when the destination is written without reading its old explicit
/// value (the cases where a zero-extending form would avoid the merge).
bool destIsWriteOnly(const Instruction &Insn) {
  switch (Insn.info().Kind) {
  case EncKind::Mov:
  case EncKind::Movx:
  case EncKind::Lea:
  case EncKind::Pop:
  case EncKind::Setcc:
    return true;
  default:
    return false;
  }
}

void rulePartialRegister(const FnLintContext &C, Emitter &E) {
  for (const BasicBlock &B : C.G.blocks()) {
    // Per super register: width of the last write in this block, or None.
    std::array<Width, 16> LastWrite;
    LastWrite.fill(Width::None);
    std::array<bool, 16> Written{};
    for (EntryIter It : B.Insns) {
      if (!It->isInstruction())
        continue;
      const Instruction &Insn = It->instruction();
      if (Insn.isOpaque() || Insn.isCall()) {
        LastWrite.fill(Width::None);
        Written.fill(Insn.isCall());
        continue;
      }
      // Wide reads of a super last written narrowly -> stall (R5).
      auto CheckRead = [&](Reg R, Width ReadW) {
        if (!regIsGpr(R))
          return;
        unsigned S = gprSuperIndex(R);
        Width WW = LastWrite[S];
        if ((WW == Width::B || WW == Width::W) &&
            (ReadW == Width::L || ReadW == Width::Q))
          E.warn(DiagCode::LintPartialRegStall,
                 "function '" + C.Fn.name() + "', block " + blockName(B) +
                     ": '" + Insn.toString() + "' reads %" + regName(R) +
                     " after a narrow write to the same register "
                     "(partial-register stall)");
      };
      for (const Operand &Op : Insn.Ops) {
        if (Op.isReg()) {
          bool IsDest = !writtenRegs(Insn).empty() &&
                        &Op == &Insn.Ops[Insn.Ops.size() - 1] &&
                        destIsWriteOnly(Insn);
          if (!IsDest)
            CheckRead(Op.R, regWidth(Op.R));
        } else if (Op.isMem()) {
          if (Op.Mem.Base != Reg::None && Op.Mem.Base != Reg::RIP)
            CheckRead(Op.Mem.Base, Width::Q);
          if (Op.Mem.Index != Reg::None)
            CheckRead(Op.Mem.Index, Width::Q);
        }
      }
      for (Reg R : writtenRegs(Insn)) {
        if (!regIsGpr(R))
          continue;
        unsigned S = gprSuperIndex(R);
        Width WW = regWidth(R);
        bool Narrow = WW == Width::B || WW == Width::W || regIsHighByte(R);
        if (Narrow && !Written[S] && destIsWriteOnly(Insn))
          E.note(DiagCode::LintFalseDependency,
                 "function '" + C.Fn.name() + "', block " + blockName(B) +
                     ": '" + Insn.toString() + "' merges into %" +
                     regName(superReg(R)) +
                     " without a prior full-width definition (false "
                     "dependency; consider a zero-extending move)");
        LastWrite[S] = regIsHighByte(R) ? Width::B : WW;
        Written[S] = true;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// R7: unresolved-indirect-jump audit with per-function counts — the paper's
// Sec. II resolution experiment as structured linter output.
//===----------------------------------------------------------------------===//

void ruleIndirectAudit(const FnLintContext &C, Emitter &E,
                       LintResult &Result) {
  const CFG::Stats &S = C.G.stats();
  unsigned Unresolved = C.G.unresolvedJumps().size();
  Result.IndirectTotal += S.IndirectJumps;
  Result.IndirectUnresolved += Unresolved;
  if (S.IndirectJumps == 0)
    return;
  if (Unresolved > 0)
    E.warn(DiagCode::LintUnresolvedIndirect,
           "function '" + C.Fn.name() + "': " + std::to_string(Unresolved) +
               " of " + std::to_string(S.IndirectJumps) +
               " indirect jumps unresolved (same-block: " +
               std::to_string(S.ResolvedSameBlock) +
               ", reaching-defs: " + std::to_string(S.ResolvedReachingDefs) +
               ")");
  else
    E.note(DiagCode::LintUnresolvedIndirect,
           "function '" + C.Fn.name() + "': all " +
               std::to_string(S.IndirectJumps) +
               " indirect jumps resolved (same-block: " +
               std::to_string(S.ResolvedSameBlock) +
               ", reaching-defs: " + std::to_string(S.ResolvedReachingDefs) +
               ")");
}

} // namespace

const std::vector<LintRuleInfo> &mao::lintRules() {
  static const std::vector<LintRuleInfo> Rules = {
      {"use-before-def", DiagCode::LintUseBeforeDef,
       "register or flag read with no prior definition"},
      {"dead-flag-write", DiagCode::LintDeadFlagWrite,
       "compare/test result never consumed"},
      {"unreachable-block", DiagCode::LintUnreachableBlock,
       "basic block unreachable from the function entry"},
      {"stack-misaligned", DiagCode::LintStackMisaligned,
       "call site with %rsp not 16-byte aligned"},
      {"partial-reg-stall", DiagCode::LintPartialRegStall,
       "wide read after narrow write of the same register"},
      {"false-dependency", DiagCode::LintFalseDependency,
       "narrow merge-write without prior full-width definition"},
      {"unresolved-indirect", DiagCode::LintUnresolvedIndirect,
       "indirect-jump resolution audit (paper Sec. II)"},
  };
  return Rules;
}

LintResult mao::lintUnit(MaoUnit &Unit, const LintOptions &Options,
                         DiagEngine &Diags) {
  LintResult Result;
  Emitter E(Options, Diags, Result);
  try {
    Unit.rebuildStructure();
    for (MaoFunction &Fn : Unit.functions()) {
      CFG G = CFG::build(Fn);
      resolveIndirectJumps(G);
      LivenessResult Live = computeLiveness(G);
      FnLintContext C{Fn, G, Live};
      ruleUseBeforeDef(C, E);
      ruleDeadFlagWrite(C, E);
      ruleUnreachable(C, E);
      ruleStackAlignment(C, E);
      rulePartialRegister(C, E);
      ruleIndirectAudit(C, E, Result);
    }
    if (Result.IndirectTotal > 0)
      E.note(DiagCode::LintUnresolvedIndirect,
             "unit: " + std::to_string(Result.IndirectUnresolved) + " of " +
                 std::to_string(Result.IndirectTotal) +
                 " indirect jumps unresolved");
  } catch (const std::exception &Ex) {
    Result.InternalError = true;
    Result.InternalDetail = Ex.what();
  } catch (...) {
    Result.InternalError = true;
    Result.InternalDetail = "unknown exception";
  }
  return Result;
}

int mao::lintExitCode(const LintResult &Result) {
  if (Result.InternalError)
    return 2;
  return Result.clean() ? 0 : 1;
}
