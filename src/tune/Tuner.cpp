//===- tune/Tuner.cpp - Simulator-guided autotuning search --------------------==//

#include "tune/Tuner.h"

#include "asm/Assembler.h"
#include "pass/MaoPass.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "support/Timeline.h"
#include "tune/ScoreCache.h"
#include "uarch/Runner.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <set>

using namespace mao;

unsigned mao::tuneBudgetFromString(const std::string &Text) {
  if (Text == "small")
    return 24;
  if (Text == "medium")
    return 64;
  if (Text == "large")
    return 192;
  char *End = nullptr;
  long N = std::strtol(Text.c_str(), &End, 10);
  if (End == Text.c_str() || *End != '\0' || N < 1)
    return 64;
  return static_cast<unsigned>(N);
}

namespace {

constexpr uint64_t WorstScore = std::numeric_limits<uint64_t>::max();

/// Outcome of evaluating one parameterization.
struct CandidateScore {
  bool Ok = false;
  uint64_t Cycles = WorstScore;
  std::string Error;
};

/// Scores every parameterization in \p Batch against \p Base. Candidates
/// fan out over a ThreadPool for the pipeline+assemble stage and through
/// scoreBatch for the simulations; every result lands in a per-index slot
/// and all reductions walk in index order, so the outcome is independent
/// of \p Jobs.
class BatchEvaluator {
public:
  BatchEvaluator(const MaoUnit &Base, std::string Entry, MeasureOptions MOpts,
                 ScoreCache &Cache, unsigned Jobs)
      : Base(Base), Entry(std::move(Entry)), MOpts(std::move(MOpts)),
        Cache(Cache), Jobs(std::max(1u, Jobs)) {}

  /// Simulations actually run so far (the memoization-miss count).
  unsigned simulations() const { return Sims; }
  unsigned deferredDuplicates() const { return Deferred; }

  std::vector<CandidateScore> evaluate(const std::vector<TuneParams> &Batch) {
    struct Slot {
      MaoUnit Unit;
      bool PipelineOk = false;
      uint64_t Key = 0;
      std::string Error;
    };
    std::vector<Slot> Slots(Batch.size());

    // Stage 1: run each candidate's pipeline on its own clone and hash the
    // assembled bytes. Per-candidate pipelines run with Jobs=1 — the
    // parallelism budget is spent across candidates, and ThreadPool is not
    // reentrant. A failing pass rolls back per shard (OnErrorPolicy::
    // Rollback), so one broken parameter degrades a candidate instead of
    // killing it.
    auto RunOne = [&](size_t I) {
      TimelineSpan Span("tune", "candidate#" + std::to_string(I));
      Slot &S = Slots[I];
      S.Unit = Base.clone();
      S.Unit.rebuildStructure();
      PipelineOptions POpts;
      POpts.OnError = OnErrorPolicy::Rollback;
      POpts.Jobs = 1;
      PipelineResult PR = runPasses(S.Unit, Batch[I].toRequests(), POpts);
      if (!PR.Ok) {
        S.Error = "pipeline failed: " + PR.Error;
        return;
      }
      ErrorOr<SectionBytes> Bytes = assembleUnit(S.Unit);
      if (!Bytes.ok()) {
        S.Error = "assembly failed: " + Bytes.message();
        return;
      }
      S.Key = Cache.keyFor(*Bytes);
      S.PipelineOk = true;
    };
    if (Jobs == 1 || Slots.size() <= 1) {
      for (size_t I = 0; I < Slots.size(); ++I)
        RunOne(I);
    } else {
      ThreadPool Pool(Jobs);
      Pool.parallelFor(Slots.size(), RunOne);
    }

    // Stage 2 (index order): consult the memo; the first candidate with a
    // given byte hash simulates, later ones wait for its result.
    std::vector<CandidateScore> Scores(Batch.size());
    std::vector<size_t> ToSim;
    std::set<uint64_t> PendingKeys;
    std::vector<size_t> DeferredSlots;
    for (size_t I = 0; I < Slots.size(); ++I) {
      if (!Slots[I].PipelineOk) {
        Scores[I].Error = Slots[I].Error;
        continue;
      }
      if (std::optional<uint64_t> Hit = Cache.lookup(Slots[I].Key)) {
        Scores[I].Ok = true;
        Scores[I].Cycles = *Hit;
        continue;
      }
      if (PendingKeys.insert(Slots[I].Key).second)
        ToSim.push_back(I);
      else
        DeferredSlots.push_back(I);
    }

    // Stage 3: simulate the unique misses through the batch scoring API.
    std::vector<MaoUnit *> SimUnits;
    SimUnits.reserve(ToSim.size());
    for (size_t I : ToSim)
      SimUnits.push_back(&Slots[I].Unit);
    std::vector<BatchScore> SimScores =
        scoreBatch(SimUnits, Entry, MOpts, Jobs);
    for (size_t J = 0; J < ToSim.size(); ++J) {
      const size_t I = ToSim[J];
      ++Sims;
      if (!SimScores[J].Ok) {
        Scores[I].Error = "simulation failed: " + SimScores[J].Error;
        continue;
      }
      Scores[I].Ok = true;
      Scores[I].Cycles = SimScores[J].Cycles;
      Cache.insert(Slots[I].Key, SimScores[J].Cycles);
    }

    // Stage 4: resolve within-batch duplicates from the fresh entries.
    for (size_t I : DeferredSlots) {
      ++Deferred;
      if (std::optional<uint64_t> Hit = Cache.lookup(Slots[I].Key)) {
        Scores[I].Ok = true;
        Scores[I].Cycles = *Hit;
      } else {
        Scores[I].Error = "simulation failed for identical bytes";
      }
    }
    return Scores;
  }

private:
  const MaoUnit &Base;
  std::string Entry;
  MeasureOptions MOpts;
  ScoreCache &Cache;
  unsigned Jobs;
  unsigned Sims = 0;
  unsigned Deferred = 0;
};

std::string resolveEntry(MaoUnit &Unit, const std::string &Requested) {
  if (!Requested.empty())
    return Unit.findFunction(Requested) ? Requested : std::string();
  if (Unit.findFunction("bench_main"))
    return "bench_main";
  if (!Unit.functions().empty())
    return Unit.functions().front().name();
  return std::string();
}

} // namespace

ErrorOr<TuneResult> mao::tuneUnit(MaoUnit &Unit, const TuneOptions &Options) {
  linkAllPasses();

  const std::string Entry = resolveEntry(Unit, Options.Entry);
  if (Entry.empty())
    return MaoStatus::error(
        Options.Entry.empty()
            ? std::string("--tune: the unit defines no functions to score")
            : "--tune-entry: no function named '" + Options.Entry + "'");

  MeasureOptions MOpts;
  if (Options.Config == "core2")
    MOpts.Config = ProcessorConfig::core2();
  else if (Options.Config == "opteron")
    MOpts.Config = ProcessorConfig::opteron();
  else
    return MaoStatus::error("--tune-config: unknown processor model '" +
                            Options.Config + "'");
  MOpts.MaxSteps = Options.MaxSteps;

  TuneResult R;
  R.Entry = Entry;
  R.Config = Options.Config;
  R.Seed = Options.Seed;
  R.Budget = std::max(2u, Options.Budget);

  SearchSpace Space(Unit, /*MaxSites=*/32, /*MaxFunctions=*/8,
                    Options.SynthAxis, Options.LayoutAxis);
  RandomSource Rng(Options.Seed);
  ScoreCache Cache(Options.Config);
  Cache.setByteBudget(Options.ScoreCacheBudgetBytes);
  BatchEvaluator Eval(Unit, Entry, MOpts, Cache, std::max(1u, Options.Jobs));

  std::set<std::string> Seen;
  TuneParams Best = Space.baselineParams();
  uint64_t BestCycles = WorstScore;
  TuneParams Current = Best;
  uint64_t CurrentCycles = WorstScore;
  unsigned StallRounds = 0;
  bool CurrentUnscored = false;

  auto Consume = [&](const std::vector<TuneParams> &Batch,
                     const std::vector<CandidateScore> &Scores) {
    // Index-ordered reduction; ties keep the earlier candidate.
    bool MovedCurrent = false;
    for (size_t I = 0; I < Batch.size(); ++I) {
      ++R.Evaluations;
      if (!Scores[I].Ok) {
        ++R.FailedCandidates;
        continue;
      }
      if (Scores[I].Cycles < BestCycles) {
        Best = Batch[I];
        BestCycles = Scores[I].Cycles;
        R.History.push_back(
            {R.Evaluations, Scores[I].Cycles, Batch[I].toString()});
      }
      if (Scores[I].Cycles < CurrentCycles) {
        Current = Batch[I];
        CurrentCycles = Scores[I].Cycles;
        MovedCurrent = true;
      }
    }
    return MovedCurrent;
  };

  // Round 0: the two reference points. The baseline (all passes off) must
  // be measurable — if the entry function cannot be emulated at all,
  // tuning is meaningless.
  {
    std::vector<TuneParams> Batch = {Space.baselineParams(),
                                     Space.defaultParams()};
    for (const TuneParams &P : Batch)
      Seen.insert(P.toString());
    std::vector<CandidateScore> Scores = Eval.evaluate(Batch);
    if (!Scores[0].Ok)
      return MaoStatus::error("--tune: cannot measure '" + Entry +
                              "': " + Scores[0].Error);
    R.BaselineCycles = Scores[0].Cycles;
    R.DefaultCycles = Scores[1].Ok ? Scores[1].Cycles : Scores[0].Cycles;
    Consume(Batch, Scores);
    Current = Best;
    CurrentCycles = BestCycles;
  }

  // Batch width is a fixed constant, NOT derived from Options.Jobs: the
  // candidate stream, restart points, and cache hit/miss counters must be
  // identical for every --mao-jobs value (the determinism contract — jobs
  // change wall-clock, nothing else). Jobs only fan the work out WITHIN a
  // batch.
  constexpr unsigned BatchWidth = 8;
  while (R.Evaluations < R.Budget) {
    const unsigned K = std::min(R.Budget - R.Evaluations, BatchWidth);
    std::vector<TuneParams> Batch;
    if (CurrentUnscored) {
      // A fresh restart point is evaluated alongside its first neighbours.
      if (Seen.insert(Current.toString()).second)
        Batch.push_back(Current);
      CurrentUnscored = false;
    }
    unsigned Attempts = 0;
    const unsigned MaxAttempts = K * 16;
    while (Batch.size() < K && Attempts++ < MaxAttempts) {
      TuneParams Cand = Space.mutate(Current, Rng);
      if (Seen.insert(Cand.toString()).second)
        Batch.push_back(std::move(Cand));
    }
    if (Batch.empty()) {
      // Neighbourhood exhausted: restart from a random point.
      Current = Space.randomParams(Rng);
      CurrentCycles = WorstScore;
      CurrentUnscored = true;
      ++R.Restarts;
      ++StallRounds;
      if (StallRounds > 8)
        break; // The space around every restart is fully explored.
      continue;
    }
    const bool Improved = Consume(Batch, Eval.evaluate(Batch));
    if (Improved) {
      StallRounds = 0;
    } else if (++StallRounds >= 2 && R.Evaluations < R.Budget) {
      Current = Space.randomParams(Rng);
      CurrentCycles = WorstScore;
      CurrentUnscored = true;
      ++R.Restarts;
      StallRounds = 0;
    }
  }

  R.TunedCycles = BestCycles;
  R.TunedPipeline = Best.toString();
  R.TunedRequests = Best.toRequests();
  R.ScoreCacheMisses = Eval.simulations();
  R.ScoreCacheHits =
      static_cast<uint64_t>(R.Evaluations - R.FailedCandidates) -
      Eval.simulations();

  // Publish the search totals. Everything here is derived from the
  // jobs-independent search trajectory (fixed batch width, index-ordered
  // cache consults), so the counters match the --tune-report determinism
  // guarantee.
  StatsRegistry &Stats = StatsRegistry::instance();
  Stats.counter("tune.candidates").add(R.Evaluations);
  Stats.counter("tune.failed_candidates").add(R.FailedCandidates);
  Stats.counter("tune.cache_served").add(R.ScoreCacheHits);
  Stats.counter("tune.simulations").add(R.ScoreCacheMisses);
  Stats.counter("tune.restarts").add(R.Restarts);
  Stats.counter("tune.improvements").add(R.History.size());
  if (R.TunedCycles < R.BaselineCycles)
    Stats.counter("tune.accepted").add();

  // Apply the winner to the caller's unit.
  PipelineOptions POpts;
  POpts.OnError = OnErrorPolicy::Rollback;
  POpts.Jobs = std::max(1u, Options.Jobs);
  PipelineResult PR = runPasses(Unit, R.TunedRequests, POpts);
  if (!PR.Ok)
    return MaoStatus::error("--tune: winning pipeline failed on the input: " +
                            PR.Error);
  return R;
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  return Out;
}

} // namespace

std::string mao::tuneReportJson(const TuneResult &R) {
  std::string Out = "{\n";
  auto Str = [&](const char *Key, const std::string &V, bool Comma = true) {
    Out += std::string("  \"") + Key + "\": \"" + jsonEscape(V) + "\"";
    Out += Comma ? ",\n" : "\n";
  };
  auto Num = [&](const char *Key, uint64_t V, bool Comma = true) {
    Out += std::string("  \"") + Key + "\": " + std::to_string(V);
    Out += Comma ? ",\n" : "\n";
  };
  Str("entry", R.Entry);
  Str("config", R.Config);
  Num("seed", R.Seed);
  Num("budget", R.Budget);
  Num("baseline_cycles", R.BaselineCycles);
  Num("default_cycles", R.DefaultCycles);
  Num("tuned_cycles", R.TunedCycles);
  {
    double Pct = 0.0;
    if (R.DefaultCycles > 0)
      Pct = 100.0 *
            (static_cast<double>(R.DefaultCycles) -
             static_cast<double>(R.TunedCycles)) /
            static_cast<double>(R.DefaultCycles);
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.2f", Pct);
    Out += std::string("  \"improvement_vs_default_pct\": ") + Buf + ",\n";
  }
  Str("tuned_pipeline", R.TunedPipeline);
  Num("evaluations", R.Evaluations);
  Num("restarts", R.Restarts);
  Num("failed_candidates", R.FailedCandidates);
  Num("score_cache_hits", R.ScoreCacheHits);
  Num("score_cache_misses", R.ScoreCacheMisses);
  Out += "  \"history\": [\n";
  for (size_t I = 0; I < R.History.size(); ++I) {
    const TuneImprovement &H = R.History[I];
    Out += "    {\"evaluation\": " + std::to_string(H.Evaluation) +
           ", \"cycles\": " + std::to_string(H.Cycles) + ", \"pipeline\": \"" +
           jsonEscape(H.Pipeline) + "\"}";
    Out += I + 1 < R.History.size() ? ",\n" : "\n";
  }
  Out += "  ]\n}\n";
  return Out;
}

MaoStatus mao::writeTuneReport(const TuneResult &R, const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return MaoStatus::error("--tune-report: cannot open '" + Path +
                            "' for writing");
  Out << tuneReportJson(R);
  if (!Out.good())
    return MaoStatus::error("--tune-report: write to '" + Path + "' failed");
  return MaoStatus::success();
}
