//===- tune/SearchSpace.cpp - Tuner parameterization model --------------------==//

#include "tune/SearchSpace.h"

#include <algorithm>

using namespace mao;

namespace {

PassRequest makeRequest(const char *Name,
                        std::vector<std::pair<std::string, std::string>> Opts = {}) {
  PassRequest Req;
  Req.PassName = Name;
  for (auto &[K, V] : Opts)
    Req.Options.set(K, V);
  return Req;
}

} // namespace

std::vector<PassRequest> TuneParams::toRequests() const {
  std::vector<PassRequest> Out;
  // Canonical order: strip compiler alignment first (so ALIGNSEL owns the
  // layout), run the peepholes (they shrink code, changing addresses),
  // schedule, then place explicit layout, and let the alignment-fitting
  // passes clean up whatever is left.
  if (NopKill)
    Out.push_back(makeRequest("NOPKILL"));
  if (Zee)
    Out.push_back(makeRequest("ZEE"));
  if (RedTest)
    Out.push_back(makeRequest("REDTEST"));
  if (RedMov)
    Out.push_back(makeRequest("REDMOV"));
  if (AddAdd)
    Out.push_back(makeRequest("ADDADD"));
  if (Synth)
    Out.push_back(makeRequest("SYNTH"));
  if (SchedWindow != kOff)
    Out.push_back(makeRequest(
        "SCHED", {{"window", std::to_string(SchedWindow)}}));
  // Layout passes run after the code-shrinking/reordering passes and
  // before per-function alignment: BBREORDER settles each function's
  // internal order, HOTCOLD settles the unit's function order, and the
  // alignment passes then fit the final layout.
  if (BbReorder)
    Out.push_back(makeRequest("BBREORDER"));
  if (HotCold)
    Out.push_back(makeRequest("HOTCOLD"));
  for (const FunctionTuneParams &F : PerFunction) {
    if (F.AlignPow >= 0)
      Out.push_back(makeRequest("ALIGNSEL", {{"func", F.Function},
                                             {"pow", std::to_string(F.AlignPow)}}));
    if (F.NopSite >= 0)
      Out.push_back(makeRequest("NOPIN", {{"func", F.Function},
                                          {"at", std::to_string(F.NopSite)},
                                          {"pad", std::to_string(F.NopPad)}}));
  }
  if (Loop16Max >= 0)
    Out.push_back(makeRequest("LOOP16", {{"maxsize", std::to_string(Loop16Max)}}));
  if (LsdMaxLines >= 0)
    Out.push_back(makeRequest("LSDOPT", {{"maxlines", std::to_string(LsdMaxLines)}}));
  if (BralignShift >= 0)
    Out.push_back(makeRequest("BRALIGN", {{"shift", std::to_string(BralignShift)}}));
  return Out;
}

std::string TuneParams::toString() const {
  std::string Out;
  for (const PassRequest &Req : toRequests()) {
    if (!Out.empty())
      Out += ",";
    Out += Req.PassName;
    if (!Req.Options.all().empty()) {
      Out += "(";
      bool First = true;
      for (const auto &[K, V] : Req.Options.all()) {
        if (!First)
          Out += ",";
        First = false;
        Out += K + "=" + V;
      }
      Out += ")";
    }
  }
  return Out;
}

SearchSpace::SearchSpace(const MaoUnit &Unit, unsigned MaxSites,
                         unsigned MaxFunctions, bool SynthAxis,
                         bool LayoutAxis)
    : HasSynthAxis(SynthAxis), HasLayoutAxis(LayoutAxis) {
  for (const MaoFunction &Fn : Unit.functions()) {
    if (Functions.size() >= MaxFunctions)
      break;
    FunctionAxis Axis;
    Axis.Name = Fn.name();
    Axis.Sites = static_cast<unsigned>(
        std::min<size_t>(Fn.countInstructions(), MaxSites));
    Functions.push_back(std::move(Axis));
  }
}

TuneParams SearchSpace::defaultParams() const {
  TuneParams P;
  for (const FunctionAxis &Axis : Functions)
    P.PerFunction.push_back({Axis.Name, -1, -1, 1});
  return P;
}

TuneParams SearchSpace::baselineParams() const {
  TuneParams P;
  P.Zee = P.RedTest = P.RedMov = P.AddAdd = P.NopKill = false;
  P.Synth = false;
  P.SchedWindow = TuneParams::kOff;
  P.Loop16Max = P.LsdMaxLines = P.BralignShift = -1;
  for (const FunctionAxis &Axis : Functions)
    P.PerFunction.push_back({Axis.Name, -1, -1, 1});
  return P;
}

namespace {

const int SchedChoices[] = {TuneParams::kOff, 0, 4, 8};
const int Loop16Choices[] = {-1, 8, 16, 32};
const int LsdChoices[] = {-1, 3, 4, 5};
const int BralignChoices[] = {-1, 4, 5, 6};
const int AlignPowChoices[] = {-1, 0, 2, 4, 5, 6};
const int PadChoices[] = {1, 2, 3, 4, 6, 8, 12, 15};

template <size_t N>
int pickOther(const int (&Choices)[N], int Current, RandomSource &Rng) {
  int Choice;
  do {
    Choice = Choices[Rng.nextBelow(N)];
  } while (Choice == Current && N > 1);
  return Choice;
}

template <size_t N> int pickAny(const int (&Choices)[N], RandomSource &Rng) {
  return Choices[Rng.nextBelow(N)];
}

} // namespace

TuneParams SearchSpace::randomParams(RandomSource &Rng) const {
  TuneParams P;
  P.Zee = Rng.nextChance(1, 2);
  P.RedTest = Rng.nextChance(1, 2);
  P.RedMov = Rng.nextChance(1, 2);
  P.AddAdd = Rng.nextChance(1, 2);
  P.NopKill = Rng.nextChance(1, 2);
  P.SchedWindow = pickAny(SchedChoices, Rng);
  P.Loop16Max = pickAny(Loop16Choices, Rng);
  P.LsdMaxLines = pickAny(LsdChoices, Rng);
  P.BralignShift = pickAny(BralignChoices, Rng);
  if (HasSynthAxis)
    P.Synth = Rng.nextChance(1, 2);
  if (HasLayoutAxis) {
    P.HotCold = Rng.nextChance(1, 2);
    P.BbReorder = Rng.nextChance(1, 2);
  }
  for (const FunctionAxis &Axis : Functions) {
    FunctionTuneParams F;
    F.Function = Axis.Name;
    F.AlignPow = pickAny(AlignPowChoices, Rng);
    // Directed NOPs are the sharpest axis; start them disabled half the
    // time so random restarts do not drown in pad placements.
    if (Axis.Sites > 0 && Rng.nextChance(1, 2)) {
      F.NopSite = static_cast<int>(Rng.nextBelow(Axis.Sites));
      F.NopPad = pickAny(PadChoices, Rng);
    }
    P.PerFunction.push_back(std::move(F));
  }
  return P;
}

TuneParams SearchSpace::mutate(const TuneParams &P, RandomSource &Rng) const {
  // A single axis draw can be invisible in canonical form: a NopPad move
  // while the pad is disabled, a site step pinned at a range boundary, or
  // a site axis on a function with no sites. Redraw until the neighbour is
  // observably different; the sequence is still a pure function of the RNG
  // state, so determinism is preserved.
  const std::string Canon = P.toString();
  TuneParams Q = P;
  for (int Attempt = 0; Attempt != 64; ++Attempt) {
    Q = mutateOnce(P, Rng);
    if (Q.toString() != Canon)
      break;
  }
  return Q;
}

TuneParams SearchSpace::mutateOnce(const TuneParams &P,
                                   RandomSource &Rng) const {
  TuneParams Q = P;
  // Axis inventory: 9 fixed global axes, then the gated groups (synth,
  // then the two layout axes), then 3 per function. Gated axes append so
  // the un-gated numbering — and with it every default tune trajectory —
  // is unchanged.
  size_t NextAxis = 9;
  const size_t SynthIdx = HasSynthAxis ? NextAxis++ : ~size_t{0};
  const size_t HotColdIdx = HasLayoutAxis ? NextAxis++ : ~size_t{0};
  const size_t BbReorderIdx = HasLayoutAxis ? NextAxis++ : ~size_t{0};
  const size_t GlobalAxes = NextAxis;
  const size_t TotalAxes = GlobalAxes + 3 * Functions.size();
  const size_t Axis = Rng.nextBelow(TotalAxes);
  if (Axis == SynthIdx) {
    Q.Synth = !Q.Synth;
    return Q;
  }
  if (Axis == HotColdIdx) {
    Q.HotCold = !Q.HotCold;
    return Q;
  }
  if (Axis == BbReorderIdx) {
    Q.BbReorder = !Q.BbReorder;
    return Q;
  }
  switch (Axis) {
  case 0:
    Q.Zee = !Q.Zee;
    return Q;
  case 1:
    Q.RedTest = !Q.RedTest;
    return Q;
  case 2:
    Q.RedMov = !Q.RedMov;
    return Q;
  case 3:
    Q.AddAdd = !Q.AddAdd;
    return Q;
  case 4:
    Q.NopKill = !Q.NopKill;
    return Q;
  case 5:
    Q.SchedWindow = pickOther(SchedChoices, Q.SchedWindow, Rng);
    return Q;
  case 6:
    Q.Loop16Max = pickOther(Loop16Choices, Q.Loop16Max, Rng);
    return Q;
  case 7:
    Q.LsdMaxLines = pickOther(LsdChoices, Q.LsdMaxLines, Rng);
    return Q;
  case 8:
    Q.BralignShift = pickOther(BralignChoices, Q.BralignShift, Rng);
    return Q;
  default:
    break;
  }
  const size_t FnIdx = (Axis - GlobalAxes) / 3;
  const size_t Sub = (Axis - GlobalAxes) % 3;
  const FunctionAxis &Info = Functions[FnIdx];
  FunctionTuneParams &F = Q.PerFunction[FnIdx];
  switch (Sub) {
  case 0:
    F.AlignPow = pickOther(AlignPowChoices, F.AlignPow, Rng);
    break;
  case 1:
    // Site moves: disable, or step/jump within range.
    if (Info.Sites == 0)
      break;
    if (F.NopSite < 0) {
      F.NopSite = static_cast<int>(Rng.nextBelow(Info.Sites));
    } else {
      switch (Rng.nextBelow(4)) {
      case 0:
        F.NopSite = -1; // Drop the pad.
        break;
      case 1:
        F.NopSite = std::max(0, F.NopSite - 1);
        break;
      case 2:
        F.NopSite = std::min<int>(static_cast<int>(Info.Sites) - 1,
                                  F.NopSite + 1);
        break;
      default:
        F.NopSite = static_cast<int>(Rng.nextBelow(Info.Sites));
        break;
      }
    }
    break;
  default:
    F.NopPad = pickOther(PadChoices, F.NopPad, Rng);
    break;
  }
  return Q;
}
