//===- tune/ScoreCache.h - Candidate score memoization ----------*- C++ -*-===//
///
/// \file
/// Memoization of simulator scores keyed by (processor config, hash of the
/// candidate's assembled section bytes). Distinct parameterizations often
/// lower to byte-identical programs (a toggle for a pass that fires zero
/// times, a NOP pad the relaxer already emitted), and the simulator is the
/// expensive stage of candidate evaluation — the cycle count is a pure
/// function of the bytes under a fixed config, so identical bytes never
/// simulate twice.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_TUNE_SCORECACHE_H
#define MAO_TUNE_SCORECACHE_H

#include "asm/Assembler.h"

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace mao {

class ScoreCache {
public:
  /// One cache instance covers one processor config; the config name is
  /// folded into every key so two caches (or one cleared and re-seeded)
  /// can never confuse configs.
  explicit ScoreCache(std::string ConfigName)
      : ConfigName(std::move(ConfigName)) {}

  /// FNV-1a over the config name and every section's name and bytes.
  uint64_t keyFor(const SectionBytes &Bytes) const;

  /// The memoized cycle count for \p Key, counting a hit or miss.
  std::optional<uint64_t> lookup(uint64_t Key) const;

  /// Memoizes \p Cycles for \p Key (first write wins; scores for one key
  /// are value-identical by construction, so order cannot matter).
  void insert(uint64_t Key, uint64_t Cycles);

  /// Caps the cache at \p Bytes of entry storage (16 bytes per entry);
  /// inserts over budget evict in FIFO order. 0 (the default) disables
  /// eviction — long tuning searches in a resident maod opt in via
  /// TuneOptions. Because scores for one key are value-identical, an
  /// eviction can only cost a re-simulation, never change a result.
  void setByteBudget(uint64_t Bytes);

  /// Accounting unit for the byte budget: one key/value pair.
  static constexpr uint64_t BytesPerEntry = 2 * sizeof(uint64_t);

  /// Exact hit/miss accounting: lookup(), insert() and stats() all run
  /// under the single cache mutex, and the tuner consults the cache from
  /// the orchestrator thread in candidate-index order (BatchEvaluator
  /// stage 2), so the counts are identical for every --mao-jobs value.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Evictions = 0;
    size_t Entries = 0;
  };
  Stats stats() const;

private:
  std::string ConfigName;
  mutable std::mutex M; ///< Guards all mutable state below.
  std::unordered_map<uint64_t, uint64_t> Map;
  std::deque<uint64_t> Order; ///< Insertion order for FIFO eviction.
  uint64_t ByteBudget = 0;    ///< 0 = unlimited.
  mutable uint64_t Hits = 0;
  mutable uint64_t Misses = 0;
  uint64_t Evictions = 0;
};

} // namespace mao

#endif // MAO_TUNE_SCORECACHE_H
