//===- tune/ScoreCache.h - Candidate score memoization ----------*- C++ -*-===//
///
/// \file
/// Memoization of simulator scores keyed by (processor config, hash of the
/// candidate's assembled section bytes). Distinct parameterizations often
/// lower to byte-identical programs (a toggle for a pass that fires zero
/// times, a NOP pad the relaxer already emitted), and the simulator is the
/// expensive stage of candidate evaluation — the cycle count is a pure
/// function of the bytes under a fixed config, so identical bytes never
/// simulate twice.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_TUNE_SCORECACHE_H
#define MAO_TUNE_SCORECACHE_H

#include "asm/Assembler.h"

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace mao {

class ScoreCache {
public:
  /// One cache instance covers one processor config; the config name is
  /// folded into every key so two caches (or one cleared and re-seeded)
  /// can never confuse configs.
  explicit ScoreCache(std::string ConfigName)
      : ConfigName(std::move(ConfigName)) {}

  /// FNV-1a over the config name and every section's name and bytes.
  uint64_t keyFor(const SectionBytes &Bytes) const;

  /// The memoized cycle count for \p Key, counting a hit or miss.
  std::optional<uint64_t> lookup(uint64_t Key) const;

  /// Memoizes \p Cycles for \p Key (first write wins; scores for one key
  /// are value-identical by construction, so order cannot matter).
  void insert(uint64_t Key, uint64_t Cycles);

  /// Exact hit/miss accounting: lookup(), insert() and stats() all run
  /// under the single cache mutex, and the tuner consults the cache from
  /// the orchestrator thread in candidate-index order (BatchEvaluator
  /// stage 2), so the counts are identical for every --mao-jobs value.
  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    size_t Entries = 0;
  };
  Stats stats() const;

private:
  std::string ConfigName;
  mutable std::mutex M; ///< Guards Map, Hits and Misses.
  std::unordered_map<uint64_t, uint64_t> Map;
  mutable uint64_t Hits = 0;
  mutable uint64_t Misses = 0;
};

} // namespace mao

#endif // MAO_TUNE_SCORECACHE_H
