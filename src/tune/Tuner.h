//===- tune/Tuner.h - Simulator-guided autotuning search --------*- C++ -*-===//
///
/// \file
/// The `mao --tune` engine: a seeded, deterministic greedy hill-climb with
/// random restarts over the SearchSpace, scoring every candidate with the
/// micro-architectural simulator (uarch/Runner) under a chosen
/// ProcessorConfig and memoizing scores by assembled-bytes hash
/// (tune/ScoreCache). This turns the simulator from a validation prop into
/// the optimizer's engine: instead of trusting one fixed heuristic
/// pipeline, the tuner *measures* parameterizations and keeps the one with
/// the fewest simulated cycles.
///
/// Determinism contract: the whole run — candidates generated, winner
/// chosen, report written — is a pure function of (input unit, seed,
/// budget, config, entry). Candidate batches are generated sequentially
/// from the seeded RNG before any evaluation, evaluated into per-index
/// slots (fanned out over support/ThreadPool), and reduced in index order
/// with ties broken toward the lowest index, so `--mao-jobs` changes
/// wall-clock only.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_TUNE_TUNER_H
#define MAO_TUNE_TUNER_H

#include "ir/MaoUnit.h"
#include "support/Options.h"
#include "support/Status.h"
#include "tune/SearchSpace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mao {

/// Tuning-run configuration.
struct TuneOptions {
  /// Function to emulate and score. Empty: "bench_main" when the unit has
  /// it, else the unit's first function.
  std::string Entry;
  /// Processor model: "core2" or "opteron".
  std::string Config = "core2";
  /// Search seed.
  uint64_t Seed = 1;
  /// Let the search toggle the SYNTH (synthesized window-rule) pass as an
  /// extra axis. Off by default so tune trajectories stay stable.
  bool SynthAxis = false;
  /// Let the search toggle the HOTCOLD and BBREORDER code-layout passes
  /// as extra axes. Off by default for the same reason.
  bool LayoutAxis = false;
  /// Candidate-evaluation budget (total parameterizations scored,
  /// including the baseline and default pipeline).
  unsigned Budget = 64;
  /// Worker count for candidate fan-out (>= 1); results are identical for
  /// every value.
  unsigned Jobs = 1;
  /// Emulation step limit per candidate.
  uint64_t MaxSteps = 50'000'000;
  /// Score-cache byte budget (0 = unlimited; see ScoreCache::setByteBudget).
  uint64_t ScoreCacheBudgetBytes = 0;
};

/// Budget presets for --tune-budget.
unsigned tuneBudgetFromString(const std::string &Text);

/// One improvement step of the search, for the report's history.
struct TuneImprovement {
  unsigned Evaluation = 0; ///< 1-based index of the scoring that found it.
  uint64_t Cycles = 0;
  std::string Pipeline;
};

/// The outcome of a tuning run.
struct TuneResult {
  std::string Entry;
  std::string Config;
  uint64_t Seed = 0;
  unsigned Budget = 0;
  uint64_t BaselineCycles = 0; ///< Unoptimized input.
  uint64_t DefaultCycles = 0;  ///< The repo's default pipeline.
  uint64_t TunedCycles = 0;    ///< The winner.
  std::string TunedPipeline;   ///< Canonical --mao-passes spelling.
  std::vector<PassRequest> TunedRequests;
  unsigned Evaluations = 0; ///< Parameterizations scored.
  unsigned Restarts = 0;
  unsigned FailedCandidates = 0; ///< Pipeline/assembly/emulation failures.
  uint64_t ScoreCacheHits = 0;
  uint64_t ScoreCacheMisses = 0;
  std::vector<TuneImprovement> History;
};

/// Runs the search over \p Unit and applies the winning pipeline to it, so
/// the caller can emit the tuned assembly directly. The unit must have its
/// derived structure built (functions visible). On success the unit holds
/// the tuned code; on error it is unchanged.
ErrorOr<TuneResult> tuneUnit(MaoUnit &Unit, const TuneOptions &Options);

/// Renders the machine-readable report (the --tune-report payload).
std::string tuneReportJson(const TuneResult &Result);

/// Writes tuneReportJson to \p Path.
MaoStatus writeTuneReport(const TuneResult &Result, const std::string &Path);

} // namespace mao

#endif // MAO_TUNE_TUNER_H
