//===- tune/SearchSpace.h - Tuner parameterization model --------*- C++ -*-===//
///
/// \file
/// The space the autotuner searches: one TuneParams value is a complete,
/// deterministic parameterization of the optimization pipeline — which
/// peepholes run, the scheduler window, the alignment passes' thresholds,
/// and per-function layout decisions (explicit `.p2align` choice, one
/// directed NOP pad at a chosen instruction site). A TuneParams lowers to
/// an ordinary pass-request pipeline via toRequests(), so a tuned result
/// is reproducible with `--mao-passes=<tuned_pipeline string>` and nothing
/// in the tuner bypasses the registry.
///
/// The axes mirror the paper's experiments: the NOP site/pad axis is
/// Fig. 1's nopinizer sweep done on purpose, the alignment-power axis is
/// Sec. III-C's cliffs, and the toggles expose the phase-ordering freedom
/// the paper observes between relaxation-coupled passes.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_TUNE_SEARCHSPACE_H
#define MAO_TUNE_SEARCHSPACE_H

#include "ir/MaoUnit.h"
#include "support/Options.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace mao {

/// Per-function layout knobs.
struct FunctionTuneParams {
  std::string Function;
  /// ALIGNSEL entry alignment: -1 leaves alignment untouched, 0 strips
  /// existing directives, 2..6 installs `.p2align N`.
  int AlignPow = -1;
  /// NOPIN directed site: -1 disables, otherwise the instruction index the
  /// pad is inserted before.
  int NopSite = -1;
  /// Directed pad length in bytes (1..15); meaningful when NopSite >= 0.
  int NopPad = 1;
};

/// One point in the search space. Defaults describe the repo's default
/// optimization pipeline, so TuneParams() == defaultParams() of a space
/// with no per-function overrides.
struct TuneParams {
  bool Zee = true;
  bool RedTest = true;
  bool RedMov = true;
  bool AddAdd = true;
  bool NopKill = false;
  /// SYNTH (the synthesized window-rule pass). Off in the default
  /// pipeline; only searchable when the space enables the axis.
  bool Synth = false;
  /// HOTCOLD / BBREORDER (the code-layout passes). Off in the default
  /// pipeline; only searchable when the space enables the layout axis.
  bool HotCold = false;
  bool BbReorder = false;
  /// SCHED window: kOff disables the pass, 0 schedules whole blocks, N > 0
  /// restricts reordering to N-instruction chunks.
  static constexpr int kOff = -2;
  int SchedWindow = kOff;
  int Loop16Max = 16;   ///< LOOP16 maxsize; -1 disables the pass.
  int LsdMaxLines = 4;  ///< LSDOPT maxlines; -1 disables the pass.
  int BralignShift = 5; ///< BRALIGN shift; -1 disables the pass.
  std::vector<FunctionTuneParams> PerFunction;

  /// Lowers to the pass pipeline this parameterization denotes, in the
  /// fixed canonical order (strip alignment, peepholes, schedule, explicit
  /// layout, alignment fitting).
  std::vector<PassRequest> toRequests() const;

  /// Canonical rendering in the --mao-passes spelling; equal strings mean
  /// equal parameterizations, and the string round-trips through
  /// PassRegistry::parsePipeline. Empty for the all-off baseline.
  std::string toString() const;
};

/// The searchable axes for one unit, derived from its function inventory.
class SearchSpace {
public:
  /// \p MaxSites caps the directed-NOP site axis per function and
  /// \p MaxFunctions caps how many functions get per-function axes (both
  /// keep neighbourhoods bounded on large units; axes are assigned to
  /// functions in unit order, which is deterministic).
  /// \p SynthAxis additionally lets the search toggle the SYNTH pass
  /// (--tune-synth-axis). Off by default: adding an axis changes the RNG
  /// draw sequence, and default tune trajectories must stay stable.
  /// \p LayoutAxis likewise gates the HOTCOLD and BBREORDER code-layout
  /// axes (--tune-layout-axis); both gated axis groups append after the
  /// fixed nine so every un-gated trajectory is unchanged.
  explicit SearchSpace(const MaoUnit &Unit, unsigned MaxSites = 32,
                       unsigned MaxFunctions = 8, bool SynthAxis = false,
                       bool LayoutAxis = false);

  /// The repo's default pipeline as a point in this space.
  TuneParams defaultParams() const;

  /// The all-passes-off baseline.
  TuneParams baselineParams() const;

  /// A uniformly random point (restart seeds).
  TuneParams randomParams(RandomSource &Rng) const;

  /// A neighbour of \p P: one axis moved to a different admissible value.
  /// The result's toString() always differs from P's (single-draw moves
  /// that are invisible in canonical form are redrawn).
  TuneParams mutate(const TuneParams &P, RandomSource &Rng) const;

private:
  TuneParams mutateOnce(const TuneParams &P, RandomSource &Rng) const;

  struct FunctionAxis {
    std::string Name;
    unsigned Sites = 0; ///< Directed-NOP site count (capped).
  };
  std::vector<FunctionAxis> Functions;
  bool HasSynthAxis = false;
  bool HasLayoutAxis = false;
};

} // namespace mao

#endif // MAO_TUNE_SEARCHSPACE_H
