//===- tune/ScoreCache.cpp - Candidate score memoization ----------------------==//

#include "tune/ScoreCache.h"

#include "passes/PeepholeEngine.h"

using namespace mao;

namespace {

constexpr uint64_t FnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t FnvPrime = 0x100000001b3ULL;

uint64_t fnvMix(uint64_t Hash, const void *Data, size_t Size) {
  const unsigned char *Bytes = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Size; ++I)
    Hash = (Hash ^ Bytes[I]) * FnvPrime;
  return Hash;
}

} // namespace

uint64_t ScoreCache::keyFor(const SectionBytes &Bytes) const {
  uint64_t Hash = fnvMix(FnvOffset, ConfigName.data(), ConfigName.size());
  // A score is a function of the bytes AND the rule table that produced
  // them: fold the active peephole-rule digest in so a table swap
  // (--synth-rules) can never serve a stale cycle count.
  const uint64_t RuleDigest = peepholeRuleDigest();
  Hash = fnvMix(Hash, &RuleDigest, sizeof(RuleDigest));
  for (const auto &[Name, Data] : Bytes) {
    Hash = fnvMix(Hash, Name.data(), Name.size());
    const uint64_t Size = Data.size();
    Hash = fnvMix(Hash, &Size, sizeof(Size));
    Hash = fnvMix(Hash, Data.data(), Data.size());
  }
  return Hash;
}

std::optional<uint64_t> ScoreCache::lookup(uint64_t Key) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++Misses;
    return std::nullopt;
  }
  ++Hits;
  return It->second;
}

void ScoreCache::insert(uint64_t Key, uint64_t Cycles) {
  std::lock_guard<std::mutex> Lock(M);
  if (!Map.emplace(Key, Cycles).second)
    return;
  Order.push_back(Key);
  if (ByteBudget == 0)
    return;
  const uint64_t MaxEntries = ByteBudget / BytesPerEntry;
  while (Map.size() > MaxEntries && Order.size() > 1) {
    Map.erase(Order.front());
    Order.pop_front();
    ++Evictions;
  }
}

void ScoreCache::setByteBudget(uint64_t Bytes) {
  std::lock_guard<std::mutex> Lock(M);
  ByteBudget = Bytes;
}

ScoreCache::Stats ScoreCache::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return {Hits, Misses, Evictions, Map.size()};
}
