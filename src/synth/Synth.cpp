//===- synth/Synth.cpp - Superoptimizer peephole-rule synthesis -------------===//
///
/// \file
/// Implementation of the harvest -> canonicalize -> enumerate -> prove ->
/// score -> emit pipeline (see Synth.h for the stage contracts and the
/// determinism story).
///
//===----------------------------------------------------------------------===//

#include "synth/Synth.h"

#include "analysis/CFG.h"
#include "asm/Parser.h"
#include "check/SemanticValidator.h"
#include "check/SymbolicEval.h"
#include "support/ThreadPool.h"
#include "uarch/Runner.h"
#include "workload/Workload.h"
#include "x86/Registers.h"
#include "x86/X86Defs.h"

#include <algorithm>
#include <cctype>
#include <climits>
#include <map>

namespace mao {
namespace synth {

namespace {

/// Concrete super registers the prover and scorer assign to template
/// variables %A..%D. The proof generalizes to any distinct-GPR binding:
/// nothing in the window vocabulary treats a specific GPR specially.
constexpr std::array<Reg, MaxRuleVars> ProveBinding = {Reg::RDI, Reg::RSI,
                                                       Reg::RDX, Reg::RCX};

ProcessorConfig configByName(const std::string &Name, bool &Ok) {
  Ok = true;
  if (Name == "core2")
    return ProcessorConfig::core2();
  if (Name == "opteron")
    return ProcessorConfig::opteron();
  Ok = false;
  return ProcessorConfig::core2();
}

//===----------------------------------------------------------------------===//
// Harvest.
//===----------------------------------------------------------------------===//

/// True when \p Insn can appear in a canonical window: vocabulary
/// mnemonic, 32/64-bit, no condition code, and reg/imm operands only.
bool isSynthesizable(const Instruction &Insn) {
  if (!isWindowVocabMnemonic(Insn.Mn) || Insn.CC != CondCode::None)
    return false;
  if (Insn.W != Width::L && Insn.W != Width::Q)
    return false;
  if (Insn.Ops.empty() || Insn.Ops.size() > 2)
    return false;
  for (const Operand &Op : Insn.Ops) {
    if (Op.isReg()) {
      if (!regIsGpr(Op.R) || regWidth(Op.R) != Insn.W ||
          gprWithWidth(superReg(Op.R), Insn.W) != Op.R)
        return false;
    } else if (Op.isConstImm()) {
      if (Op.Imm < INT32_MIN || Op.Imm > INT32_MAX)
        return false;
    } else {
      return false;
    }
  }
  return true;
}

/// Canonicalizes BB.Insns[I..I+Len) by register renaming (first
/// appearance order -> %A, %B, ...). Returns false when the window mixes
/// widths or needs more than MaxRuleVars registers.
bool canonicalizeWindow(const BasicBlock &BB, size_t I, size_t Len,
                        std::vector<TemplateInsn> &Out) {
  Out.clear();
  std::array<Reg, MaxRuleVars> VarOf{};
  unsigned NumVars = 0;
  const Width W = BB.Insns[I]->instruction().W;
  for (size_t K = 0; K < Len; ++K) {
    const Instruction &Insn = BB.Insns[I + K]->instruction();
    if (Insn.W != W)
      return false;
    TemplateInsn T;
    T.Mn = Insn.Mn;
    T.W = Insn.W;
    for (const Operand &Op : Insn.Ops) {
      TemplateOperand TO;
      if (Op.isReg()) {
        const Reg Super = superReg(Op.R);
        unsigned Var = NumVars;
        for (unsigned V = 0; V < NumVars; ++V)
          if (VarOf[V] == Super)
            Var = V;
        if (Var == NumVars) {
          if (NumVars == MaxRuleVars)
            return false;
          VarOf[NumVars++] = Super;
        }
        TO.K = TemplateOperand::Kind::RegVar;
        TO.Var = Var;
      } else {
        TO.K = TemplateOperand::Kind::Imm;
        TO.Value = Op.Imm;
      }
      T.Ops.push_back(TO);
    }
    Out.push_back(std::move(T));
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Prove.
//===----------------------------------------------------------------------===//

std::vector<Instruction>
renderConcrete(const std::vector<TemplateInsn> &Seq) {
  std::vector<Instruction> Out;
  Out.reserve(Seq.size());
  for (const TemplateInsn &T : Seq)
    Out.push_back(renderTemplateInsn(T, ProveBinding));
  return Out;
}

bool summaryIsPure(const BlockSummary &S) {
  return S.Supported && S.Stores.empty() && S.Calls.empty() &&
         S.Opaques.empty() && S.Term.Kind == TermKind::Fallthrough;
}

//===----------------------------------------------------------------------===//
// Verify (SemanticValidator embedding).
//===----------------------------------------------------------------------===//

struct FlagProbe {
  uint8_t Bit;
  const char *Setcc;
};
/// AF has no setcc encoding and stays covered by the symbolic oracle.
constexpr FlagProbe FlagProbes[] = {{FlagCF, "setb"},
                                    {FlagPF, "setp"},
                                    {FlagZF, "sete"},
                                    {FlagSF, "sets"},
                                    {FlagOF, "seto"}};

std::string embeddingFunction(const std::vector<TemplateInsn> &Seq,
                              unsigned NumVars, uint8_t DeadFlags) {
  std::string Body = "\t.text\n\t.type synth_check, @function\nsynth_check:\n";
  for (const Instruction &Insn : renderConcrete(Seq))
    Body += "\t" + Insn.toString() + "\n";
  // Make every bound register observable through a store...
  for (unsigned V = 0; V < NumVars; ++V)
    Body += "\tmovq %" + std::string(regName(ProveBinding[V])) + ", -" +
            std::to_string(8 * (V + 1)) + "(%rsp)\n";
  // ...and every unguarded status flag through setcc + store.
  int Slot = 64;
  for (const FlagProbe &P : FlagProbes) {
    if (DeadFlags & P.Bit)
      continue;
    Body += "\t" + std::string(P.Setcc) + " %r10b\n";
    Body += "\tmovb %r10b, -" + std::to_string(Slot++) + "(%rsp)\n";
  }
  Body += "\tret\n\t.size synth_check, .-synth_check\n";
  return Body;
}

//===----------------------------------------------------------------------===//
// Score.
//===----------------------------------------------------------------------===//

std::string scoringHarness(const std::vector<TemplateInsn> &Seq,
                           uint64_t Iterations) {
  std::string Text = "\t.text\n\t.globl bench_main\n"
                     "\t.type bench_main, @function\nbench_main:\n";
  Text += "\tmovq $" + std::to_string(Iterations) + ", %r15\n";
  const int64_t Seeds[MaxRuleVars] = {17, 29, 43, 57};
  for (unsigned V = 0; V < MaxRuleVars; ++V)
    Text += "\tmovq $" + std::to_string(Seeds[V]) + ", %" +
            std::string(regName(ProveBinding[V])) + "\n";
  Text += ".Lsynth_loop:\n";
  for (const Instruction &Insn : renderConcrete(Seq))
    Text += "\t" + Insn.toString() + "\n";
  Text += "\tsubq $1, %r15\n\tjne .Lsynth_loop\n";
  Text += "\tmovq $0, %rax\n\tret\n\t.size bench_main, .-bench_main\n";
  return Text;
}

//===----------------------------------------------------------------------===//
// Per-window pipeline (one fault-safe shard).
//===----------------------------------------------------------------------===//

struct WindowOutcome {
  bool HasRule = false;
  bool Failed = false; ///< Shard threw; window dropped.
  SynthRule Rule;      ///< Rule.Name assigned at merge time.
  uint64_t Tried = 0;
  uint64_t Proven = 0;
  uint64_t Verified = 0;
  uint64_t Scored = 0;
};

PeepholeRule makeWindowRule(const std::vector<TemplateInsn> &Pattern,
                            const std::vector<TemplateInsn> &Replacement,
                            uint8_t DeadFlags) {
  PeepholeRule R;
  R.Name = "SYN_TMP";
  R.Group = "synth";
  R.Strategy = RuleStrategy::Window;
  R.Pattern = PeepholeRule::renderTemplates(Pattern);
  R.Guards = renderWindowGuards(DeadFlags);
  R.Replacement = PeepholeRule::renderTemplates(Replacement);
  const MaoStatus S = compilePeepholeRule(R);
  (void)S; // By construction: rendered from compiled templates.
  return R;
}

WindowOutcome processWindow(const HarvestedWindow &HW,
                            const SynthOptions &Options) {
  WindowOutcome Out;
  Out.Rule.Support = HW.Support;

  struct ProvenCandidate {
    std::vector<TemplateInsn> Rep;
    uint8_t DeadFlags = 0;
  };
  std::vector<ProvenCandidate> Survivors;
  const std::vector<std::vector<TemplateInsn>> Candidates =
      enumerateCandidates(HW.Insns);
  Out.Tried = Candidates.size();
  for (const std::vector<TemplateInsn> &Cand : Candidates) {
    uint8_t DeadFlags = 0;
    if (!proveWindowRewrite(HW.Insns, Cand, DeadFlags))
      continue;
    ++Out.Proven;
    const PeepholeRule R = makeWindowRule(HW.Insns, Cand, DeadFlags);
    if (!verifyRuleWithValidator(R).ok())
      continue;
    ++Out.Verified;
    Survivors.push_back({Cand, DeadFlags});
    if (Survivors.size() >= 8) // Scoring budget per window.
      break;
  }
  if (Survivors.empty())
    return Out;

  Out.Scored = 1;
  const ErrorOr<uint64_t> Before =
      scoreWindowCycles(HW.Insns, Options.Config, Options.LoopIterations);
  if (!Before.ok())
    return Out;
  uint64_t BestCycles = *Before;
  const ProvenCandidate *Best = nullptr;
  for (const ProvenCandidate &PC : Survivors) {
    const ErrorOr<uint64_t> After =
        scoreWindowCycles(PC.Rep, Options.Config, Options.LoopIterations);
    if (!After.ok())
      continue;
    if (*After < BestCycles) { // Strict win only; ties keep the original.
      BestCycles = *After;
      Best = &PC;
    }
  }
  if (!Best)
    return Out;
  Out.HasRule = true;
  Out.Rule.Rule = makeWindowRule(HW.Insns, Best->Rep, Best->DeadFlags);
  Out.Rule.CyclesBefore = *Before;
  Out.Rule.CyclesAfter = BestCycles;
  return Out;
}

std::string upperMnemonicTag(const TemplateInsn &T) {
  std::string Tag = opcodeInfo(T.Mn).Name;
  Tag += widthSuffix(T.W);
  for (char &C : Tag)
    C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  return Tag;
}

} // namespace

std::vector<HarvestedWindow>
harvestWindows(const std::vector<std::pair<std::string, std::string>> &Corpus,
               unsigned MaxWindow, SynthStats *Stats) {
  std::map<std::string, HarvestedWindow> Unique;
  uint64_t Harvested = 0;
  for (const auto &[Name, Text] : Corpus) {
    ErrorOr<MaoUnit> UnitOr = parseAssembly(Text, nullptr, Name);
    if (!UnitOr.ok())
      continue;
    MaoUnit Unit = UnitOr.take();
    for (MaoFunction &Fn : Unit.functions()) {
      CFG Graph = CFG::build(Fn);
      for (const BasicBlock &BB : Graph.blocks()) {
        for (size_t I = 0; I < BB.Insns.size(); ++I) {
          for (size_t Len = 1; Len <= MaxWindow; ++Len) {
            if (I + Len > BB.Insns.size())
              break;
            bool AllOk = true;
            for (size_t K = 0; K < Len; ++K)
              AllOk = AllOk &&
                      isSynthesizable(BB.Insns[I + K]->instruction());
            if (!AllOk)
              break;
            std::vector<TemplateInsn> Canon;
            if (!canonicalizeWindow(BB, I, Len, Canon))
              continue;
            ++Harvested;
            const std::string Key = PeepholeRule::renderTemplates(Canon);
            HarvestedWindow &HW = Unique[Key];
            if (HW.Insns.empty())
              HW.Insns = std::move(Canon);
            ++HW.Support;
          }
        }
      }
    }
  }
  std::vector<HarvestedWindow> Out;
  Out.reserve(Unique.size());
  for (auto &[Key, HW] : Unique)
    Out.push_back(std::move(HW)); // Map order: sorted by canonical text.
  if (Stats) {
    Stats->WindowsHarvested += Harvested;
    Stats->UniqueWindows += Out.size();
  }
  return Out;
}

std::vector<std::vector<TemplateInsn>>
enumerateCandidates(const std::vector<TemplateInsn> &Window) {
  std::vector<std::vector<TemplateInsn>> Out;
  if (Window.empty())
    return Out;
  const Width W = Window[0].W;
  unsigned NumVars = 0;
  std::vector<int64_t> Imms = {0, 1};
  for (const TemplateInsn &T : Window)
    for (const TemplateOperand &O : T.Ops) {
      if (O.K == TemplateOperand::Kind::RegVar)
        NumVars = std::max(NumVars, O.Var + 1);
      else if (std::find(Imms.begin(), Imms.end(), O.Value) == Imms.end())
        Imms.push_back(O.Value);
    }
  std::sort(Imms.begin(), Imms.end());

  // Length 0: erase the window.
  Out.emplace_back();
  if (Window.size() < 2)
    return Out;

  // Length 1: one instruction over the window's registers and constants.
  auto RegOp = [&](unsigned V) {
    TemplateOperand O;
    O.K = TemplateOperand::Kind::RegVar;
    O.Var = V;
    return O;
  };
  auto ImmOp = [&](int64_t Value) {
    TemplateOperand O;
    O.K = TemplateOperand::Kind::Imm;
    O.Value = Value;
    return O;
  };
  auto TwoOp = [&](Mnemonic Mn, TemplateOperand Src, TemplateOperand Dst) {
    TemplateInsn T;
    T.Mn = Mn;
    T.W = W;
    T.Ops = {Src, Dst};
    return T;
  };
  constexpr Mnemonic TwoOpMnems[] = {Mnemonic::MOV, Mnemonic::ADD,
                                     Mnemonic::SUB, Mnemonic::AND,
                                     Mnemonic::OR,  Mnemonic::XOR};
  constexpr Mnemonic OneOpMnems[] = {Mnemonic::NEG, Mnemonic::NOT,
                                     Mnemonic::INC, Mnemonic::DEC};
  for (const Mnemonic Mn : TwoOpMnems)
    for (unsigned Dst = 0; Dst < NumVars; ++Dst) {
      for (unsigned Src = 0; Src < NumVars; ++Src) {
        if (Mn == Mnemonic::MOV && Src == Dst)
          continue; // Identity move; the empty candidate subsumes it.
        Out.push_back({TwoOp(Mn, RegOp(Src), RegOp(Dst))});
      }
      for (const int64_t Value : Imms)
        Out.push_back({TwoOp(Mn, ImmOp(Value), RegOp(Dst))});
    }
  for (const Mnemonic Mn : OneOpMnems)
    for (unsigned Dst = 0; Dst < NumVars; ++Dst) {
      TemplateInsn T;
      T.Mn = Mn;
      T.W = W;
      T.Ops = {RegOp(Dst)};
      Out.push_back({T});
    }
  return Out;
}

bool proveWindowRewrite(const std::vector<TemplateInsn> &Window,
                        const std::vector<TemplateInsn> &Candidate,
                        uint8_t &DeadFlags) {
  DeadFlags = 0;
  const std::vector<Instruction> A = renderConcrete(Window);
  const std::vector<Instruction> B = renderConcrete(Candidate);
  auto Pointers = [](const std::vector<Instruction> &Seq) {
    std::vector<const Instruction *> P;
    P.reserve(Seq.size());
    for (const Instruction &Insn : Seq)
      P.push_back(&Insn);
    return P;
  };
  SymTable Table;
  BlockEvaluator Eval(Table);
  const BlockSummary SA = Eval.evaluate(Pointers(A));
  const BlockSummary SB = Eval.evaluate(Pointers(B));
  if (!summaryIsPure(SA) || !summaryIsPure(SB))
    return false;
  for (unsigned R = 0; R < NumDenseRegs; ++R)
    if (SA.Regs[R] != SB.Regs[R])
      return false;
  for (unsigned F = 0; F < NumStatusFlags; ++F)
    if (SA.Flags[F] != SB.Flags[F])
      DeadFlags |= static_cast<uint8_t>(1u << F);
  return true;
}

MaoStatus verifyRuleWithValidator(const PeepholeRule &R) {
  if (R.Strategy != RuleStrategy::Window)
    return MaoStatus::error(R.Name + ": only Window rules are verifiable");
  const std::string BeforeText =
      embeddingFunction(R.Pat, R.NumVars, R.DeadFlags);
  const std::string AfterText =
      embeddingFunction(R.Rep, R.NumVars, R.DeadFlags);
  ErrorOr<MaoUnit> Before = parseAssembly(BeforeText, nullptr, "before.s");
  if (!Before.ok())
    return MaoStatus::error(R.Name + ": embedding parse: " +
                            Before.message());
  ErrorOr<MaoUnit> After = parseAssembly(AfterText, nullptr, "after.s");
  if (!After.ok())
    return MaoStatus::error(R.Name + ": embedding parse: " + After.message());
  const ValidationReport Report = validateSemantics(*Before, *After);
  if (!Report.Equivalent)
    return MaoStatus::error(R.Name +
                            ": validator divergence: " + Report.firstMessage());
  return MaoStatus::success();
}

MaoStatus verifyActiveSynthRules(std::string *Detail) {
  unsigned Checked = 0;
  for (const PeepholeRule &R : activePeepholeRules()) {
    if (R.Group != "synth")
      continue;
    ++Checked;
    if (R.Strategy != RuleStrategy::Window)
      return MaoStatus::error(R.Name + ": synth rules must be Window rules");
    uint8_t Derived = 0;
    if (!proveWindowRewrite(R.Pat, R.Rep, Derived))
      return MaoStatus::error(R.Name + ": symbolic oracle rejects the rule");
    if (Derived & ~R.DeadFlags)
      return MaoStatus::error(
          R.Name + ": guard too weak: derived " +
          renderWindowGuards(Derived) + " vs committed " +
          renderWindowGuards(R.DeadFlags));
    if (MaoStatus S = verifyRuleWithValidator(R); !S.ok())
      return S;
  }
  if (Detail)
    *Detail = std::to_string(Checked) + " synth rule(s) re-proven";
  return MaoStatus::success();
}

ErrorOr<uint64_t> scoreWindowCycles(const std::vector<TemplateInsn> &Seq,
                                    const std::string &Config,
                                    uint64_t Iterations) {
  bool ConfigOk = false;
  MeasureOptions MO;
  MO.Config = configByName(Config, ConfigOk);
  if (!ConfigOk)
    return MaoStatus::error("unknown processor config '" + Config + "'");
  ErrorOr<MaoUnit> UnitOr =
      parseAssembly(scoringHarness(Seq, Iterations), nullptr, "harness.s");
  if (!UnitOr.ok())
    return MaoStatus::error("scoring harness parse: " + UnitOr.message());
  MaoUnit Unit = UnitOr.take();
  return scoreFunctionCycles(Unit, "bench_main", MO);
}

ErrorOr<SynthResult> synthesizeRules(const SynthOptions &Options) {
  if (Options.MaxWindow < 1 || Options.MaxWindow > 3)
    return MaoStatus::error("--synth-window must be 1..3");
  bool ConfigOk = false;
  configByName(Options.Config, ConfigOk);
  if (!ConfigOk)
    return MaoStatus::error("unknown processor config '" + Options.Config +
                            "'");

  SynthResult Result;
  std::vector<std::pair<std::string, std::string>> Corpus = Options.Corpus;
  if (Options.IncludeWorkloads)
    Corpus.emplace_back(
        "workload:google",
        generateWorkloadAssembly(googleCorpusProfile(/*Scale=*/0.25)));
  Result.Stats.CorpusFiles = Corpus.size();

  const std::vector<HarvestedWindow> Windows =
      harvestWindows(Corpus, Options.MaxWindow, &Result.Stats);

  // Fan the windows out; each shard is fault-contained and writes only its
  // own slot, so the merge below is independent of the worker count.
  std::vector<WindowOutcome> Slots(Windows.size());
  ThreadPool Pool(std::max(1u, Options.Jobs));
  Pool.parallelFor(Windows.size(), [&](size_t I) {
    try {
      Slots[I] = processWindow(Windows[I], Options);
    } catch (...) {
      Slots[I] = WindowOutcome();
      Slots[I].Failed = true;
    }
  });

  std::vector<SynthRule> Winners;
  for (const WindowOutcome &Out : Slots) {
    Result.Stats.CandidatesTried += Out.Tried;
    Result.Stats.CandidatesProven += Out.Proven;
    Result.Stats.CandidatesVerified += Out.Verified;
    Result.Stats.RulesScored += Out.Scored;
    if (Out.Failed)
      ++Result.Stats.ShardFailures;
    if (Out.HasRule)
      Winners.push_back(Out.Rule);
  }

  // Keep the best-supported rules, then emit in canonical pattern order.
  std::stable_sort(Winners.begin(), Winners.end(),
                   [](const SynthRule &L, const SynthRule &R) {
                     if (L.Support != R.Support)
                       return L.Support > R.Support;
                     return L.Rule.Pattern < R.Rule.Pattern;
                   });
  if (Winners.size() > Options.MaxRules)
    Winners.resize(Options.MaxRules);
  std::sort(Winners.begin(), Winners.end(),
            [](const SynthRule &L, const SynthRule &R) {
              return L.Rule.Pattern < R.Rule.Pattern;
            });

  // Deterministic names + provenance.
  std::vector<std::string> Taken;
  for (SynthRule &SR : Winners) {
    std::string Base = "SYN";
    for (const TemplateInsn &T : SR.Rule.Pat)
      Base += "_" + upperMnemonicTag(T);
    std::string Name = Base;
    for (unsigned Tie = 2;
         std::find(Taken.begin(), Taken.end(), Name) != Taken.end(); ++Tie)
      Name = Base + "_" + std::to_string(Tie);
    Taken.push_back(Name);
    SR.Rule.Name = Name;
    SR.Rule.Provenance =
        "synth:maosynth seed=" + std::to_string(Options.Seed) +
        " support=" + std::to_string(SR.Support) +
        " win=" + std::to_string(SR.CyclesBefore) + "->" +
        std::to_string(SR.CyclesAfter);
  }
  Result.Stats.RulesEmitted = Winners.size();
  Result.Rules = std::move(Winners);

  // Render the complete table: compiled-in strategy rules + the winners.
  std::vector<PeepholeRule> Table;
  for (const PeepholeRule &R : builtinPeepholeRules())
    if (R.Group != "synth")
      Table.push_back(R);
  for (const SynthRule &SR : Result.Rules)
    Table.push_back(SR.Rule);
  Result.TableText = renderPeepholeRulesDef(Table);
  return Result;
}

} // namespace synth
} // namespace mao
