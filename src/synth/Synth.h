//===- synth/Synth.h - Superoptimizer peephole-rule synthesis ---*- C++ -*-===//
///
/// \file
/// The offline rule-synthesis loop behind `maosynth` (Souper/Minotaur
/// style, see PAPERS.md): MAO discovers and proves its own peephole rules
/// instead of hand-writing them, closing the loop the paper's
/// extensibility story implies. Five stages, all deterministic:
///
///   harvest      - slide short windows over the straight-line reg/imm
///                  instructions of the corpus (example files plus the
///                  workload generator's hot blocks) and canonicalize each
///                  by register renaming into the window-rule template
///                  language of PeepholeRules.def.
///   canonicalize - dedupe windows by canonical text (support counts kept;
///                  the hash-consed symbolic DAG then identifies windows
///                  that compute the same function).
///   enumerate    - goal-directed candidate replacements: every strictly
///                  shorter sequence over the window's registers and
///                  constants from a small ALU vocabulary.
///   prove        - the symbolic oracle (check/SymbolicEval): pattern and
///                  candidate evaluate into one shared SymTable; equal
///                  node ids for every register output prove equivalence,
///                  differing flag outputs become a dead-flags guard.
///                  Every accepted rewrite is then re-verified through
///                  SemanticValidator on an embedding that makes the
///                  unguarded state observable (stores + setcc).
///   score        - simulated cycles of a hot loop around the window on
///                  the uarch model; only strict wins are emitted.
///
/// Windows fan out across the support/ThreadPool with per-window fault
/// containment (a throwing shard drops that window, never the run), and
/// results merge in index order: the emitted table is byte-identical for
/// every --mao-jobs value.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_SYNTH_SYNTH_H
#define MAO_SYNTH_SYNTH_H

#include "passes/PeepholeEngine.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mao {
namespace synth {

/// Configuration of one synthesis run.
struct SynthOptions {
  /// Corpus sources as (name, assembly text) pairs.
  std::vector<std::pair<std::string, std::string>> Corpus;
  /// Also harvest the workload generator's google-corpus profile.
  bool IncludeWorkloads = true;
  /// Longest harvested window, in instructions (1..3).
  unsigned MaxWindow = 2;
  /// Cap on emitted rules (the best-supported wins are kept).
  unsigned MaxRules = 16;
  /// Recorded in rule provenance; the search itself is exhaustive and
  /// seed-independent.
  uint64_t Seed = 1;
  /// Worker count for the window fan-out; results are identical for every
  /// value (>= 1; 0 is treated as 1).
  unsigned Jobs = 1;
  /// Processor model for scoring: "core2" or "opteron".
  std::string Config = "core2";
  /// Scoring-harness loop trip count.
  uint64_t LoopIterations = 256;
};

/// One emitted rule plus the evidence that justified it.
struct SynthRule {
  PeepholeRule Rule;
  uint64_t Support = 0;      ///< Corpus windows matching the pattern.
  uint64_t CyclesBefore = 0; ///< Scoring-harness cycles of the pattern.
  uint64_t CyclesAfter = 0;  ///< Cycles of the replacement (strictly less).
};

/// Funnel counters of one run.
struct SynthStats {
  uint64_t CorpusFiles = 0;
  uint64_t WindowsHarvested = 0; ///< All windows, including duplicates.
  uint64_t UniqueWindows = 0;
  uint64_t CandidatesTried = 0;
  uint64_t CandidatesProven = 0;    ///< Passed the symbolic oracle.
  uint64_t CandidatesVerified = 0;  ///< Also passed SemanticValidator.
  uint64_t RulesScored = 0;         ///< Windows that reached the simulator.
  uint64_t RulesEmitted = 0;
  uint64_t ShardFailures = 0; ///< Windows dropped by fault containment.
};

/// Outcome of one synthesis run.
struct SynthResult {
  std::vector<SynthRule> Rules; ///< Winners in canonical (emitted) order.
  SynthStats Stats;
  /// The complete rendered PeepholeRules.def: the compiled-in strategy
  /// rules followed by the synthesized window rules.
  std::string TableText;
};

/// Runs the full pipeline. Fails only on unusable options; an empty corpus
/// or a corpus with no provable windows yields an empty rule list.
ErrorOr<SynthResult> synthesizeRules(const SynthOptions &Options);

//===----------------------------------------------------------------------===//
// Pipeline stages, exposed for SynthTest and maofuzz --synth.
//===----------------------------------------------------------------------===//

/// One canonicalized window with its corpus support.
struct HarvestedWindow {
  std::vector<TemplateInsn> Insns;
  uint64_t Support = 0;
};

/// Harvests and canonicalizes windows from \p Corpus (sorted by canonical
/// text, deduped). \p Stats (optional) accumulates the funnel counters.
std::vector<HarvestedWindow>
harvestWindows(const std::vector<std::pair<std::string, std::string>> &Corpus,
               unsigned MaxWindow, SynthStats *Stats);

/// Enumerates the candidate replacements for \p Window in deterministic
/// order: strictly shorter sequences over its registers and constants.
std::vector<std::vector<TemplateInsn>>
enumerateCandidates(const std::vector<TemplateInsn> &Window);

/// The symbolic oracle: true when \p Candidate computes the same final
/// registers as \p Window (no stores/calls/control flow on either side),
/// with \p DeadFlags receiving the status flags whose values differ (the
/// rewrite is sound only where those flags are dead).
bool proveWindowRewrite(const std::vector<TemplateInsn> &Window,
                        const std::vector<TemplateInsn> &Candidate,
                        uint8_t &DeadFlags);

/// Re-verifies a compiled Window rule end to end with SemanticValidator:
/// both sides are embedded in a function that stores every bound register
/// and captures every unguarded flag with setcc before returning, so the
/// validator's liveness rules observe exactly what the rule claims to
/// preserve. (AF has no setcc and is covered by the symbolic oracle.)
MaoStatus verifyRuleWithValidator(const PeepholeRule &R);

/// Re-proves every "synth"-group rule of the active table (oracle plus
/// validator; the derived guard must be covered by the committed guard).
/// This is the CI gate over the committed PeepholeRules.def.
MaoStatus verifyActiveSynthRules(std::string *Detail);

/// Simulated cycles of the scoring harness (a hot loop around \p Seq) on
/// \p Config. Deterministic.
ErrorOr<uint64_t> scoreWindowCycles(const std::vector<TemplateInsn> &Seq,
                                    const std::string &Config,
                                    uint64_t Iterations);

} // namespace synth
} // namespace mao

#endif // MAO_SYNTH_SYNTH_H
