//===- ir/MaoUnit.h - Translation unit, sections, functions -----*- C++ -*-===//
///
/// \file
/// MaoUnit owns the long list of IR entries for one assembly file and the
/// higher-level views over it: sections and functions, "with easy access to
/// these higher level concepts via corresponding iterators" (paper Sec. II).
///
/// A function that is split into multiple pieces by an intermittent section
/// change (the pattern compilers emit for C switch statements) is presented
/// as a single sequence of entries: MaoFunction holds one or more
/// [begin, end) ranges over the unit's entry list and its iterator walks
/// across the gaps transparently.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_IR_MAOUNIT_H
#define MAO_IR_MAOUNIT_H

#include "ir/MaoEntry.h"
#include "support/Arena.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mao {

/// The entry list lives in the unit's arena: every list node is bump-
/// allocated and recycled through the arena's free bins, so structural
/// edits never touch the global heap and teardown is one arena free.
using EntryList = std::list<MaoEntry, ArenaAllocator<MaoEntry>>;
using EntryIter = EntryList::iterator;
using ConstEntryIter = EntryList::const_iterator;

class MaoUnit;

/// One function recognized in the entry list.
class MaoFunction {
public:
  /// A contiguous piece of the function: [Begin, End) over the unit list.
  struct Range {
    EntryIter Begin;
    EntryIter End;
  };

  MaoFunction(std::string Name, MaoUnit *Unit)
      : Name(std::move(Name)), Unit(Unit) {}

  const std::string &name() const { return Name; }
  MaoUnit &unit() { return *Unit; }

  std::vector<Range> &ranges() { return Ranges; }
  const std::vector<Range> &ranges() const { return Ranges; }

  /// Iterator over all entries of the function, transparently crossing
  /// section splits.
  class entry_iterator {
  public:
    entry_iterator() = default;
    entry_iterator(const MaoFunction *Fn, size_t RangeIdx, EntryIter Pos)
        : Fn(Fn), RangeIdx(RangeIdx), Pos(Pos) {
      skipEmptyRanges();
    }

    MaoEntry &operator*() const { return *Pos; }
    MaoEntry *operator->() const { return &*Pos; }
    EntryIter underlying() const { return Pos; }

    entry_iterator &operator++() {
      ++Pos;
      skipEmptyRanges();
      return *this;
    }
    entry_iterator operator++(int) {
      entry_iterator Tmp = *this;
      ++*this;
      return Tmp;
    }

    bool operator==(const entry_iterator &O) const {
      return RangeIdx == O.RangeIdx && (atEnd() || Pos == O.Pos);
    }
    bool operator!=(const entry_iterator &O) const { return !(*this == O); }

  private:
    bool atEnd() const { return RangeIdx >= Fn->Ranges.size(); }
    void skipEmptyRanges() {
      while (!atEnd() && Pos == Fn->Ranges[RangeIdx].End) {
        ++RangeIdx;
        if (!atEnd())
          Pos = Fn->Ranges[RangeIdx].Begin;
      }
    }

    const MaoFunction *Fn = nullptr;
    size_t RangeIdx = 0;
    EntryIter Pos;
  };

  entry_iterator begin() const {
    if (Ranges.empty())
      return end();
    return entry_iterator(this, 0, Ranges[0].Begin);
  }
  entry_iterator end() const {
    return entry_iterator(this, Ranges.size(), EntryIter());
  }

  /// Collects pointers to all instruction entries, in order. The common
  /// access pattern for passes that index instructions.
  std::vector<MaoEntry *> instructionEntries() const;

  /// Counts instruction entries.
  size_t countInstructions() const;

  /// Set when the CFG builder could not resolve an indirect branch in this
  /// function; passes decide whether to proceed (paper Sec. II).
  bool HasUnresolvedIndirect = false;
  /// Set when the function contains opaque (unmodelled) instructions, which
  /// make computed addresses estimates rather than exact values.
  bool HasOpaqueInstructions = false;

private:
  std::string Name;
  MaoUnit *Unit;
  std::vector<Range> Ranges;
};

/// A section and the entries it spans (possibly several disjoint pieces,
/// since `.text` may be re-entered).
struct SectionInfo {
  std::string Name;
  bool IsCode = false;
  std::vector<MaoFunction::Range> Ranges;
};

/// The IR for one assembly file.
class MaoUnit {
public:
  MaoUnit()
      : IrArena(std::make_shared<Arena>()),
        Interner(std::make_unique<StringInterner>(IrArena.get())),
        Entries(ArenaAllocator<MaoEntry>(IrArena.get())) {}
  MaoUnit(const MaoUnit &) = delete;
  MaoUnit &operator=(const MaoUnit &) = delete;
  // Sections and functions hold iterators into the entry list (including
  // end(), which does not survive a list move) and back-pointers to the
  // unit, so moves must rebuild the derived structure. The entry list's
  // allocator propagates on move, so the nodes stay where they are and the
  // arena travels with them (O(1), no per-node copy); the moved-from unit
  // is reset to a fresh arena so it remains usable.
  MaoUnit(MaoUnit &&Other) noexcept : MaoUnit() { *this = std::move(Other); }
  MaoUnit &operator=(MaoUnit &&Other) noexcept {
    if (this == &Other)
      return *this;
    // Order matters: destroy our nodes while our own arena is still alive
    // (the list move-assign clears *this through the old allocator first),
    // then drop the old arena.
    Entries = std::move(Other.Entries);
    IrArena = std::move(Other.IrArena);
    Interner = std::move(Other.Interner);
    NextEntryId = Other.NextEntryId;
    NextLabelId = Other.NextLabelId;
    Other.IrArena = std::make_shared<Arena>();
    Other.Interner = std::make_unique<StringInterner>(Other.IrArena.get());
    Other.Entries = EntryList(ArenaAllocator<MaoEntry>(Other.IrArena.get()));
    Other.Functions.clear();
    Other.Sections.clear();
    Other.Labels.clear();
    Other.StructureDirty = false;
    // The derived views are rebuilt lazily on first access, not here: a
    // unit is moved three times on its way out of the parser (into the
    // status wrapper, then to the caller), and eager rebuilding made that
    // the single largest cost of parsing a small file.
    Functions.clear();
    Sections.clear();
    Labels.clear();
    StructureDirty = true;
    return *this;
  }

  /// Deep-copies the unit (entry list and label counters) WITHOUT
  /// rebuilding the derived structure on the copy. Used by the
  /// transactional pass runner to snapshot the IR before a pass so a
  /// failing pass can be rolled back: restoring through move-assignment
  /// rebuilds the views, and a discarded snapshot never needs them. Call
  /// rebuildStructure() on the copy before reading its sections/functions.
  MaoUnit clone() const;

  EntryList &entries() { return Entries; }
  const EntryList &entries() const { return Entries; }

  /// Appends an entry (used by the parser and the workload generator) and
  /// returns an iterator to it.
  ///
  /// append/insertBefore/insertAfter/erase are safe to call concurrently
  /// from sharded function passes: std::list nodes at disjoint positions
  /// are independent, but the list's size bookkeeping and the boundary
  /// links between adjacent shards are shared, so all structural edits
  /// serialize on one internal mutex. Concurrent *readers* of a shard's
  /// own entries need no lock — a shard never touches another shard's
  /// nodes (see DESIGN.md, "Sharded pass pipeline" for the full contract).
  EntryIter append(MaoEntry Entry);

  /// Constructs an entry in place at the end of the list from a payload
  /// (Instruction, Directive, or Kind::Label + name) — one payload move,
  /// no intermediate MaoEntry. Locking and Id assignment match append();
  /// this is the parser's hot path, where entries arrive one per line.
  template <class... ArgsT> EntryIter emplaceBack(ArgsT &&...Args) {
    std::lock_guard<std::mutex> Lock(StructuralM);
    EntryIter It = Entries.emplace(Entries.end(),
                                   std::forward<ArgsT>(Args)...);
    It->Id = nextId();
    return It;
  }

  /// Inserts before \p Pos; returns an iterator to the inserted entry.
  EntryIter insertBefore(EntryIter Pos, MaoEntry Entry);
  /// Inserts after \p Pos; returns an iterator to the inserted entry.
  EntryIter insertAfter(EntryIter Pos, MaoEntry Entry);
  /// Removes \p Pos; returns the iterator following it.
  EntryIter erase(EntryIter Pos);

  /// Moves the entry range [First, Last) to immediately before \p Before
  /// in O(1) (a list splice): iterators into the moved range stay valid
  /// and travel with their entries. \p Before must not lie inside
  /// [First, Last). Like every structural edit, this leaves the
  /// section/function views stale until rebuildStructure().
  void moveRange(EntryIter First, EntryIter Last, EntryIter Before);

  /// Entry-ID block size handed to each shard of a sharded function pass.
  /// Generous: a shard exhausting its block falls back to the shared
  /// counter, which stays correct but is no longer independent of shard
  /// scheduling.
  static constexpr uint32_t ShardIdBlockSize = 4096;

  /// Reserves \p Count consecutive ID blocks of \p BlockSize and returns
  /// the first ID of block 0. The sharded pass runner grants block i to
  /// function i so that entry IDs are a function of (pass, function),
  /// never of worker scheduling — IDs feed analysis output (e.g. SIMADDR
  /// records), so they must be identical across --mao-jobs values. Not
  /// thread-safe; call before the parallel region.
  uint32_t reserveIdBlocks(size_t Count, uint32_t BlockSize);

  /// (Re)computes sections and functions from the entry list. Passes that
  /// restructure function boundaries re-invoke it. Structural edits
  /// (append/insert/erase) deliberately do NOT schedule a rebuild — the
  /// views go stale until the caller rebuilds, which sharded passes rely
  /// on. Moving or cloning a unit marks the views dirty instead, and the
  /// accessors below rebuild on first use; a dirty unit must not be read
  /// from several threads until one caller has rebuilt it (the pipeline
  /// rebuilds before every parallel region already).
  void rebuildStructure();

  std::vector<MaoFunction> &functions() {
    ensureStructure();
    return Functions;
  }
  const std::vector<MaoFunction> &functions() const {
    ensureStructure();
    return Functions;
  }
  std::vector<SectionInfo> &sections() {
    ensureStructure();
    return Sections;
  }

  /// Finds a function by name; null when absent.
  MaoFunction *findFunction(const std::string &Name);

  /// Label name -> defining entry. Rebuilt by rebuildStructure(); passes
  /// inserting labels must re-run it or register labels explicitly.
  /// Keys are views into entry-owned storage (stable: list nodes never
  /// move) and must not outlive the unit. Duplicate definitions bind to
  /// the FIRST occurrence — the one branch fall-through reaches — matching
  /// the emulator; the parser diagnoses redefinitions (MAO-parse-
  /// duplicate-label) and the verifier rejects them outright.
  const std::unordered_map<std::string_view, MaoEntry *> &labelMap() const {
    ensureStructure();
    return Labels;
  }

  /// The unit's string-interning pool (arena-backed). The parser interns
  /// every label and symbol name through this so equal names share one
  /// allocation; interned views live exactly as long as the unit.
  StringInterner &interner() { return *Interner; }

  /// The unit's arena (IR nodes + interned strings); exposed for stats.
  const Arena &arena() const { return *IrArena; }

  /// Generates a fresh MAO-local label name (".LMAO<n>").
  std::string makeUniqueLabel();

  /// Renders the whole unit as assembly text.
  std::string toString() const;

private:
  friend class ScopedShardIds;

  /// Next entry ID: from the calling thread's armed shard block when one
  /// is active for this unit, else from the shared counter. Only called
  /// with StructuralM held (all callers are the structural editors).
  uint32_t nextId();

  /// Rebuilds the derived views if a move/clone left them dirty. Logically
  /// const: the views are a cache over the entry list.
  void ensureStructure() const {
    if (StructureDirty)
      const_cast<MaoUnit *>(this)->rebuildStructure();
  }

  /// The arena owns the storage behind Entries' nodes and the interner's
  /// strings; declared before both so it is destroyed last.
  std::shared_ptr<Arena> IrArena;
  std::unique_ptr<StringInterner> Interner;
  EntryList Entries;
  std::vector<MaoFunction> Functions;
  std::vector<SectionInfo> Sections;
  std::unordered_map<std::string_view, MaoEntry *> Labels;
  uint32_t NextEntryId = 1;
  uint32_t NextLabelId = 0;
  /// True when a move or clone invalidated the derived views; cleared by
  /// rebuildStructure(). False on a fresh unit: its (empty) views match
  /// its (empty) entry list, and callers that append entries read empty
  /// views until they rebuild, exactly as before views went lazy.
  bool StructureDirty = false;
  /// Serializes structural edits (insert/erase/append). Deliberately not
  /// moved by the move operations — a unit is never moved while shards
  /// are running (whole-unit passes are pipeline barriers).
  std::mutex StructuralM;
};

/// RAII guard arming a pre-reserved entry-ID range for the current thread:
/// while alive, \p Unit's nextId() draws from [Begin, End) instead of the
/// shared counter. The sharded pass runner wraps each shard in one of
/// these so the IDs a shard assigns depend only on its function index.
/// Nests (the previous allocator is restored on destruction).
class ScopedShardIds {
public:
  ScopedShardIds(MaoUnit &Unit, uint32_t Begin, uint32_t End);
  ~ScopedShardIds();
  ScopedShardIds(const ScopedShardIds &) = delete;
  ScopedShardIds &operator=(const ScopedShardIds &) = delete;

private:
  friend class MaoUnit;
  struct Alloc {
    MaoUnit *Unit;
    uint32_t Next;
    uint32_t End;
  };
  Alloc Saved;
  static thread_local Alloc Active;
};

} // namespace mao

#endif // MAO_IR_MAOUNIT_H
