//===- ir/Verifier.cpp - IR and layout consistency verifier ------------------==//

#include "ir/Verifier.h"

#include "analysis/Relaxer.h"
#include "support/FaultInjection.h"
#include "x86/EncodeCache.h"
#include "x86/Encoder.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

using namespace mao;

namespace {

bool isLocalLabelName(std::string_view Name) {
  return Name.substr(0, 2) == ".L";
}

/// Extracts a leading label name from a directive argument like
/// ".Lcase0" or ".Lcase0+8"; returns "" when the arg is not symbolic.
/// Returns a view into \p Arg (valid while the directive lives).
std::string_view leadingSymbol(const std::string &Arg) {
  size_t I = 0;
  auto IsLabelChar = [](char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
           (C >= '0' && C <= '9') || C == '_' || C == '.' || C == '$' ||
           C == '@';
  };
  while (I < Arg.size() && IsLabelChar(Arg[I]))
    ++I;
  if (I == 0 || (Arg[0] >= '0' && Arg[0] <= '9') || Arg[0] == '.')
    return I > 0 && Arg.rfind(".L", 0) == 0 ? std::string_view(Arg).substr(0, I)
                                            : std::string_view();
  return std::string_view(Arg).substr(0, I);
}

/// Collects every issue of one verification run.
class Checker {
public:
  Checker(MaoUnit &Unit, const VerifierOptions &Options, DiagEngine *Diags,
          const std::string &Context)
      : Unit(Unit), Options(Options), Diags(Diags), Context(Context) {}

  VerifierReport run();

private:
  void issue(DiagCode Code, std::string Message);
  bool full() const { return Report.Issues.size() >= Options.MaxIssues; }

  void checkStructure();
  void checkLabels();
  void checkEncodings();
  void checkLayout();

  /// Returns the index of \p It in the entry list, Entries.size() for
  /// end(), or SIZE_MAX when the iterator does not belong to the list.
  size_t indexOf(EntryIter It) const {
    if (It == UnitEnd)
      return Index.size();
    auto Found = Index.find(&*It);
    return Found == Index.end() ? SIZE_MAX : Found->second;
  }

  MaoUnit &Unit;
  const VerifierOptions &Options;
  DiagEngine *Diags;
  const std::string &Context;
  VerifierReport Report;

  std::unordered_map<const MaoEntry *, size_t> Index;
  EntryIter UnitEnd;
};

void Checker::issue(DiagCode Code, std::string Message) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = Code;
  D.PassName = Context;
  D.Message = std::move(Message);
  if (Diags)
    Diags->report(D);
  Report.Issues.push_back(std::move(D));
}

void Checker::checkStructure() {
  size_t SectionDirectives = 0;
  for (const MaoEntry &E : Unit.entries())
    if (E.isDirective()) {
      DirKind K = E.directive().Kind;
      if (K == DirKind::Text || K == DirKind::Data || K == DirKind::Bss ||
          K == DirKind::Section)
        ++SectionDirectives;
    }

  // Validate every range endpoint and collect function ranges for the
  // cross-function disjointness check.
  auto CheckRanges = [&](const std::vector<MaoFunction::Range> &Ranges,
                         const std::string &What,
                         std::vector<std::pair<size_t, size_t>> *Out,
                         size_t *Covered) {
    size_t PrevEnd = 0;
    bool PrevValid = false;
    for (const MaoFunction::Range &R : Ranges) {
      if (full())
        return;
      size_t B = indexOf(R.Begin), E = indexOf(R.End);
      if (B == SIZE_MAX || E == SIZE_MAX) {
        issue(DiagCode::VerifyBadStructure,
              What + ": range endpoint is not an entry of the unit");
        return;
      }
      if (B > E) {
        issue(DiagCode::VerifyBadStructure,
              What + ": range begin after range end");
        return;
      }
      if (PrevValid && B < PrevEnd) {
        issue(DiagCode::VerifyBadStructure,
              What + ": ranges overlap or are out of order");
        return;
      }
      PrevEnd = E;
      PrevValid = true;
      if (Out)
        Out->emplace_back(B, E);
      if (Covered)
        *Covered += E - B;
    }
  };

  size_t SectionCovered = 0;
  for (SectionInfo &Sec : Unit.sections()) {
    if (full())
      return;
    CheckRanges(Sec.Ranges, "section " + Sec.Name, nullptr, &SectionCovered);
  }
  // Every entry lives in exactly one section range, except the section
  // directives that delimit them.
  if (!full() &&
      SectionCovered + SectionDirectives != Unit.entries().size())
    issue(DiagCode::VerifyBadStructure,
          "section ranges cover " + std::to_string(SectionCovered) +
              " entries plus " + std::to_string(SectionDirectives) +
              " section directives, but the unit has " +
              std::to_string(Unit.entries().size()) + " entries");

  std::vector<std::pair<size_t, size_t>> FnRanges;
  for (MaoFunction &Fn : Unit.functions()) {
    if (full())
      return;
    CheckRanges(Fn.ranges(), "function " + Fn.name(), &FnRanges, nullptr);
    if (Fn.ranges().empty()) {
      issue(DiagCode::VerifyBadStructure,
            "function " + Fn.name() + " has no entry range");
      continue;
    }
    EntryIter First = Fn.ranges().front().Begin;
    if (indexOf(First) == SIZE_MAX || indexOf(First) == Index.size() ||
        !First->isLabel() || First->labelName() != Fn.name())
      issue(DiagCode::VerifyBadStructure,
            "function " + Fn.name() +
                " does not start at a label carrying its name");
  }
  std::sort(FnRanges.begin(), FnRanges.end());
  for (size_t I = 1; I < FnRanges.size() && !full(); ++I)
    if (FnRanges[I].first < FnRanges[I - 1].second)
      issue(DiagCode::VerifyBadStructure,
            "function entry ranges overlap");

  // The label map must agree with the entry list.
  for (const auto &[Name, Entry] : Unit.labelMap()) {
    if (full())
      return;
    auto Found = Index.find(Entry);
    if (Found == Index.end() || !Entry->isLabel() ||
        Entry->labelName() != Name)
      issue(DiagCode::VerifyBadStructure,
            "label map entry '" + std::string(Name) +
                "' does not match a label in the unit");
  }
}

void Checker::checkLabels() {
  // This is the hot per-pass check (VerifierOptions::fast()), so it is one
  // walk over the entry list with no hashing and no per-node allocation:
  // definitions and local-label references are collected as views into
  // entry-owned storage (stable for the duration of the run), duplicates
  // fall out of a sort, and references resolve by binary search. Failure
  // messages are only rendered when an issue is actually raised.
  std::vector<std::string_view> Defined;
  std::vector<std::pair<std::string_view, const MaoEntry *>> LocalRefs;
  Defined.reserve(Unit.entries().size() / 4);
  LocalRefs.reserve(Unit.entries().size() / 4);
  auto NoteRef = [&](std::string_view Sym, const MaoEntry &E) {
    // Only local (".L") labels must resolve: anything else may be an
    // external symbol.
    if (!Sym.empty() && isLocalLabelName(Sym))
      LocalRefs.emplace_back(Sym, &E);
  };

  for (const MaoEntry &E : Unit.entries()) {
    if (E.isLabel()) {
      Defined.push_back(E.labelName());
    } else if (E.isInstruction()) {
      const Instruction &Insn = E.instruction();
      if (Insn.isOpaque())
        continue;
      for (const Operand &Op : Insn.Ops) {
        if (Op.isSymbol() || Op.isSymbolicImm())
          NoteRef(Op.Sym, E);
        if (Op.isMem() && Op.Mem.hasSym())
          NoteRef(Op.Mem.SymDisp, E);
      }
    } else {
      const Directive &Dir = E.directive();
      if (Dir.Kind == DirKind::Byte || Dir.Kind == DirKind::Word ||
          Dir.Kind == DirKind::Long || Dir.Kind == DirKind::Quad)
        for (const std::string &Arg : Dir.Args)
          NoteRef(leadingSymbol(Arg), E);
    }
  }

  std::sort(Defined.begin(), Defined.end());
  for (size_t I = 0; I < Defined.size();) {
    size_t J = I + 1;
    while (J < Defined.size() && Defined[J] == Defined[I])
      ++J;
    if (J - I > 1) {
      if (full())
        return;
      issue(DiagCode::VerifyDuplicateLabel,
            "label '" + std::string(Defined[I]) + "' defined " +
                std::to_string(J - I) + " times");
    }
    I = J;
  }

  for (const auto &[Sym, Entry] : LocalRefs) {
    if (std::binary_search(Defined.begin(), Defined.end(), Sym))
      continue;
    if (full())
      return;
    issue(DiagCode::VerifyUnresolvedLabel,
          "reference to undefined local label '" + std::string(Sym) +
              "' in " +
              (Entry->isInstruction() ? Entry->instruction().mnemonicText()
                                      : Entry->directive().Name));
  }
}

void Checker::checkEncodings() {
  std::vector<uint8_t> Bytes; // Reused across entries; cleared per encode.
  EncodeCache &Cache = EncodeCache::instance();
  for (const MaoEntry &E : Unit.entries()) {
    if (full())
      return;
    if (!E.isInstruction() || E.instruction().isOpaque())
      continue;
    const Instruction &Insn = E.instruction();
    // The injection decision is drawn here, exactly once per instruction,
    // regardless of the cache state — if the cache were allowed to swallow
    // encodeInstruction()'s internal draw on a hit, a warm cache would
    // shift the draw sequence of everything after it and in-process runs
    // with the same seed would stop being deterministic.
    if (FaultInjector::instance().shouldFail(FaultSite::Encoder)) {
      issue(DiagCode::VerifyEncodingFailed,
            "instruction '" + Insn.toString() +
                "' no longer encodes: injected encoder fault");
      continue;
    }
    if (Cache.cachedLength(Insn))
      continue; // Proved encodable when the length was first memoized.
    Bytes.clear();
    if (MaoStatus S = encodeInstructionNoInject(Insn, 0, nullptr, Bytes)) {
      issue(DiagCode::VerifyEncodingFailed,
            "instruction '" + Insn.toString() +
                "' no longer encodes: " + S.message());
      continue;
    }
    Cache.noteLength(Insn, static_cast<unsigned>(Bytes.size()));
  }
}

void Checker::checkLayout() {
  RelaxationResult Relax = relaxUnit(Unit);
  if (!Relax.Converged) {
    issue(DiagCode::VerifyRelaxationDiverged,
          "relaxation did not converge within " +
              std::to_string(RelaxationIterationLimit) + " iterations");
    return;
  }

  // Address/size self-consistency per section: addresses must accumulate
  // monotonically from the annotated sizes with no gap or overlap. (The
  // sizes themselves are not re-derived here — relaxUnit just wrote them
  // through the same entryLayoutSize it would be checked against, so a
  // recompute has no detection power and would re-encode every
  // instruction; encodability is checkEncodings' job.)
  for (SectionInfo &Sec : Unit.sections()) {
    int64_t Address = 0;
    for (const MaoFunction::Range &R : Sec.Ranges) {
      for (EntryIter It = R.Begin; It != R.End; ++It) {
        if (full())
          return;
        if (It->Address != Address) {
          issue(DiagCode::VerifyLayoutInconsistent,
                "entry in section " + Sec.Name + " has address " +
                    std::to_string(It->Address) + ", expected " +
                    std::to_string(Address));
          return;
        }
        Address += It->Size;
      }
    }
  }

  // Relaxed branch sizes must be a fixpoint: rel8 only when the
  // displacement actually fits, rel32 for unknown/preemptible targets.
  // Resolution is per section — section addresses are unrelated address
  // spaces, so a rel8 branch whose target lives in another section is a
  // layout bug even if a same-named flat lookup would "resolve" it.
  for (SectionInfo &Sec : Unit.sections()) {
    const LabelAddressMap &SecLabels = Relax.sectionLabels(Sec.Name);
    for (const MaoFunction::Range &R : Sec.Ranges) {
      for (EntryIter It = R.Begin; It != R.End; ++It) {
        if (full())
          return;
        if (!It->isInstruction())
          continue;
        const MaoEntry &E = *It;
        const Instruction &Insn = E.instruction();
        if (!Insn.isBranch() || Insn.hasIndirectTarget() || Insn.isOpaque())
          continue;
        if (Insn.BranchSize != 1 && Insn.BranchSize != 4) {
          issue(DiagCode::VerifyLayoutInconsistent,
                "direct branch '" + Insn.toString() +
                    "' has unrelaxed branch size " +
                    std::to_string(Insn.BranchSize));
          continue;
        }
        if (Insn.BranchSize != 1)
          continue;
        const Operand *Target = Insn.branchTarget();
        if (!Target || !Target->isSymbol()) {
          issue(DiagCode::VerifyLayoutInconsistent,
                "direct branch '" + Insn.toString() +
                    "' has no symbol target");
          continue;
        }
        auto LabelIt = SecLabels.find(Target->Sym);
        if (LabelIt == SecLabels.end()) {
          issue(DiagCode::VerifyLayoutInconsistent,
                "rel8 branch '" + Insn.toString() +
                    "' targets a symbol with no known address in section " +
                    Sec.Name);
          continue;
        }
        int64_t Disp = LabelIt->second + Target->Imm - (E.Address + E.Size);
        if (Disp < -128 || Disp > 127)
          issue(DiagCode::VerifyLayoutInconsistent,
                "rel8 branch '" + Insn.toString() + "' has displacement " +
                    std::to_string(Disp) + " outside [-128, 127]");
      }
    }
  }
}

VerifierReport Checker::run() {
  // Passes mutate the entry list without rebuilding derived views; the
  // entry list is the source of truth, so re-derive it before the checks
  // that read the views (structure validates them, layout walks section
  // ranges). The label and encoding checks walk the raw entry list and
  // need neither the rebuild nor the entry index — keeping them cheap is
  // what makes per-pass verification affordable (VerifierOptions::fast()).
  if (Options.CheckStructure || Options.CheckLayout)
    Unit.rebuildStructure();

  if (Options.CheckStructure) {
    UnitEnd = Unit.entries().end();
    Index.reserve(Unit.entries().size());
    size_t Idx = 0;
    for (MaoEntry &E : Unit.entries())
      Index[&E] = Idx++;
  }

  if (Options.CheckStructure && !full())
    checkStructure();
  if (Options.CheckLabels && !full())
    checkLabels();
  if (Options.CheckEncodings && !full())
    checkEncodings();
  if (Options.CheckLayout && !full())
    checkLayout();
  return std::move(Report);
}

} // namespace

VerifierReport mao::verifyUnit(MaoUnit &Unit, const VerifierOptions &Options,
                               DiagEngine *Diags,
                               const std::string &Context) {
  return Checker(Unit, Options, Diags, Context).run();
}
