//===- ir/MaoEntry.h - IR entry: instruction, label, directive --*- C++ -*-===//
///
/// \file
/// After parsing, "all assembly directives and instructions form one long
/// list of MAO IR nodes" (paper Sec. II). MaoEntry is one node of that list:
/// an instruction, a label definition, or an assembly directive. Directives
/// MAO does not reason about are preserved verbatim and re-emitted.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_IR_MAOENTRY_H
#define MAO_IR_MAOENTRY_H

#include "x86/Instruction.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mao {

/// Directives whose semantics the infrastructure interprets (layout sizes,
/// alignment, function boundaries); everything else is DirOther.
enum class DirKind : uint8_t {
  Text,    // .text
  Data,    // .data
  Bss,     // .bss
  Section, // .section name[,...]
  P2Align, // .p2align pow2[,fill[,max]]
  Balign,  // .balign bytes[,fill[,max]]
  Globl,   // .globl sym
  Type,    // .type sym, @function / @object
  Size,    // .size sym, expr
  Byte,    // .byte v[,v...]
  Word,    // .word/.value v[,v...]
  Long,    // .long v[,v...]
  Quad,    // .quad v[,v...]
  Zero,    // .zero n
  String,  // .string "s"   (NUL-terminated)
  Ascii,   // .ascii "s"
  Asciz,   // .asciz "s"    (NUL-terminated)
  Other,   // anything else; re-emitted verbatim
};

/// One assembly directive: interpreted kind, spelled name, raw arguments.
struct Directive {
  DirKind Kind = DirKind::Other;
  std::string Name;              ///< As spelled, including the leading dot.
  std::vector<std::string> Args; ///< Comma-separated argument strings.

  /// Returns Args[I] or "" when absent.
  const std::string &arg(size_t I) const {
    static const std::string Empty;
    return I < Args.size() ? Args[I] : Empty;
  }
};

/// One node in MAO's long entry list.
class MaoEntry {
public:
  enum class Kind : uint8_t { Instruction, Label, Directive };

  static MaoEntry makeInstruction(Instruction Insn) {
    MaoEntry E;
    E.EntryKind = Kind::Instruction;
    E.Insn = std::move(Insn);
    return E;
  }
  static MaoEntry makeLabel(std::string Name) {
    MaoEntry E;
    E.EntryKind = Kind::Label;
    E.LabelName = std::move(Name);
    return E;
  }
  static MaoEntry makeDirective(Directive Dir) {
    MaoEntry E;
    E.EntryKind = Kind::Directive;
    E.Dir = std::move(Dir);
    return E;
  }

  Kind kind() const { return EntryKind; }
  bool isInstruction() const { return EntryKind == Kind::Instruction; }
  bool isLabel() const { return EntryKind == Kind::Label; }
  bool isDirective() const { return EntryKind == Kind::Directive; }
  bool isDirective(DirKind K) const { return isDirective() && Dir.Kind == K; }

  Instruction &instruction() {
    assert(isInstruction() && "entry is not an instruction");
    return Insn;
  }
  const Instruction &instruction() const {
    assert(isInstruction() && "entry is not an instruction");
    return Insn;
  }
  const std::string &labelName() const {
    assert(isLabel() && "entry is not a label");
    return LabelName;
  }
  Directive &directive() {
    assert(isDirective() && "entry is not a directive");
    return Dir;
  }
  const Directive &directive() const {
    assert(isDirective() && "entry is not a directive");
    return Dir;
  }

  /// Renders the entry as one line of assembly (without trailing newline).
  std::string toString() const;

  /// Layout results, valid after relaxation ran for the entry's section.
  /// Address is the byte offset within the section; Size the encoded size.
  int64_t Address = -1;
  uint32_t Size = 0;

  /// Dense id assigned at parse time; stable across layout changes, used
  /// for deterministic ordering and profile annotation.
  uint32_t Id = 0;

private:
  MaoEntry() = default;

  Kind EntryKind = Kind::Directive;
  Instruction Insn;
  std::string LabelName;
  Directive Dir;
};

} // namespace mao

#endif // MAO_IR_MAOENTRY_H
