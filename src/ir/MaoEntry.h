//===- ir/MaoEntry.h - IR entry: instruction, label, directive --*- C++ -*-===//
///
/// \file
/// After parsing, "all assembly directives and instructions form one long
/// list of MAO IR nodes" (paper Sec. II). MaoEntry is one node of that list:
/// an instruction, a label definition, or an assembly directive. Directives
/// MAO does not reason about are preserved verbatim and re-emitted.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_IR_MAOENTRY_H
#define MAO_IR_MAOENTRY_H

#include "x86/Instruction.h"

#include <cassert>
#include <cstdint>
#include <new>
#include <string>
#include <vector>

namespace mao {

/// Directives whose semantics the infrastructure interprets (layout sizes,
/// alignment, function boundaries); everything else is DirOther.
enum class DirKind : uint8_t {
  Text,    // .text
  Data,    // .data
  Bss,     // .bss
  Section, // .section name[,...]
  P2Align, // .p2align pow2[,fill[,max]]
  Balign,  // .balign bytes[,fill[,max]]
  Globl,   // .globl sym
  Type,    // .type sym, @function / @object
  Size,    // .size sym, expr
  Byte,    // .byte v[,v...]
  Word,    // .word/.value v[,v...]
  Long,    // .long v[,v...]
  Quad,    // .quad v[,v...]
  Zero,    // .zero n
  String,  // .string "s"   (NUL-terminated)
  Ascii,   // .ascii "s"
  Asciz,   // .asciz "s"    (NUL-terminated)
  Other,   // anything else; re-emitted verbatim
};

/// One assembly directive: interpreted kind, spelled name, raw arguments.
struct Directive {
  DirKind Kind = DirKind::Other;
  std::string Name;              ///< As spelled, including the leading dot.
  std::vector<std::string> Args; ///< Comma-separated argument strings.

  /// Returns Args[I] or "" when absent.
  const std::string &arg(size_t I) const {
    static const std::string Empty;
    return I < Args.size() ? Args[I] : Empty;
  }
};

/// One node in MAO's long entry list.
///
/// The payload is a tagged union: a node is exactly one of instruction,
/// label, or directive, and only the active member is ever constructed.
/// With hundreds of thousands of nodes per translation unit this matters
/// twice over — a label node no longer carries (and moves, and destroys)
/// an empty Instruction and Directive, and sizeof(MaoEntry) shrinks to
/// the largest payload instead of the sum of all three.
class MaoEntry {
public:
  enum class Kind : uint8_t { Instruction, Label, Directive };

  static MaoEntry makeInstruction(Instruction Insn) {
    return MaoEntry(std::move(Insn));
  }
  static MaoEntry makeLabel(std::string Name) {
    return MaoEntry(Kind::Label, std::move(Name));
  }
  static MaoEntry makeDirective(Directive Dir) {
    return MaoEntry(std::move(Dir));
  }

  /// Payload constructors, public so container emplace can build an entry
  /// in place (MaoUnit::emplaceBack) with a single payload move. Prefer
  /// the named factories everywhere a temporary entry is acceptable.
  explicit MaoEntry(Instruction I) : EntryKind(Kind::Instruction) {
    new (&Insn) Instruction(std::move(I));
  }
  MaoEntry(Kind K, std::string Name) : EntryKind(Kind::Label) {
    assert(K == Kind::Label && "tag constructor is for labels only");
    (void)K;
    new (&LabelName) std::string(std::move(Name));
  }
  explicit MaoEntry(Directive D) : EntryKind(Kind::Directive) {
    new (&Dir) Directive(std::move(D));
  }

  MaoEntry(const MaoEntry &O)
      : Address(O.Address), Size(O.Size), Id(O.Id), EntryKind(O.EntryKind) {
    constructFrom(O);
  }
  MaoEntry(MaoEntry &&O) noexcept
      : Address(O.Address), Size(O.Size), Id(O.Id), EntryKind(O.EntryKind) {
    constructFrom(std::move(O));
  }
  MaoEntry &operator=(const MaoEntry &O) {
    if (this == &O)
      return *this;
    destroyPayload();
    Address = O.Address;
    Size = O.Size;
    Id = O.Id;
    EntryKind = O.EntryKind;
    constructFrom(O);
    return *this;
  }
  MaoEntry &operator=(MaoEntry &&O) noexcept {
    if (this == &O)
      return *this;
    destroyPayload();
    Address = O.Address;
    Size = O.Size;
    Id = O.Id;
    EntryKind = O.EntryKind;
    constructFrom(std::move(O));
    return *this;
  }
  ~MaoEntry() { destroyPayload(); }

  Kind kind() const { return EntryKind; }
  bool isInstruction() const { return EntryKind == Kind::Instruction; }
  bool isLabel() const { return EntryKind == Kind::Label; }
  bool isDirective() const { return EntryKind == Kind::Directive; }
  bool isDirective(DirKind K) const { return isDirective() && Dir.Kind == K; }

  Instruction &instruction() {
    assert(isInstruction() && "entry is not an instruction");
    return Insn;
  }
  const Instruction &instruction() const {
    assert(isInstruction() && "entry is not an instruction");
    return Insn;
  }
  const std::string &labelName() const {
    assert(isLabel() && "entry is not a label");
    return LabelName;
  }
  Directive &directive() {
    assert(isDirective() && "entry is not a directive");
    return Dir;
  }
  const Directive &directive() const {
    assert(isDirective() && "entry is not a directive");
    return Dir;
  }

  /// Renders the entry as one line of assembly (without trailing newline).
  std::string toString() const;

  /// Layout results, valid after relaxation ran for the entry's section.
  /// Address is the byte offset within the section; Size the encoded size.
  int64_t Address = -1;
  uint32_t Size = 0;

  /// Dense id assigned at parse time; stable across layout changes, used
  /// for deterministic ordering and profile annotation.
  uint32_t Id = 0;

private:
  /// Placement-constructs the active member from \p O's. EntryKind must
  /// already equal O.EntryKind; a moved-from \p O keeps its (now hollow)
  /// member alive so its destructor still runs against the right kind.
  void constructFrom(const MaoEntry &O) {
    switch (EntryKind) {
    case Kind::Instruction:
      new (&Insn) Instruction(O.Insn);
      break;
    case Kind::Label:
      new (&LabelName) std::string(O.LabelName);
      break;
    case Kind::Directive:
      new (&Dir) Directive(O.Dir);
      break;
    }
  }
  void constructFrom(MaoEntry &&O) noexcept {
    switch (EntryKind) {
    case Kind::Instruction:
      new (&Insn) Instruction(std::move(O.Insn));
      break;
    case Kind::Label:
      new (&LabelName) std::string(std::move(O.LabelName));
      break;
    case Kind::Directive:
      new (&Dir) Directive(std::move(O.Dir));
      break;
    }
  }
  void destroyPayload() {
    switch (EntryKind) {
    case Kind::Instruction:
      Insn.~Instruction();
      break;
    case Kind::Label:
      LabelName.~basic_string();
      break;
    case Kind::Directive:
      Dir.~Directive();
      break;
    }
  }

  Kind EntryKind;
  union {
    Instruction Insn;
    std::string LabelName;
    Directive Dir;
  };
};

} // namespace mao

#endif // MAO_IR_MAOENTRY_H
