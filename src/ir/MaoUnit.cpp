//===- ir/MaoUnit.cpp - Translation unit, sections, functions --------------==//

#include "ir/MaoUnit.h"

#include <cassert>

using namespace mao;

std::string MaoEntry::toString() const {
  switch (EntryKind) {
  case Kind::Label:
    return LabelName + ":";
  case Kind::Instruction:
    return "\t" + Insn.toString();
  case Kind::Directive: {
    std::string Out = "\t" + Dir.Name;
    for (size_t I = 0, E = Dir.Args.size(); I != E; ++I) {
      Out += I == 0 ? "\t" : ", ";
      Out += Dir.Args[I];
    }
    return Out;
  }
  }
  assert(false && "covered switch");
  return "";
}

std::vector<MaoEntry *> MaoFunction::instructionEntries() const {
  std::vector<MaoEntry *> Result;
  for (auto It = begin(), E = end(); It != E; ++It)
    if (It->isInstruction())
      Result.push_back(&*It);
  return Result;
}

size_t MaoFunction::countInstructions() const {
  size_t N = 0;
  for (auto It = begin(), E = end(); It != E; ++It)
    if (It->isInstruction())
      ++N;
  return N;
}

MaoUnit MaoUnit::clone() const {
  // Derived views are deliberately NOT rebuilt: a snapshot that is only
  // ever restored (via move-assignment, which rebuilds) or discarded never
  // needs them, and the rebuild would double the per-pass snapshot cost in
  // the transactional pipeline. Callers that inspect the copy's sections,
  // functions, or labels must call rebuildStructure() first.
  MaoUnit Copy;
  Copy.Entries = Entries;
  Copy.NextEntryId = NextEntryId;
  Copy.NextLabelId = NextLabelId;
  // The copy's views are lazily rebuilt on first access (they cannot be
  // copied: they hold iterators into *our* entry list).
  Copy.StructureDirty = true;
  return Copy;
}

thread_local ScopedShardIds::Alloc ScopedShardIds::Active{nullptr, 0, 0};

ScopedShardIds::ScopedShardIds(MaoUnit &Unit, uint32_t Begin, uint32_t End)
    : Saved(Active) {
  Active = {&Unit, Begin, End};
}

ScopedShardIds::~ScopedShardIds() { Active = Saved; }

uint32_t MaoUnit::nextId() {
  ScopedShardIds::Alloc &A = ScopedShardIds::Active;
  if (A.Unit == this && A.Next < A.End)
    return A.Next++;
  return NextEntryId++;
}

uint32_t MaoUnit::reserveIdBlocks(size_t Count, uint32_t BlockSize) {
  uint32_t Base = NextEntryId;
  NextEntryId += static_cast<uint32_t>(Count) * BlockSize;
  return Base;
}

EntryIter MaoUnit::append(MaoEntry Entry) {
  std::lock_guard<std::mutex> Lock(StructuralM);
  Entry.Id = nextId();
  return Entries.insert(Entries.end(), std::move(Entry));
}

EntryIter MaoUnit::insertBefore(EntryIter Pos, MaoEntry Entry) {
  std::lock_guard<std::mutex> Lock(StructuralM);
  Entry.Id = nextId();
  return Entries.insert(Pos, std::move(Entry));
}

EntryIter MaoUnit::insertAfter(EntryIter Pos, MaoEntry Entry) {
  assert(Pos != Entries.end() && "cannot insert after end()");
  std::lock_guard<std::mutex> Lock(StructuralM);
  Entry.Id = nextId();
  return Entries.insert(std::next(Pos), std::move(Entry));
}

EntryIter MaoUnit::erase(EntryIter Pos) {
  std::lock_guard<std::mutex> Lock(StructuralM);
  return Entries.erase(Pos);
}

void MaoUnit::moveRange(EntryIter First, EntryIter Last, EntryIter Before) {
  std::lock_guard<std::mutex> Lock(StructuralM);
  Entries.splice(Before, Entries, First, Last);
}

MaoFunction *MaoUnit::findFunction(const std::string &Name) {
  ensureStructure();
  for (MaoFunction &Fn : Functions)
    if (Fn.name() == Name)
      return &Fn;
  return nullptr;
}

std::string MaoUnit::makeUniqueLabel() {
  return ".LMAO" + std::to_string(NextLabelId++);
}

namespace {

/// True for sections that contain instructions.
bool isCodeSectionName(const std::string &Name) {
  if (Name.rfind(".text", 0) == 0)
    return true;
  return false;
}

/// Extracts the section name from a section-changing directive.
std::string sectionNameOf(const Directive &Dir) {
  switch (Dir.Kind) {
  case DirKind::Text:
    return ".text";
  case DirKind::Data:
    return ".data";
  case DirKind::Bss:
    return ".bss";
  case DirKind::Section:
    return Dir.arg(0);
  default:
    assert(false && "not a section directive");
    return "";
  }
}

bool isSectionDirective(const MaoEntry &E) {
  if (!E.isDirective())
    return false;
  DirKind K = E.directive().Kind;
  return K == DirKind::Text || K == DirKind::Data || K == DirKind::Bss ||
         K == DirKind::Section;
}

/// Strips whitespace from both ends of \p S.
std::string trimmed(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

} // namespace

void MaoUnit::rebuildStructure() {
  StructureDirty = false;
  Labels.clear();
  Sections.clear();
  Functions.clear();

  // Pass 1: label map and the set of symbols declared @function.
  std::unordered_map<std::string, bool> IsFunctionSym;
  for (MaoEntry &E : Entries) {
    // First definition wins on duplicates: fall-through execution reaches
    // the first one, and the emulator binds the same way. The parser warns
    // (MAO-parse-duplicate-label) and the full verifier rejects.
    if (E.isLabel())
      Labels.try_emplace(E.labelName(), &E);
    if (E.isDirective(DirKind::Type)) {
      const Directive &Dir = E.directive();
      const std::string &TypeArg = Dir.arg(1);
      if (TypeArg.find("function") != std::string::npos)
        IsFunctionSym[trimmed(Dir.arg(0))] = true;
    }
  }

  // Pass 2: sections. A section's ranges restart whenever the section is
  // re-entered.
  auto findSection = [&](const std::string &Name) -> SectionInfo & {
    for (SectionInfo &S : Sections)
      if (S.Name == Name)
        return S;
    Sections.push_back(SectionInfo{Name, isCodeSectionName(Name), {}});
    return Sections.back();
  };

  std::string CurSection = ".text";
  bool CurIsCode = true;
  EntryIter RunBegin = Entries.begin();
  auto closeSectionRun = [&](EntryIter RunEnd) {
    if (RunBegin == RunEnd)
      return;
    findSection(CurSection).Ranges.push_back({RunBegin, RunEnd});
  };

  // Pass 3 runs interleaved: function discovery needs section context.
  MaoFunction *OpenFn = nullptr;
  EntryIter FnRunBegin;
  bool FnRunOpen = false;
  auto closeFnRun = [&](EntryIter RunEnd) {
    if (!FnRunOpen)
      return;
    if (FnRunBegin != RunEnd)
      OpenFn->ranges().push_back({FnRunBegin, RunEnd});
    FnRunOpen = false;
  };
  auto closeFunction = [&](EntryIter RunEnd) {
    if (!OpenFn)
      return;
    closeFnRun(RunEnd);
    OpenFn = nullptr;
  };

  // Functions is grown with reserve-free push_back; keep stable pointers by
  // using indices into a deque-like two-phase build: first record
  // boundaries, then fill. Simpler: reserve generously.
  size_t FunctionCount = IsFunctionSym.size();
  Functions.reserve(FunctionCount + 1);

  for (EntryIter It = Entries.begin(), E = Entries.end(); It != E; ++It) {
    if (isSectionDirective(*It)) {
      closeSectionRun(It);
      closeFnRun(It);
      CurSection = trimmed(sectionNameOf(It->directive()));
      CurIsCode = isCodeSectionName(CurSection);
      RunBegin = std::next(It);
      if (OpenFn && CurIsCode) {
        FnRunBegin = std::next(It);
        FnRunOpen = true;
      }
      continue;
    }
    if (It->isLabel() && CurIsCode) {
      auto FnIt = IsFunctionSym.find(It->labelName());
      if (FnIt != IsFunctionSym.end()) {
        closeFunction(It);
        assert(Functions.size() < FunctionCount + 1 &&
               "function vector reallocation would invalidate pointers");
        Functions.emplace_back(It->labelName(), this);
        OpenFn = &Functions.back();
        FnRunBegin = It;
        FnRunOpen = true;
        continue;
      }
    }
    if (It->isDirective(DirKind::Size) && OpenFn &&
        trimmed(It->directive().arg(0)) == OpenFn->name()) {
      closeFunction(It);
      continue;
    }
  }
  closeSectionRun(Entries.end());
  closeFunction(Entries.end());

  // Mark functions containing opaque instructions.
  for (MaoFunction &Fn : Functions)
    for (auto It = Fn.begin(), E2 = Fn.end(); It != E2; ++It)
      if (It->isInstruction() && It->instruction().isOpaque()) {
        Fn.HasOpaqueInstructions = true;
        break;
      }
}

std::string MaoUnit::toString() const {
  std::string Out;
  for (const MaoEntry &E : Entries) {
    Out += E.toString();
    Out += '\n';
  }
  return Out;
}
