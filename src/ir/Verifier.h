//===- ir/Verifier.h - IR and layout consistency verifier -------*- C++ -*-===//
///
/// \file
/// Consistency checking for a MaoUnit, runnable standalone (maofuzz, tests)
/// and after every pass by the transactional pass runner. The invariants:
///
///  1. Structure: section and function entry chains are well-formed — every
///     range endpoint is an entry of the unit (or end()), Begin precedes
///     End, ranges are ordered and disjoint, every function starts at a
///     label carrying its own name, and the label map agrees with the entry
///     list.
///  2. Labels: no local label (".L" prefix) is defined twice, and every
///     local-label reference from an instruction operand resolves to a
///     definition. (Non-local symbols may legitimately be external.)
///  3. Encoding: every non-opaque instruction still encodes through the
///     binary x86 encoder — a pass cannot have produced an operand
///     combination the byte-level substrate cannot realize.
///  4. Layout: repeated relaxation converges within the paper's iteration
///     bound, and the resulting addresses/sizes are self-consistent:
///     addresses accumulate monotonically from the annotated sizes with no
///     gap or overlap, and every relaxed direct branch holds a valid
///     rel8/rel32 choice that is a fixpoint (a rel8 branch's displacement
///     actually fits) — the branch-displacement well-formedness conditions
///     of Boender & Sacerdoti Coen.
///
/// verifyUnit() re-derives the structure (rebuildStructure) before the
/// structure and layout checks, because passes legitimately mutate the
/// entry list without rebuilding; the verifier checks the IR, not the
/// staleness of cached views. The label and encoding checks walk the raw
/// entry list and skip the rebuild. Layout checks re-run relaxation and
/// therefore refresh the Address/Size annotations; textual emission is
/// unaffected.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_IR_VERIFIER_H
#define MAO_IR_VERIFIER_H

#include "ir/MaoUnit.h"
#include "support/Diag.h"

#include <string>
#include <vector>

namespace mao {

struct VerifierOptions {
  bool CheckStructure = true;
  bool CheckLabels = true;
  bool CheckEncodings = true;
  bool CheckLayout = true;
  /// Stop after this many issues (a corrupted unit fails fast).
  unsigned MaxIssues = 16;

  /// The cheap configuration: label invariants only, one allocation-free
  /// walk over the entry list with no structure rebuild, no entry index,
  /// no re-encoding, and no relaxation. This is what the pass runner uses
  /// after every pass; drivers run the full configuration once at the end
  /// of the pipeline, where the encoding and layout invariants are checked
  /// a single time instead of once per pass.
  static VerifierOptions fast() {
    VerifierOptions Options;
    Options.CheckStructure = false;
    Options.CheckEncodings = false;
    Options.CheckLayout = false;
    return Options;
  }
};

/// Result of one verification run.
struct [[nodiscard]] VerifierReport {
  std::vector<Diagnostic> Issues;

  bool clean() const { return Issues.empty(); }
  /// First issue rendered as text, or "" when clean.
  std::string firstMessage() const {
    return Issues.empty() ? std::string() : Issues.front().toString();
  }
};

/// Verifies \p Unit against the invariants above. Issues are returned and,
/// when \p Diags is non-null, also reported through the engine (with
/// \p Context as the pass name attribution).
VerifierReport verifyUnit(MaoUnit &Unit, const VerifierOptions &Options = {},
                          DiagEngine *Diags = nullptr,
                          const std::string &Context = {});

} // namespace mao

#endif // MAO_IR_VERIFIER_H
