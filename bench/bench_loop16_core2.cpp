//===- bench/bench_loop16_core2.cpp - E11: LOOP16 on the Core-2 model ---------===//
//
// Paper Sec. V-B, second table: small-loop alignment on Intel Core-2.
//
//   Benchmark      LOOP16
//   C++/252.eon    -4.43%
//   C/175.vpr      +1.25%
//   C/176.gcc      +1.41%
//   C/300.twolf    +1.18%
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

using namespace maobench;

int main(int argc, char **argv) {
  BenchReport Report("loop16_core2");
  printHeader("E11: LOOP16 small-loop alignment (Core-2 model)");
  ProcessorConfig Core2 = ProcessorConfig::core2();
  struct Row {
    const char *Label, *Benchmark;
    double Paper;
  } Rows[] = {{"C++/252.eon", "252.eon", -4.43},
              {"C/175.vpr", "175.vpr", 1.25},
              {"C/176.gcc", "176.gcc", 1.41},
              {"C/300.twolf", "300.twolf", 1.18}};
  for (const Row &R : Rows) {
    const double Delta = benchmarkDelta(R.Benchmark, "LOOP16", Core2);
    printRow(R.Label, R.Paper, Delta);
    Report.set(std::string(R.Benchmark) + "_delta_pct", Delta);
  }
  std::printf("\nAligning split 16-byte loops helps vpr/gcc/twolf; on eon "
              "the padding\ncollides two predictor buckets and the pass "
              "degrades the benchmark —\nthe paper's counter-intuitive "
              "result, reproduced mechanistically.\n");
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
