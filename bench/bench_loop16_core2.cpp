//===- bench/bench_loop16_core2.cpp - E11: LOOP16 on the Core-2 model ---------===//
//
// Paper Sec. V-B, second table: small-loop alignment on Intel Core-2.
//
//   Benchmark      LOOP16
//   C++/252.eon    -4.43%
//   C/175.vpr      +1.25%
//   C/176.gcc      +1.41%
//   C/300.twolf    +1.18%
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace maobench;

int main() {
  printHeader("E11: LOOP16 small-loop alignment (Core-2 model)");
  ProcessorConfig Core2 = ProcessorConfig::core2();
  printRow("C++/252.eon", -4.43, benchmarkDelta("252.eon", "LOOP16", Core2));
  printRow("C/175.vpr", 1.25, benchmarkDelta("175.vpr", "LOOP16", Core2));
  printRow("C/176.gcc", 1.41, benchmarkDelta("176.gcc", "LOOP16", Core2));
  printRow("C/300.twolf", 1.18, benchmarkDelta("300.twolf", "LOOP16", Core2));
  std::printf("\nAligning split 16-byte loops helps vpr/gcc/twolf; on eon "
              "the padding\ncollides two predictor buckets and the pass "
              "degrades the benchmark —\nthe paper's counter-intuitive "
              "result, reproduced mechanistically.\n");
  return 0;
}
