//===- bench/bench_compile_time.cpp - E9: compile-time overhead ---------------===//
//
// Paper Sec. V-A: gas performs one pass over the input; MAO performs many
// (one per optimization pass plus repeated relaxation), ending up "about
// five times slower than gas". Full integration slows gcc -O2 by 5-10%.
//
// This harness uses google-benchmark on the reproduction's own pipeline:
// "gas" = parse + relax once + binary-encode; "MAO" = parse + a typical
// pass pipeline (with its repeated relaxations) + emit + "gas" again.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include "asm/AsmEmitter.h"
#include "asm/Assembler.h"

#include <benchmark/benchmark.h>

using namespace maobench;

namespace {

const std::string &corpusAssembly() {
  static const std::string Asm = [] {
    WorkloadSpec Spec = googleCorpusProfile(0.01);
    Spec.HotIterations = 4;
    return generateWorkloadAssembly(Spec);
  }();
  return Asm;
}

/// The "gas" baseline: one parse, one relaxation, binary encoding.
void BM_GasOnly(benchmark::State &State) {
  const std::string &Asm = corpusAssembly();
  for (auto _ : State) {
    auto Unit = parseAssembly(Asm);
    if (!Unit.ok())
      State.SkipWithError("parse failed");
    auto Bytes = assembleUnit(*Unit);
    benchmark::DoNotOptimize(Bytes);
  }
}
BENCHMARK(BM_GasOnly)->Unit(benchmark::kMillisecond);

/// The MAO pipeline: parse, typical passes, emit, then the gas step.
void BM_MaoPipeline(benchmark::State &State) {
  linkAllPasses();
  const std::string &Asm = corpusAssembly();
  for (auto _ : State) {
    auto Unit = parseAssembly(Asm);
    if (!Unit.ok())
      State.SkipWithError("parse failed");
    std::vector<PassRequest> Requests;
    if (parseMaoOption("ZEE:REDTEST:REDMOV:ADDADD:LOOP16:SCHED", Requests))
      State.SkipWithError("bad pass spec");
    PipelineResult R = runPasses(*Unit, Requests);
    if (!R.Ok)
      State.SkipWithError("pass failed");
    std::string Out = emitAssembly(*Unit);
    auto Reparsed = parseAssembly(Out);
    auto Bytes = assembleUnit(*Reparsed);
    benchmark::DoNotOptimize(Bytes);
  }
}
BENCHMARK(BM_MaoPipeline)->Unit(benchmark::kMillisecond);

/// Parse-only throughput, for the record.
void BM_ParseOnly(benchmark::State &State) {
  const std::string &Asm = corpusAssembly();
  for (auto _ : State) {
    auto Unit = parseAssembly(Asm);
    benchmark::DoNotOptimize(Unit);
  }
}
BENCHMARK(BM_ParseOnly)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printHeader("E9: compile-time overhead (paper: MAO ~5x gas; "
              "gcc -O2 +5-10%)");
  BenchReport Report("compile_time");
  const int Rc = runCapturedBenchmarks(argc, argv, Report);
  std::printf("\nCompare BM_MaoPipeline against BM_GasOnly: the ratio is "
              "the reproduction's\nanalogue of the paper's ~5x "
              "assembler-time overhead. Since assembly is a\nsmall "
              "fraction of compilation, the paper's end-to-end gcc -O2 "
              "cost was 5-10%%.\n");
  return Rc;
}
