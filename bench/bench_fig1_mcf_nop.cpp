//===- bench/bench_fig1_mcf_nop.cpp - E1: the high-impact NOP of Fig. 1 -------===//
//
// Paper Fig. 1: in a hot loop unrolled twice from 181.mcf, "merely
// inserting the nop instruction right before label .L5 results in a 5%
// performance speed-up for this loop" on Core-2; the authors' counter
// analysis pointed at the branch predictor.
//
// This harness reproduces the mechanism: without the NOP, the loop's back
// branch shares a PC>>5 predictor bucket with a never-taken guard branch;
// the one-byte NOP pushes them apart. Two measurements are reported: the
// isolated loop (where the effect is large) and the loop embedded in the
// full 181.mcf workload (where it dilutes toward the paper's ~5%).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

using namespace maobench;

namespace {

/// The Fig. 1 loop shape, unrolled twice, with an optional strategic NOP
/// before .L5. A never-taken early-exit guard models the branch the
/// paper's loop aliased with.
std::string fig1Loop(bool WithNop, unsigned Iterations) {
  std::string S;
  S += "\t.text\n\t.globl bench_main\n\t.type bench_main, @function\n";
  S += "bench_main:\n";
  S += "\tpushq %rbp\n\tmovq %rsp, %rbp\n";
  S += "\tmovq $0x300000, %rdi\n";
  S += "\tmovq $0x340000, %rsi\n";
  S += "\txorq %r8, %r8\n";
  S += "\tmovl $" + std::to_string(Iterations) + ", %r9d\n";
  S += "\txorl %r10d, %r10d\n"; // guard register: always zero
  // Byte-exact placement (mod 32 from the anchor): .L3 at 12 puts the
  // never-taken je at 37 and the jg back branch at 63 — the same PC>>5
  // bucket. The strategic NOP moves jg to 64, the next bucket, and the
  // aliasing disappears: the paper's 5% cliff.
  S += "\t.p2align 5\n";
  S += "\tnop12\n";
  S += ".L3:\n";
  S += "\tmovsbl 1(%rdi,%r8,4), %edx\n";
  S += "\tmovsbl (%rdi,%r8,4), %eax\n";
  S += "\taddl %eax, %edx\n";
  S += "\tmovl %edx, (%rsi,%r8,4)\n";
  S += "\taddq $1, %r8\n";
  S += "\tcmpl $1, %r10d\n"; // never equal (r10d == 0)
  S += "\tje .LEXIT\n";      // never taken
  if (WithNop)
    S += "\tnop\n"; // this instruction speeds up the loop (Fig. 1)
  S += ".L5:\n";
  S += "\tmovsbl 1(%rdi,%r8,4), %edx\n";
  S += "\tmovsbl (%rdi,%r8,4), %eax\n";
  S += "\taddl %eax, %edx\n";
  S += "\tmovl %edx, (%rsi,%r8,4)\n";
  S += "\taddq $1, %r8\n";
  S += "\tcmpl %r8d, %r9d\n";
  S += "\tjg .L3\n";
  S += ".LEXIT:\n";
  S += "\tmovl $0, %eax\n\tleave\n\tret\n";
  S += "\t.size bench_main, .-bench_main\n";
  return S;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("fig1_mcf_nop");
  printHeader("E1: Fig. 1 - the high-impact NOP in the 181.mcf loop "
              "(Core-2 model)");
  ProcessorConfig Core2 = ProcessorConfig::core2();

  MaoUnit Without = parseOrDie(fig1Loop(false, 4000));
  MaoUnit With = parseOrDie(fig1Loop(true, 4000));
  PmuCounters P0 = measure(Without, Core2);
  PmuCounters P1 = measure(With, Core2);
  std::printf("isolated loop:  without nop %llu cycles (%llu mispredicts), "
              "with nop %llu cycles (%llu mispredicts)\n",
              (unsigned long long)P0.CpuCycles,
              (unsigned long long)P0.BrMispredicted,
              (unsigned long long)P1.CpuCycles,
              (unsigned long long)P1.BrMispredicted);
  printRow("isolated loop speedup", 5.00,
           percentGain(P0.CpuCycles, P1.CpuCycles));
  Report.set("isolated_gain_pct", percentGain(P0.CpuCycles, P1.CpuCycles));
  Report.set("isolated_mispredicts_without",
             static_cast<double>(P0.BrMispredicted));
  Report.set("isolated_mispredicts_with",
             static_cast<double>(P1.BrMispredicted));

  // Embedded: the same effect inside the full 181.mcf workload, where it
  // dilutes toward the few-percent range the paper reports.
  const WorkloadSpec *Spec = findBenchmarkProfile("181.mcf");
  std::string Embedded0 = generateWorkloadAssembly(*Spec);
  std::string LoopPart0 = fig1Loop(false, 700);
  std::string LoopPart1 = fig1Loop(true, 700);
  // Rename the loop's entry so both parts coexist.
  auto Embed = [&](std::string Loop, const std::string &Suffix) {
    size_t Pos;
    for (const char *Name : {"bench_main", ".L3", ".L5", ".LEXIT"}) {
      std::string From = Name, To = Name + Suffix;
      std::string Out;
      Pos = 0;
      while (true) {
        size_t Next = Loop.find(From, Pos);
        if (Next == std::string::npos)
          break;
        Loop.replace(Next, From.size(), To);
        Pos = Next + To.size();
      }
    }
    return Loop;
  };
  std::string Base = Embedded0 + Embed(LoopPart0, "_fig1");
  std::string Nopped = Embedded0 + Embed(LoopPart1, "_fig1");
  // Drive both the workload and the loop.
  std::string Driver = "\t.type fig1_driver, @function\nfig1_driver:\n"
                       "\tpushq %rbp\n\tmovq %rsp, %rbp\n"
                       "\tcall bench_main\n\tcall bench_main_fig1\n"
                       "\tleave\n\tret\n\t.size fig1_driver, .-fig1_driver\n";
  MaoUnit B = parseOrDie(Base + Driver);
  MaoUnit Nn = parseOrDie(Nopped + Driver);
  MeasureOptions Options;
  Options.Config = Core2;
  auto R0 = measureFunction(B, "fig1_driver", Options);
  auto R1 = measureFunction(Nn, "fig1_driver", Options);
  if (R0.ok() && R1.ok()) {
    printRow("embedded in 181.mcf", 5.00,
             percentGain(R0->Pmu.CpuCycles, R1->Pmu.CpuCycles));
    Report.set("embedded_gain_pct",
               percentGain(R0->Pmu.CpuCycles, R1->Pmu.CpuCycles));
  }
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
