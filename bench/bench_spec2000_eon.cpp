//===- bench/bench_spec2000_eon.cpp - E10: the 252.eon regressions ------------===//
//
// Paper Sec. V-B, first table: on 252.eon, Nopinizer, Nop Killer and even
// redundant-test removal all regress performance — the benchmark is
// pathologically layout-sensitive.
//
//   Benchmark     NOPIN    NOPKILL  REDTEST
//   C++/252.eon   -9.23%   -5.34%   -5.97%
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

using namespace maobench;

int main(int argc, char **argv) {
  BenchReport Report("spec2000_eon");
  printHeader("E10: SPEC2000 252.eon under NOPIN / NOPKILL / REDTEST "
              "(Core-2 model)");
  ProcessorConfig Core2 = ProcessorConfig::core2();
  struct Row {
    const char *Label, *PassLine, *Key;
    double Paper;
  } Rows[] = {{"252.eon NOPIN", "NOPIN=seed[11]", "nopin_delta_pct", -9.23},
              {"252.eon NOPKILL", "NOPKILL", "nopkill_delta_pct", -5.34},
              {"252.eon REDTEST", "REDTEST", "redtest_delta_pct", -5.97}};
  for (const Row &R : Rows) {
    const double Delta = benchmarkDelta("252.eon", R.PassLine, Core2);
    printRow(R.Label, R.Paper, Delta);
    Report.set(R.Key, Delta);
  }
  std::printf("\nAll three transformations regress 252.eon: the benchmark's "
              "hot loops are\naligned only by accident and its branch "
              "buckets have no slack, so any\ncode-size or placement change "
              "costs more than the transformation saves.\n");
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
