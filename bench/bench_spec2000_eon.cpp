//===- bench/bench_spec2000_eon.cpp - E10: the 252.eon regressions ------------===//
//
// Paper Sec. V-B, first table: on 252.eon, Nopinizer, Nop Killer and even
// redundant-test removal all regress performance — the benchmark is
// pathologically layout-sensitive.
//
//   Benchmark     NOPIN    NOPKILL  REDTEST
//   C++/252.eon   -9.23%   -5.34%   -5.97%
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace maobench;

int main() {
  printHeader("E10: SPEC2000 252.eon under NOPIN / NOPKILL / REDTEST "
              "(Core-2 model)");
  ProcessorConfig Core2 = ProcessorConfig::core2();
  printRow("252.eon NOPIN", -9.23,
           benchmarkDelta("252.eon", "NOPIN=seed[11]", Core2));
  printRow("252.eon NOPKILL", -5.34,
           benchmarkDelta("252.eon", "NOPKILL", Core2));
  printRow("252.eon REDTEST", -5.97,
           benchmarkDelta("252.eon", "REDTEST", Core2));
  std::printf("\nAll three transformations regress 252.eon: the benchmark's "
              "hot loops are\naligned only by accident and its branch "
              "buckets have no slack, so any\ncode-size or placement change "
              "costs more than the transformation saves.\n");
  return 0;
}
