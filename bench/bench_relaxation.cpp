//===- bench/bench_relaxation.cpp - E2: repeated relaxation -------------------===//
//
// Paper Sec. II: the relaxation example (a 2-byte jmp growing to 5 bytes
// when a NOP pushes its target out of rel8 range) and the claim that, with
// a built-in limit of 100 iterations, "in practice almost every relaxation
// succeeds in a few iterations, and it never fails". This harness
// reproduces the example byte-for-byte and profiles repeated relaxation
// over the synthetic SPEC corpus with google-benchmark.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include "analysis/Relaxer.h"

#include <benchmark/benchmark.h>

using namespace maobench;

namespace {

std::string relaxExample(bool WithNop) {
  // Byte-exact reconstruction of the paper's example: the jmp at offset
  // 0xb has displacement 0x7f to the cmpl at 0x8c — the last value that
  // still fits rel8. The inserted nop pushes the target to 0x90 and the
  // branch must grow to the 5-byte e9 form.
  std::string S = "\t.text\n\t.type main, @function\nmain:\n";
  S += "\tpushq %rbp\n\tmovq %rsp, %rbp\n\tmovl $5, -4(%rbp)\n";
  S += "\tjmp .LTAIL\n.LBODY:\n";
  for (int I = 0; I < 15; ++I)
    S += "\taddl $1, -4(%rbp)\n\tsubl $1, -4(%rbp)\n";
  S += "\tnop7\n"; // pad the body to exactly 127 bytes
  if (WithNop)
    S += "\tnop\n"; // the paper's single-byte insertion before cmpl
  S += ".LTAIL:\n\tcmpl $0, -4(%rbp)\n\tjne .LBODY\n\tret\n";
  S += "\t.size main, .-main\n";
  return S;
}

void BM_RelaxSyntheticCorpus(benchmark::State &State) {
  WorkloadSpec Spec = googleCorpusProfile(0.02);
  std::string Asm = generateWorkloadAssembly(Spec);
  MaoUnit Unit = parseOrDie(Asm);
  uint64_t MaxIters = 0;
  for (auto _ : State) {
    RelaxationResult R = relaxUnit(Unit);
    if (!R.Converged)
      State.SkipWithError("relaxation did not converge");
    MaxIters = std::max(MaxIters, static_cast<uint64_t>(R.Iterations));
    benchmark::DoNotOptimize(R);
  }
  State.counters["iterations"] = static_cast<double>(MaxIters);
}
BENCHMARK(BM_RelaxSyntheticCorpus)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  printHeader("E2: repeated relaxation (paper Sec. II example)");
  BenchReport Report("relaxation");

  // The paper's example: find the jmp before and after NOP insertion.
  for (bool WithNop : {false, true}) {
    MaoUnit Unit = parseOrDie(relaxExample(WithNop));
    RelaxationResult R = relaxUnit(Unit);
    for (const MaoEntry &E : Unit.entries())
      if (E.isInstruction() && E.instruction().isUncondJump()) {
        std::printf("%-12s jmp at 0x%llx encodes in %u bytes "
                    "(relaxation: %u iterations, converged: %s)\n",
                    WithNop ? "with nop:" : "without nop:",
                    (unsigned long long)E.Address, E.Size, R.Iterations,
                    R.Converged ? "yes" : "no");
        Report.set(WithNop ? "jmp_bytes_with_nop" : "jmp_bytes_without_nop",
                   E.Size);
        Report.set(WithNop ? "iterations_with_nop" : "iterations_without_nop",
                   R.Iterations);
      }
  }
  std::printf("paper: the branch at offset 0xb grows from 2 bytes (eb 7f) "
              "to 5 bytes (e9 ...)\nwhen a single one-byte nop moves its "
              "target out of rel8 range.\n\n");

  return runCapturedBenchmarks(argc, argv, Report);
}
