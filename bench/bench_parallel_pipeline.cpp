//===- bench/bench_parallel_pipeline.cpp - Sharded pipeline scaling ----------==//
//
// Measures how the function-sharded pass executor scales with worker
// count: the same shardable pass line over the same multi-function corpus
// at 1, 2, and 4 workers. The acceptance bar for the sharding work is
// BM_ShardedSpeedup's speedup_x counter (jobs=1 wall-clock over jobs=4,
// measured interleaved so clock drift cannot skew the ratio) reaching at
// least 2.0 on a 4-core machine.
//
// Only the pass phase is timed — parsing is inherently sequential and
// would dilute the ratio; the driver pays it identically at every worker
// count. BM_ShardedPipeline gives the absolute per-worker-count numbers;
// BM_BarrierHeavyPipeline documents the other end of Amdahl's law with a
// pass line dominated by whole-unit barrier passes, which sharding cannot
// speed up.
//
//===----------------------------------------------------------------------==//

#include "BenchJson.h"

#include "asm/Parser.h"
#include "pass/MaoPass.h"
#include "support/Options.h"
#include "workload/Workload.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

using namespace mao;

namespace {

/// A corpus with enough independent functions to keep four workers busy
/// and enough pattern instances that every sharded pass does real work.
const std::string &corpusAssembly() {
  static const std::string Asm = [] {
    WorkloadSpec Spec;
    Spec.Name = "parallel-scaling";
    Spec.Seed = 3;
    Spec.Functions = 32;
    Spec.FillerPerFunction = 160;
    Spec.ZeroExtPatterns = 48;
    Spec.RedundantTests = 64;
    Spec.HarmlessTests = 48;
    Spec.RedundantLoads = 48;
    Spec.AddAddPairs = 32;
    Spec.SplitShortLoops = 8;
    Spec.AlignedShortLoops = 8;
    Spec.SchedFanoutLoops = 8;
    return generateWorkloadAssembly(Spec);
  }();
  return Asm;
}

std::vector<PassRequest> passLine(const std::string &Line) {
  std::vector<PassRequest> Requests;
  if (parseMaoOption(Line, Requests))
    Requests.clear();
  return Requests;
}

/// All-shardable line: the parallel fraction is the whole pipeline.
const char *const ShardableLine =
    "ZEE:REDTEST:REDMOV:ADDADD:DCE:CONSTFOLD:SCHED";

/// Barrier-heavy line: LOOP16/LSDOPT/BRALIGN relax the whole unit and run
/// sequentially between the shardable peepholes.
const char *const BarrierLine = "ZEE:LOOP16:REDTEST:LSDOPT:BRALIGN";

} // namespace

void runLine(benchmark::State &State, const char *Line) {
  linkAllPasses();
  auto Base = parseAssembly(corpusAssembly());
  if (!Base.ok()) {
    State.SkipWithError("parse failed");
    return;
  }
  const std::vector<PassRequest> Requests = passLine(Line);
  PipelineOptions Options;
  Options.Jobs = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    MaoUnit Unit = Base->clone();
    Unit.rebuildStructure();
    State.ResumeTiming();
    PipelineResult R = runPasses(Unit, Requests, Options);
    if (!R.Ok)
      State.SkipWithError("pass failed");
    benchmark::DoNotOptimize(R.Counts);
  }
}

void BM_ShardedPipeline(benchmark::State &State) {
  runLine(State, ShardableLine);
}
BENCHMARK(BM_ShardedPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_BarrierHeavyPipeline(benchmark::State &State) {
  runLine(State, BarrierLine);
}
BENCHMARK(BM_BarrierHeavyPipeline)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// The acceptance metric in one number: alternates jobs=1 and jobs=4 runs
/// of the shardable line within a single benchmark and reports their
/// wall-clock ratio as "speedup_x". The sharding acceptance bar is
/// speedup_x >= 2.0 at four workers.
void BM_ShardedSpeedup(benchmark::State &State) {
  linkAllPasses();
  auto Base = parseAssembly(corpusAssembly());
  if (!Base.ok()) {
    State.SkipWithError("parse failed");
    return;
  }
  const std::vector<PassRequest> Requests = passLine(ShardableLine);
  using Clock = std::chrono::steady_clock;
  auto RunOne = [&](unsigned Jobs) {
    MaoUnit Unit = Base->clone();
    Unit.rebuildStructure();
    PipelineOptions Options;
    Options.Jobs = Jobs;
    Clock::time_point T0 = Clock::now();
    PipelineResult R = runPasses(Unit, Requests, Options);
    if (!R.Ok)
      State.SkipWithError("pass failed");
    benchmark::DoNotOptimize(R.Counts);
    return std::chrono::duration<double, std::milli>(Clock::now() - T0)
        .count();
  };
  double Ms1 = 0, Ms4 = 0;
  for (auto _ : State) {
    Ms1 += RunOne(1);
    Ms4 += RunOne(4);
  }
  State.counters["speedup_x"] = Ms4 > 0 ? Ms1 / Ms4 : 0.0;
}
BENCHMARK(BM_ShardedSpeedup)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  maobench::BenchReport Report("parallel_pipeline");
  return maobench::runCapturedBenchmarks(argc, argv, Report);
}
