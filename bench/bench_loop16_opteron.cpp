//===- bench/bench_loop16_opteron.cpp - E12: LOOP16 on the Opteron model ------===//
//
// Paper Sec. V-B, third table: the same transformation on an AMD Opteron
// helps a different set of benchmarks, yet still degrades 252.eon.
//
//   Benchmark      LOOP16
//   C++/252.eon    -5.86%
//   C/181.mcf      +2.47%
//   C/186.crafty   +2.45%
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

using namespace maobench;

int main(int argc, char **argv) {
  BenchReport Report("loop16_opteron");
  printHeader("E12: LOOP16 small-loop alignment (Opteron model)");
  ProcessorConfig Opteron = ProcessorConfig::opteron();
  struct Row {
    const char *Label, *Benchmark;
    double Paper;
  } Rows[] = {{"C++/252.eon", "252.eon", -5.86},
              {"C/181.mcf", "181.mcf", 2.47},
              {"C/186.crafty", "186.crafty", 2.45}};
  for (const Row &R : Rows) {
    const double Delta = benchmarkDelta(R.Benchmark, "LOOP16", Opteron);
    printRow(R.Label, R.Paper, Delta);
    Report.set(std::string(R.Benchmark) + "_delta_pct", Delta);
  }
  std::printf("\nThe Opteron model has no LSD and a narrower decoder, so a "
              "different set\nof benchmarks profits; eon's fragile bucket "
              "layout degrades on both\nplatforms, as in the paper.\n");
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
