//===- bench/bench_loop16_opteron.cpp - E12: LOOP16 on the Opteron model ------===//
//
// Paper Sec. V-B, third table: the same transformation on an AMD Opteron
// helps a different set of benchmarks, yet still degrades 252.eon.
//
//   Benchmark      LOOP16
//   C++/252.eon    -5.86%
//   C/181.mcf      +2.47%
//   C/186.crafty   +2.45%
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace maobench;

int main() {
  printHeader("E12: LOOP16 small-loop alignment (Opteron model)");
  ProcessorConfig Opteron = ProcessorConfig::opteron();
  printRow("C++/252.eon", -5.86,
           benchmarkDelta("252.eon", "LOOP16", Opteron));
  printRow("C/181.mcf", 2.47, benchmarkDelta("181.mcf", "LOOP16", Opteron));
  printRow("C/186.crafty", 2.45,
           benchmarkDelta("186.crafty", "LOOP16", Opteron));
  std::printf("\nThe Opteron model has no LSD and a narrower decoder, so a "
              "different set\nof benchmarks profits; eon's fragile bucket "
              "layout degrades on both\nplatforms, as in the paper.\n");
  return 0;
}
