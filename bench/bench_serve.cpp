//===- bench/bench_serve.cpp - Service mode & artifact cache ------------------===//
//
// Measures what the persistent artifact cache and the maod service buy
// (and cost) on a representative kernel:
//
//  - cold:     Session::cacheRun on a miss (compute + crash-safe store),
//  - warm:     the same request as a verified on-disk hit,
//  - daemon:   requests/s through a real maod server over a unix socket,
//              cold process-warm cache, at 1 and 4 concurrent clients,
//  - recovery: fsck wall-clock over a populated cache with a slice of
//              entries deliberately corrupted (the quarantine path).
//
// Emits BENCH_serve.json (path overridable as argv[1]) alongside the
// human-readable table, in the shared schema BenchJson.h defines.
//
//===----------------------------------------------------------------------===//

#include "ApiBenchUtil.h"
#include "BenchJson.h"
#include "serve/ArtifactCache.h"
#include "serve/Serve.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace maobench;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

std::string kernel(unsigned Variant) {
  // One distinct redundant-test kernel per variant so every request is a
  // distinct cache key (the variant constant lands in the text).
  return "\t.text\n\t.globl bench_main\n\t.type bench_main, @function\n"
         "bench_main:\n"
         "\tpushq %rbp\n\tmovq %rsp, %rbp\n"
         "\tmovl $" +
         std::to_string(100 + Variant) +
         ", %ecx\n"
         "\txorl %eax, %eax\n"
         ".LLOOP:\n"
         "\taddl $2, %eax\n"
         "\ttestl %eax, %eax\n"
         "\tsubl $1, %ecx\n"
         "\tjne .LLOOP\n"
         "\tmovl $0, %eax\n\tleave\n\tret\n"
         "\t.size bench_main, .-bench_main\n";
}

std::string tempDir() {
  char Template[] = "/tmp/mao-bench-serve-XXXXXX";
  const char *Dir = mkdtemp(Template);
  if (!Dir) {
    std::fprintf(stderr, "bench: cannot create temp dir\n");
    std::exit(1);
  }
  return Dir;
}

mao::api::CachedRunRequest request(unsigned Variant) {
  mao::api::CachedRunRequest Request;
  Request.Source = kernel(Variant);
  Request.Name = "bench.s";
  if (mao::api::Status S = mao::api::Session::parsePipelineSpec(
          "zee,redtest", Request.Pipeline);
      !S.Ok) {
    std::fprintf(stderr, "bench: %s\n", S.Message.c_str());
    std::exit(1);
  }
  return Request;
}

struct CachePhase {
  double ColdMsAvg = 0;
  double WarmMsAvg = 0;
};

CachePhase benchCache(const std::string &Dir, unsigned Rounds) {
  mao::api::Session Session;
  if (mao::api::Status S = Session.cacheOpen(Dir); !S.Ok) {
    std::fprintf(stderr, "bench: cacheOpen: %s\n", S.Message.c_str());
    std::exit(1);
  }
  CachePhase Phase;
  for (unsigned I = 0; I < Rounds; ++I) {
    mao::api::CachedRunResult Result;
    Clock::time_point Start = Clock::now();
    if (mao::api::Status S = Session.cacheRun(request(I), Result); !S.Ok) {
      std::fprintf(stderr, "bench: cold cacheRun: %s\n", S.Message.c_str());
      std::exit(1);
    }
    Phase.ColdMsAvg += msSince(Start);
    if (Result.CacheHit) {
      std::fprintf(stderr, "bench: cold run unexpectedly hit\n");
      std::exit(1);
    }
  }
  for (unsigned I = 0; I < Rounds; ++I) {
    mao::api::CachedRunResult Result;
    Clock::time_point Start = Clock::now();
    if (mao::api::Status S = Session.cacheRun(request(I), Result); !S.Ok) {
      std::fprintf(stderr, "bench: warm cacheRun: %s\n", S.Message.c_str());
      std::exit(1);
    }
    Phase.WarmMsAvg += msSince(Start);
    if (!Result.CacheHit) {
      std::fprintf(stderr, "bench: warm run missed\n");
      std::exit(1);
    }
  }
  Phase.ColdMsAvg /= Rounds;
  Phase.WarmMsAvg /= Rounds;
  return Phase;
}

/// Requests/s through a live daemon at \p Clients concurrent connections,
/// all warm hits (the cache was populated by benchCache).
double benchDaemon(const std::string &CacheDir, const std::string &Sock,
                   unsigned Clients, unsigned PerClient) {
  mao::serve::ServerOptions Options;
  Options.SocketPath = Sock;
  Options.Engine.CacheDir = CacheDir;
  mao::serve::Server Server(Options);
  std::thread ServerThread([&Server] { (void)Server.run(); });

  mao::serve::ClientOptions Client;
  Client.SocketPath = Sock;
  Client.Attempts = 100;
  Client.BackoffMs = 10;

  // One probe request (retrying until the daemon binds) before timing.
  mao::serve::ServeRequest Probe;
  Probe.Name = "bench.s";
  Probe.Source = kernel(0);
  Probe.Pipeline = "zee,redtest";
  mao::serve::ServeResponse Ignored;
  if (mao::MaoStatus S = mao::serve::clientRun(Client, Probe, Ignored)) {
    std::fprintf(stderr, "bench: daemon probe: %s\n", S.message().c_str());
    std::exit(1);
  }

  Client.Attempts = 3;
  Clock::time_point Start = Clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&, C] {
      for (unsigned I = 0; I < PerClient; ++I) {
        mao::serve::ServeRequest R;
        R.Name = "bench.s";
        R.Source = kernel((C + I) % 8);
        R.Pipeline = "zee,redtest";
        mao::serve::ServeResponse Resp;
        if (mao::MaoStatus S = mao::serve::clientRun(Client, R, Resp)) {
          std::fprintf(stderr, "bench: daemon run: %s\n",
                       S.message().c_str());
          std::exit(1);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  const double Seconds = msSince(Start) / 1000.0;

  (void)mao::serve::clientShutdown(Client);
  Server.requestStop();
  ServerThread.join();
  return Seconds > 0 ? (Clients * PerClient) / Seconds : 0.0;
}

struct RecoveryPhase {
  double FsckMs = 0;
  unsigned Quarantined = 0;
  uint64_t Entries = 0;
};

RecoveryPhase benchRecovery(const std::string &Dir) {
  // Corrupt every 8th entry by truncation, then time the full fsck.
  mao::serve::ArtifactCache Cache;
  if (mao::MaoStatus S = Cache.open(Dir)) {
    std::fprintf(stderr, "bench: %s\n", S.message().c_str());
    std::exit(1);
  }
  for (unsigned I = 0; I < 64; ++I) {
    mao::serve::CacheEntry Entry;
    Entry.set("output", std::string(1024 + I, 'x'));
    Entry.set("report", "{}");
    (void)Cache.store(0x9000 + I, Entry);
    if (I % 8 == 0) {
      const std::string Path = Cache.entryPath(0x9000 + I);
      std::ifstream In(Path, std::ios::binary);
      std::string Bytes((std::istreambuf_iterator<char>(In)),
                        std::istreambuf_iterator<char>());
      In.close();
      std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
      Out.write(Bytes.data(),
                static_cast<std::streamsize>(Bytes.size() / 2));
    }
  }
  RecoveryPhase Phase;
  Clock::time_point Start = Clock::now();
  Phase.Quarantined = Cache.fsck();
  Phase.FsckMs = msSince(Start);
  Phase.Entries = Cache.stats().Entries;
  return Phase;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchReport Report("serve");
  const std::string OutPath = benchJsonPath(Argc, Argv, Report.name());
  const std::string Root = tempDir();
  const std::string CacheDir = Root + "/cache";
  constexpr unsigned Rounds = 32;
  constexpr unsigned PerClient = 64;

  printHeader("Service mode: persistent artifact cache + maod daemon");

  const CachePhase Cache = benchCache(CacheDir, Rounds);
  std::printf("cacheRun  cold %8.3f ms/req   warm %8.3f ms/req   "
              "(%.1fx, %u requests each)\n",
              Cache.ColdMsAvg, Cache.WarmMsAvg,
              Cache.WarmMsAvg > 0 ? Cache.ColdMsAvg / Cache.WarmMsAvg : 0.0,
              Rounds);

  const double Rps1 = benchDaemon(CacheDir, Root + "/b1.sock", 1, PerClient);
  const double Rps4 = benchDaemon(CacheDir, Root + "/b4.sock", 4, PerClient);
  std::printf("maod      %8.0f req/s at 1 client   %8.0f req/s at 4 "
              "clients (warm hits)\n",
              Rps1, Rps4);

  const RecoveryPhase Recovery = benchRecovery(Root + "/recovery");
  std::printf("recovery  fsck of 64 entries (8 corrupt) %8.3f ms, "
              "%u quarantined, %llu left\n",
              Recovery.FsckMs, Recovery.Quarantined,
              (unsigned long long)Recovery.Entries);

  Report.set("cold_ms_per_request", Cache.ColdMsAvg);
  Report.set("warm_ms_per_request", Cache.WarmMsAvg);
  Report.set("warm_speedup",
             Cache.WarmMsAvg > 0 ? Cache.ColdMsAvg / Cache.WarmMsAvg : 0.0);
  Report.set("daemon_rps_1_client", Rps1);
  Report.set("daemon_rps_4_clients", Rps4);
  Report.set("fsck_ms_64_entries", Recovery.FsckMs);
  Report.set("fsck_quarantined", Recovery.Quarantined);
  Report.set("fsck_entries_left", static_cast<double>(Recovery.Entries));
  const bool Wrote = Report.write(OutPath);

  std::system(("rm -rf '" + Root + "'").c_str());
  return Wrote ? 0 : 1;
}
