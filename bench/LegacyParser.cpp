//===- bench/LegacyParser.cpp - Frozen pre-arena parser ---------------------==//
//
// Snapshot of src/asm/Parser.cpp before the single-pass string_view lexer
// landed. Kept byte-faithful (modulo namespacing and the removal of the
// fault-injection draw, which would perturb benchmark runs) so bench_core's
// legacy-vs-current parse throughput ratio measures the real rewrite.
//
//===----------------------------------------------------------------------===//

#include "LegacyParser.h"

#include "x86/Encoder.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <optional>

using namespace mao;

namespace {

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

bool isLabelChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '.' ||
         C == '$' || C == '@';
}

/// Splits on commas at paren depth zero, outside quoted strings.
std::vector<std::string> splitTopLevelCommas(const std::string &Text) {
  std::vector<std::string> Parts;
  std::string Cur;
  int Depth = 0;
  bool InString = false;
  for (size_t I = 0; I < Text.size(); ++I) {
    char C = Text[I];
    if (InString) {
      Cur += C;
      if (C == '\\' && I + 1 < Text.size())
        Cur += Text[++I];
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"') {
      InString = true;
      Cur += C;
      continue;
    }
    if (C == '(')
      ++Depth;
    else if (C == ')')
      --Depth;
    if (C == ',' && Depth == 0) {
      Parts.push_back(trim(Cur));
      Cur.clear();
      continue;
    }
    Cur += C;
  }
  if (!trim(Cur).empty() || !Parts.empty())
    Parts.push_back(trim(Cur));
  return Parts;
}

bool parseInteger(const std::string &Text, int64_t &Value) {
  if (Text.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  Value = static_cast<int64_t>(std::strtoll(Text.c_str(), &End, 0));
  return End == Text.c_str() + Text.size() && End != Text.c_str();
}

bool parseSymbolExpr(const std::string &Text, std::string &Name,
                     int64_t &Addend) {
  if (Text.empty() || std::isdigit(static_cast<unsigned char>(Text[0])))
    return false;
  size_t I = 0;
  while (I < Text.size() && isLabelChar(Text[I]))
    ++I;
  if (I == 0)
    return false;
  Name = Text.substr(0, I);
  Addend = 0;
  if (I == Text.size())
    return true;
  if (Text[I] != '+' && Text[I] != '-')
    return false;
  int64_t Rest = 0;
  if (!parseInteger(Text.substr(I), Rest))
    return false;
  Addend = Rest;
  return true;
}

std::optional<Operand> parseOperandText(const std::string &RawText) {
  std::string Text = trim(RawText);
  if (Text.empty())
    return std::nullopt;

  bool Star = false;
  if (Text[0] == '*') {
    Star = true;
    Text = trim(Text.substr(1));
    if (Text.empty())
      return std::nullopt;
  }

  if (Text[0] == '$') {
    std::string Body = Text.substr(1);
    int64_t Value = 0;
    if (parseInteger(Body, Value))
      return Operand::makeImm(Value);
    std::string Sym;
    int64_t Addend = 0;
    if (parseSymbolExpr(Body, Sym, Addend))
      return Operand::makeImmSym(Sym, Addend);
    return std::nullopt;
  }

  if (Text[0] == '%') {
    Reg R = parseRegName(Text.substr(1));
    if (R == Reg::None)
      return std::nullopt;
    Operand Op = Operand::makeReg(R);
    Op.IndirectStar = Star;
    return Op;
  }

  size_t Paren = Text.find('(');
  if (Paren != std::string::npos) {
    if (Text.back() != ')')
      return std::nullopt;
    MemRef M;
    std::string DispText = trim(Text.substr(0, Paren));
    if (!DispText.empty()) {
      if (!parseInteger(DispText, M.Disp) &&
          !parseSymbolExpr(DispText, M.SymDisp, M.Disp))
        return std::nullopt;
    }
    std::string Inner = Text.substr(Paren + 1, Text.size() - Paren - 2);
    std::vector<std::string> Parts = splitTopLevelCommas(Inner);
    if (Parts.empty() || Parts.size() > 3)
      return std::nullopt;
    if (!Parts[0].empty()) {
      if (Parts[0][0] != '%')
        return std::nullopt;
      M.Base = parseRegName(Parts[0].substr(1));
      if (M.Base == Reg::None)
        return std::nullopt;
    }
    if (Parts.size() >= 2 && !Parts[1].empty()) {
      if (Parts[1][0] != '%')
        return std::nullopt;
      M.Index = parseRegName(Parts[1].substr(1));
      if (M.Index == Reg::None)
        return std::nullopt;
    }
    if (Parts.size() == 3 && !Parts[2].empty()) {
      int64_t Scale = 0;
      if (!parseInteger(Parts[2], Scale) ||
          (Scale != 1 && Scale != 2 && Scale != 4 && Scale != 8))
        return std::nullopt;
      M.Scale = static_cast<uint8_t>(Scale);
    }
    Operand Op = Operand::makeMem(std::move(M));
    Op.IndirectStar = Star;
    return Op;
  }

  // Bare integer: absolute memory reference.
  int64_t Value = 0;
  if (parseInteger(Text, Value)) {
    MemRef M;
    M.Disp = Value;
    Operand Op = Operand::makeMem(std::move(M));
    Op.IndirectStar = Star;
    return Op;
  }

  // Bare symbol: direct target or data symbol.
  std::string Sym;
  int64_t Addend = 0;
  if (parseSymbolExpr(Text, Sym, Addend)) {
    Operand Op = Operand::makeSymbol(Sym, Addend);
    Op.IndirectStar = Star;
    return Op;
  }
  return std::nullopt;
}

struct MnemonicParse {
  Mnemonic Mn = Mnemonic::Invalid;
  Width W = Width::None;
  Width SrcW = Width::None;
  CondCode CC = CondCode::None;
  uint8_t NopLength = 1;
};

std::optional<Width> widthFromChar(char C) {
  switch (C) {
  case 'b':
    return Width::B;
  case 'w':
    return Width::W;
  case 'l':
    return Width::L;
  case 'q':
    return Width::Q;
  default:
    return std::nullopt;
  }
}

std::optional<MnemonicParse> parseMnemonicText(const std::string &M) {
  MnemonicParse P;

  if (M.rfind("nop", 0) == 0) {
    if (M == "nop") {
      P.Mn = Mnemonic::NOP;
      return P;
    }
    std::string Rest = M.substr(3);
    int64_t Len = 0;
    if (parseInteger(Rest, Len) && Len >= 1 && Len <= 15) {
      P.Mn = Mnemonic::NOP;
      P.NopLength = static_cast<uint8_t>(Len);
      return P;
    }
    return std::nullopt;
  }

  if (M == "movslq") {
    P.Mn = Mnemonic::MOVSX;
    P.SrcW = Width::L;
    P.W = Width::Q;
    return P;
  }

  if (M == "movq") {
    P.Mn = Mnemonic::MOV;
    P.W = Width::Q;
    return P;
  }
  if (M == "movabs" || M == "movabsq") {
    P.Mn = Mnemonic::MOV;
    P.W = Width::Q;
    return P;
  }

  if (Mnemonic Exact = findMnemonicExact(M); Exact != Mnemonic::Invalid) {
    if (Exact != Mnemonic::JCC && Exact != Mnemonic::SETCC &&
        Exact != Mnemonic::CMOVCC) {
      P.Mn = Exact;
      return P;
    }
  }

  if (M.size() == 6 &&
      (M.rfind("movz", 0) == 0 || M.rfind("movs", 0) == 0)) {
    auto Src = widthFromChar(M[4]);
    auto Dst = widthFromChar(M[5]);
    if (Src && Dst && widthBytes(*Src) < widthBytes(*Dst) &&
        *Src != Width::L) {
      P.Mn = M[3] == 'z' ? Mnemonic::MOVZX : Mnemonic::MOVSX;
      P.SrcW = *Src;
      P.W = *Dst;
      return P;
    }
  }

  if (M.size() >= 2 && M[0] == 'j') {
    CondCode CC = parseCondCode(M.substr(1));
    if (CC != CondCode::None) {
      P.Mn = Mnemonic::JCC;
      P.CC = CC;
      return P;
    }
  }
  if (M.rfind("set", 0) == 0) {
    CondCode CC = parseCondCode(M.substr(3));
    if (CC != CondCode::None) {
      P.Mn = Mnemonic::SETCC;
      P.CC = CC;
      P.W = Width::B;
      return P;
    }
  }
  if (M.rfind("cmov", 0) == 0) {
    std::string Rest = M.substr(4);
    CondCode CC = parseCondCode(Rest);
    if (CC == CondCode::None && Rest.size() >= 2) {
      if (auto W = widthFromChar(Rest.back())) {
        CC = parseCondCode(Rest.substr(0, Rest.size() - 1));
        if (CC != CondCode::None)
          P.W = *W;
      }
    }
    if (CC != CondCode::None) {
      P.Mn = Mnemonic::CMOVCC;
      P.CC = CC;
      return P;
    }
  }

  if (M.size() >= 2) {
    if (auto W = widthFromChar(M.back())) {
      std::string Base = M.substr(0, M.size() - 1);
      if (Base == "sal")
        Base = "shl";
      Mnemonic Mn = findMnemonicExact(Base);
      if (Mn != Mnemonic::Invalid && Mn != Mnemonic::JCC &&
          Mn != Mnemonic::SETCC && Mn != Mnemonic::CMOVCC) {
        P.Mn = Mn;
        P.W = *W;
        return P;
      }
    }
  }
  if (M == "sal") {
    P.Mn = Mnemonic::SHL;
    return P;
  }
  return std::nullopt;
}

void deduceWidth(Instruction &Insn) {
  if (Insn.W != Width::None)
    return;
  const EncKind K = Insn.info().Kind;
  if (K == EncKind::Push || K == EncKind::Pop) {
    Insn.W = Width::Q;
    return;
  }
  for (auto It = Insn.Ops.rbegin(), E = Insn.Ops.rend(); It != E; ++It) {
    if (It->isReg() && regIsGpr(It->R)) {
      Insn.W = regWidth(It->R);
      return;
    }
  }
}

bool validateBranchTarget(const Instruction &Insn) {
  const Operand *Target = Insn.branchTarget();
  if (!Target)
    return true;
  if (Target->isSymbol())
    return !Target->IndirectStar;
  if (Target->isReg() || Target->isMem())
    return Target->IndirectStar;
  return false;
}

Instruction makeOpaque(const std::string &Line) {
  Instruction Insn;
  Insn.Mn = Mnemonic::OPAQUE;
  Insn.RawText = trim(Line);
  return Insn;
}

Instruction legacyParseInstructionLine(const std::string &Line) {
  std::string Text = trim(Line);
  size_t NameEnd = 0;
  while (NameEnd < Text.size() && !std::isspace(static_cast<unsigned char>(
                                      Text[NameEnd])))
    ++NameEnd;
  std::string Name = Text.substr(0, NameEnd);
  std::string Rest = trim(Text.substr(NameEnd));

  auto ParsedMnemonic = parseMnemonicText(Name);
  if (!ParsedMnemonic)
    return makeOpaque(Line);

  Instruction Insn;
  Insn.Mn = ParsedMnemonic->Mn;
  Insn.W = ParsedMnemonic->W;
  Insn.SrcW = ParsedMnemonic->SrcW;
  Insn.CC = ParsedMnemonic->CC;
  Insn.NopLength = ParsedMnemonic->NopLength;

  if (!Rest.empty()) {
    for (const std::string &OpText : splitTopLevelCommas(Rest)) {
      auto Op = parseOperandText(OpText);
      if (!Op)
        return makeOpaque(Line);
      Insn.Ops.push_back(std::move(*Op));
    }
  }

  if (Insn.Mn == Mnemonic::MOV) {
    bool HasXmm = false;
    for (const Operand &Op : Insn.Ops)
      if (Op.isReg() && regIsXmm(Op.R))
        HasXmm = true;
    if (HasXmm)
      Insn.Mn = Mnemonic::MOVQX;
  }

  deduceWidth(Insn);
  if (!validateBranchTarget(Insn))
    return makeOpaque(Line);

  auto CountOk = [&]() -> bool {
    switch (Insn.info().Kind) {
    case EncKind::Mov:
    case EncKind::Movx:
    case EncKind::Lea:
    case EncKind::AluRMI:
    case EncKind::Test:
    case EncKind::Xchg:
    case EncKind::Cmovcc:
    case EncKind::SseMov:
    case EncKind::SseCvtMov:
    case EncKind::SseAlu:
      return Insn.Ops.size() == 2;
    case EncKind::UnaryRM:
    case EncKind::Push:
    case EncKind::Pop:
    case EncKind::Bswap:
    case EncKind::Setcc:
    case EncKind::Jmp:
    case EncKind::Jcc:
    case EncKind::Call:
    case EncKind::Prefetch:
      return Insn.Ops.size() == 1;
    case EncKind::ImulMulti:
      return Insn.Ops.size() >= 1 && Insn.Ops.size() <= 3;
    case EncKind::ShiftRot:
      return Insn.Ops.size() == 1 || Insn.Ops.size() == 2;
    case EncKind::Ret:
      return Insn.Ops.size() <= 1;
    case EncKind::Fixed:
    case EncKind::Nop:
      return Insn.Ops.empty();
    case EncKind::Opaque:
      return true;
    }
    return false;
  };
  if (!CountOk())
    return makeOpaque(Line);

  switch (Insn.info().Kind) {
  case EncKind::Mov:
  case EncKind::AluRMI:
  case EncKind::Test:
  case EncKind::UnaryRM:
  case EncKind::ImulMulti:
  case EncKind::ShiftRot:
  case EncKind::Xchg:
  case EncKind::Bswap:
  case EncKind::Cmovcc:
    if (Insn.W == Width::None)
      return makeOpaque(Line);
    break;
  default:
    break;
  }

  std::vector<uint8_t> Bytes;
  if (encodeInstruction(Insn, 0, nullptr, Bytes))
    return makeOpaque(Line);
  return Insn;
}

Directive parseDirectiveLine(const std::string &Text) {
  Directive Dir;
  size_t NameEnd = 0;
  while (NameEnd < Text.size() &&
         !std::isspace(static_cast<unsigned char>(Text[NameEnd])))
    ++NameEnd;
  Dir.Name = Text.substr(0, NameEnd);
  std::string Rest = trim(Text.substr(NameEnd));
  if (!Rest.empty())
    Dir.Args = splitTopLevelCommas(Rest);

  static const std::unordered_map<std::string, DirKind> KindMap = {
      {".text", DirKind::Text},       {".data", DirKind::Data},
      {".bss", DirKind::Bss},         {".section", DirKind::Section},
      {".p2align", DirKind::P2Align}, {".balign", DirKind::Balign},
      {".align", DirKind::Balign},    {".globl", DirKind::Globl},
      {".global", DirKind::Globl},    {".type", DirKind::Type},
      {".size", DirKind::Size},       {".byte", DirKind::Byte},
      {".word", DirKind::Word},       {".value", DirKind::Word},
      {".short", DirKind::Word},      {".long", DirKind::Long},
      {".int", DirKind::Long},        {".quad", DirKind::Quad},
      {".zero", DirKind::Zero},       {".skip", DirKind::Zero},
      {".space", DirKind::Zero},      {".string", DirKind::String},
      {".ascii", DirKind::Ascii},     {".asciz", DirKind::Asciz},
  };
  auto It = KindMap.find(Dir.Name);
  Dir.Kind = It == KindMap.end() ? DirKind::Other : It->second;
  return Dir;
}

std::string stripComment(const std::string &Line, bool &Malformed) {
  bool InString = false;
  for (size_t I = 0; I < Line.size(); ++I) {
    char C = Line[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '#') {
      Malformed = InString;
      return Line.substr(0, I);
    }
  }
  Malformed = InString;
  return Line;
}

} // namespace

ErrorOr<MaoUnit> maobench::legacyParseAssembly(const std::string &Text,
                                               ParseStats *Stats) {
  MaoUnit Unit;
  ParseStats LocalStats;

  size_t LineStart = 0;
  while (LineStart <= Text.size()) {
    size_t LineEnd = Text.find('\n', LineStart);
    if (LineEnd == std::string::npos)
      LineEnd = Text.size();
    bool Malformed = false;
    std::string Line =
        stripComment(Text.substr(LineStart, LineEnd - LineStart), Malformed);
    LineStart = LineEnd + 1;
    ++LocalStats.Lines;
    if (Malformed)
      return MaoStatus::error("unterminated string literal");

    std::string Stmt = trim(Line);
    while (!Stmt.empty()) {
      size_t I = 0;
      while (I < Stmt.size() && isLabelChar(Stmt[I]))
        ++I;
      if (I == 0 || I >= Stmt.size() || Stmt[I] != ':')
        break;
      Unit.append(MaoEntry::makeLabel(Stmt.substr(0, I)));
      ++LocalStats.Labels;
      Stmt = trim(Stmt.substr(I + 1));
    }
    if (Stmt.empty())
      continue;

    if (Stmt[0] == '.') {
      Unit.append(MaoEntry::makeDirective(parseDirectiveLine(Stmt)));
      ++LocalStats.Directives;
      continue;
    }

    Instruction Insn = legacyParseInstructionLine(Stmt);
    if (Insn.isOpaque())
      ++LocalStats.OpaqueInstructions;
    ++LocalStats.Instructions;
    Unit.append(MaoEntry::makeInstruction(std::move(Insn)));
  }

  Unit.rebuildStructure();
  if (Stats)
    *Stats = LocalStats;
  return Unit;
}
