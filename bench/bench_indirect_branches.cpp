//===- bench/bench_indirect_branches.cpp - E3: indirect-branch resolution -----===//
//
// Paper Sec. II: on a complex internal code base, a compiler update left
// 246 of 320 indirect branches unresolved by the existing (same-block)
// patterns; "after adding a single pattern that uses the data flow
// framework's reaching definitions functionality, only 4 out of the 320
// indirect branches (1.2%) remained unresolved."
//
// The harness generates 320 jump-table dispatches in the three shapes that
// code base exhibited — same-block table loads, cross-block table loads
// (the new compiler's scheduling moved the load into a predecessor), and
// genuinely ambiguous multi-table dispatches — and runs both resolution
// tiers.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include "analysis/Dataflow.h"

using namespace maobench;

namespace {

/// One dispatch function; \p Shape 0 = same-block, 1 = cross-block
/// (reaching-defs pattern required), 2 = ambiguous (unresolvable).
std::string dispatchFunction(unsigned Index, unsigned Shape) {
  std::string N = std::to_string(Index);
  std::string S;
  S += "\t.type idisp" + N + ", @function\n";
  S += "idisp" + N + ":\n";
  switch (Shape) {
  case 0: // Load and jump in one block.
    S += "\tmovl %edi, %eax\n";
    S += "\tandl $1, %eax\n";
    S += "\tmovq .LT" + N + "(,%rax,8), %rax\n";
    S += "\tjmp *%rax\n";
    break;
  case 1: // The load sits in a predecessor block (compiler scheduling).
    S += "\tmovl %edi, %eax\n";
    S += "\tandl $1, %eax\n";
    S += "\tmovq .LT" + N + "(,%rax,8), %rax\n";
    S += "\tcmpl $0, %esi\n";
    S += "\tje .LD" + N + "\n";
    S += "\taddl $1, %esi\n";
    S += ".LD" + N + ":\n";
    S += "\tjmp *%rax\n";
    break;
  default: // Two different tables reach the jump: cannot resolve.
    S += "\tcmpl $0, %esi\n";
    S += "\tje .LE" + N + "\n";
    S += "\tmovq .LT" + N + "(,%rdi,8), %rax\n";
    S += "\tjmp .LD" + N + "\n";
    S += ".LE" + N + ":\n";
    S += "\tmovq .LU" + N + "(,%rdi,8), %rax\n";
    S += ".LD" + N + ":\n";
    S += "\tjmp *%rax\n";
    break;
  }
  S += ".LA" + N + ":\n\tmovl $1, %eax\n\tret\n";
  S += ".LB" + N + ":\n\tmovl $2, %eax\n\tret\n";
  S += "\t.size idisp" + N + ", .-idisp" + N + "\n";
  S += "\t.section .rodata\n";
  S += ".LT" + N + ":\n\t.quad .LA" + N + "\n\t.quad .LB" + N + "\n";
  if (Shape == 2)
    S += ".LU" + N + ":\n\t.quad .LB" + N + "\n\t.quad .LA" + N + "\n";
  S += "\t.text\n";
  return S;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("indirect_branches");
  printHeader("E3: indirect-branch resolution (paper: 246/320 unresolved "
              "-> 4/320 with reaching defs)");

  // The paper's mix: 74 resolvable by the old pattern, 242 needing the
  // reaching-defs pattern, 4 genuinely unresolvable.
  std::string Asm = "\t.text\n";
  unsigned Index = 0;
  for (unsigned I = 0; I < 74; ++I)
    Asm += dispatchFunction(Index++, 0);
  for (unsigned I = 0; I < 242; ++I)
    Asm += dispatchFunction(Index++, 1);
  for (unsigned I = 0; I < 4; ++I)
    Asm += dispatchFunction(Index++, 2);

  MaoUnit Unit = parseOrDie(Asm);
  unsigned Total = 0, AfterTier1 = 0, AfterTier2 = 0;
  for (MaoFunction &Fn : Unit.functions()) {
    CFG Graph = CFG::build(Fn);
    Total += Graph.stats().IndirectJumps;
    AfterTier1 += static_cast<unsigned>(Graph.unresolvedJumps().size());
    resolveIndirectJumps(Graph);
    AfterTier2 += static_cast<unsigned>(Graph.unresolvedJumps().size());
  }
  std::printf("indirect branches:                 %u   (paper: 320)\n",
              Total);
  std::printf("unresolved, same-block tier only:  %u   (paper: 246)\n",
              AfterTier1);
  std::printf("unresolved, + reaching-defs tier:  %u   (paper: 4, 1.2%%)\n",
              AfterTier2);
  std::printf("resolution rate: %.1f%%\n",
              100.0 * (Total - AfterTier2) / Total);
  Report.set("indirect_branches", Total);
  Report.set("unresolved_same_block", AfterTier1);
  Report.set("unresolved_reaching_defs", AfterTier2);
  Report.set("resolution_rate_pct", 100.0 * (Total - AfterTier2) / Total);
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
