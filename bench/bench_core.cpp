//===- bench/bench_core.cpp - Throughput core: parse/pipeline/relax -----------===//
//
// The throughput trajectory for the arena-IR + zero-copy-parse work, in one
// binary and four headline metrics (all in BENCH_core.json):
//
//  - parse MB/s, new single-pass string_view lexer vs. the frozen pre-PR
//    parser (bench/LegacyParser.cpp), on the repo's examples corpus and on
//    a larger synthetic corpus. The acceptance bar for the parser rewrite
//    is examples_parse_speedup_x >= 2.
//  - pipeline instructions/s/core: the standard peephole+sched pass line
//    at --mao-jobs=1 over the synthetic corpus.
//  - relaxation convergence wall-clock, grow vs. optimal mode, plus the
//    branches the optimal audit recovers.
//  - cross-jobs byte-identity: the emitted assembly at jobs 1/2/4 must be
//    identical (jobs_byte_identical is 1 when it holds; the tier-1
//    pipeline tests enforce the same invariant, this records it in the
//    trajectory).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"
#include "LegacyParser.h"

#include "analysis/Relaxer.h"
#include "asm/AsmEmitter.h"

#include <chrono>
#include <filesystem>
#include <fstream>

using namespace maobench;

namespace {

using Clock = std::chrono::steady_clock;

/// Best-of-N wall-clock of \p Fn in seconds (min absorbs scheduler noise
/// better than mean on a shared machine).
template <typename F> double bestSeconds(unsigned Reps, F &&Fn) {
  double Best = 1e300;
  for (unsigned I = 0; I < Reps; ++I) {
    const Clock::time_point T0 = Clock::now();
    Fn();
    Best = std::min(Best,
                    std::chrono::duration<double>(Clock::now() - T0).count());
  }
  return Best;
}

/// Every .s file under the examples directory, as (name, content) pairs.
/// Looked up relative to the working directory and one level up, so the
/// bench works from both the build tree and the repo root; falls back to
/// the synthetic corpus when the directory is absent.
std::vector<std::pair<std::string, std::string>>
loadExamples(int argc, char **argv) {
  namespace fs = std::filesystem;
  std::string Dir;
  const std::string_view Flag = "--examples=";
  for (int I = 1; I < argc; ++I) {
    std::string_view Arg = argv[I];
    if (Arg.substr(0, Flag.size()) == Flag)
      Dir = std::string(Arg.substr(Flag.size()));
  }
  if (Dir.empty())
    for (const char *Candidate : {"examples", "../examples"})
      if (fs::is_directory(Candidate)) {
        Dir = Candidate;
        break;
      }
  std::vector<std::pair<std::string, std::string>> Files;
  if (Dir.empty())
    return Files;
  for (const fs::directory_entry &Entry : fs::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".s")
      continue;
    std::ifstream In(Entry.path(), std::ios::binary);
    std::string Text((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
    if (!Text.empty())
      Files.emplace_back(Entry.path().filename().string(), std::move(Text));
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

/// Parses every corpus file \p Loops times through \p Parse and returns
/// MB/s of input text consumed.
template <typename F>
double parseThroughputMbs(
    const std::vector<std::pair<std::string, std::string>> &Corpus,
    unsigned Loops, F &&Parse) {
  double Bytes = 0;
  for (const auto &[Name, Text] : Corpus)
    Bytes += static_cast<double>(Text.size());
  const double Seconds = bestSeconds(3, [&] {
    for (unsigned I = 0; I < Loops; ++I)
      for (const auto &[Name, Text] : Corpus) {
        auto Unit = Parse(Text);
        if (!Unit.ok()) {
          std::fprintf(stderr, "bench: parse of %s failed: %s\n",
                       Name.c_str(), Unit.message().c_str());
          std::exit(1);
        }
        benchmark::DoNotOptimize(Unit->entries().size());
      }
  });
  return Seconds > 0 ? Bytes * Loops / Seconds / (1024.0 * 1024.0) : 0.0;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("core");
  printHeader("Throughput core: parse / pipeline / relaxation trajectory");

  // --- Parse throughput: new lexer vs. the frozen pre-PR parser. -------
  auto Examples = loadExamples(argc, argv);
  const bool HaveExamples = !Examples.empty();
  if (!HaveExamples)
    std::printf("examples/ not found; using the synthetic corpus for the "
                "headline ratio\n");

  WorkloadSpec Spec = googleCorpusProfile(0.05);
  std::vector<std::pair<std::string, std::string>> Synthetic;
  Synthetic.emplace_back("synthetic-corpus", generateWorkloadAssembly(Spec));
  const auto &Headline = HaveExamples ? Examples : Synthetic;
  // Small corpus => many loops; the big one gets few.
  const unsigned HeadlineLoops = HaveExamples ? 400 : 4;

  const double NewMbs = parseThroughputMbs(
      Headline, HeadlineLoops,
      [](const std::string &Text) { return parseAssembly(Text); });
  const double LegacyMbs = parseThroughputMbs(
      Headline, HeadlineLoops, [](const std::string &Text) {
        return legacyParseAssembly(Text, nullptr);
      });
  const double Speedup = LegacyMbs > 0 ? NewMbs / LegacyMbs : 0.0;
  std::printf("examples parse:   new %8.1f MB/s   legacy %8.1f MB/s   "
              "speedup %.2fx (bar: >= 2x)\n",
              NewMbs, LegacyMbs, Speedup);
  Report.set("examples_parse_mb_s", NewMbs);
  Report.set("examples_parse_mb_s_legacy", LegacyMbs);
  Report.set("examples_parse_speedup_x", Speedup);

  const double SynNewMbs = parseThroughputMbs(
      Synthetic, 4,
      [](const std::string &Text) { return parseAssembly(Text); });
  const double SynLegacyMbs =
      parseThroughputMbs(Synthetic, 4, [](const std::string &Text) {
        return legacyParseAssembly(Text, nullptr);
      });
  std::printf("synthetic parse:  new %8.1f MB/s   legacy %8.1f MB/s   "
              "speedup %.2fx\n",
              SynNewMbs, SynLegacyMbs,
              SynLegacyMbs > 0 ? SynNewMbs / SynLegacyMbs : 0.0);
  Report.set("synthetic_parse_mb_s", SynNewMbs);
  Report.set("synthetic_parse_mb_s_legacy", SynLegacyMbs);
  Report.set("synthetic_parse_speedup_x",
             SynLegacyMbs > 0 ? SynNewMbs / SynLegacyMbs : 0.0);

  // --- Pipeline throughput at one core. --------------------------------
  linkAllPasses();
  ParseStats Stats;
  auto CorpusUnit = parseAssembly(Synthetic[0].second, &Stats);
  if (!CorpusUnit.ok()) {
    std::fprintf(stderr, "bench: corpus parse failed\n");
    return 1;
  }
  std::vector<PassRequest> Requests;
  if (parseMaoOption("ZEE:REDTEST:REDMOV:ADDADD:LOOP16:SCHED", Requests))
    return 1;
  PipelineOptions OneCore;
  OneCore.Jobs = 1;
  const double PipelineSeconds = bestSeconds(3, [&] {
    MaoUnit Unit = CorpusUnit->clone();
    Unit.rebuildStructure();
    PipelineResult R = runPasses(Unit, Requests, OneCore);
    if (!R.Ok) {
      std::fprintf(stderr, "bench: pipeline failed: %s\n", R.Error.c_str());
      std::exit(1);
    }
  });
  const double InstsPerSecCore =
      PipelineSeconds > 0 ? Stats.Instructions / PipelineSeconds : 0.0;
  std::printf("pipeline:         %zu insts in %.1f ms at 1 core -> %.0f "
              "insts/s/core\n",
              Stats.Instructions, PipelineSeconds * 1e3, InstsPerSecCore);
  Report.set("pipeline_insts_per_s_per_core", InstsPerSecCore);

  // --- Relaxation convergence, grow vs. optimal. ------------------------
  const RelaxMode SavedMode = relaxMode();
  for (RelaxMode Mode : {RelaxMode::Grow, RelaxMode::Optimal}) {
    setRelaxMode(Mode);
    MaoUnit Unit = CorpusUnit->clone();
    Unit.rebuildStructure();
    RelaxationResult Last;
    const double Seconds = bestSeconds(3, [&] { Last = relaxUnit(Unit); });
    const char *Name = Mode == RelaxMode::Grow ? "grow" : "optimal";
    if (!Last.Converged) {
      std::fprintf(stderr, "bench: %s relaxation did not converge\n", Name);
      return 1;
    }
    std::printf("relax (%s):%s %8.3f ms to converge, %u iterations, "
                "%u branches shrunk\n",
                Name, Mode == RelaxMode::Grow ? "    " : " ", Seconds * 1e3,
                Last.Iterations, Last.ShrunkBranches);
    Report.set(std::string("relax_") + Name + "_converge_ms", Seconds * 1e3);
    Report.set(std::string("relax_") + Name + "_iterations",
               Last.Iterations);
    if (Mode == RelaxMode::Optimal)
      Report.set("relax_optimal_shrunk_branches", Last.ShrunkBranches);
  }
  setRelaxMode(SavedMode);

  // --- Cross-jobs byte-identity. ----------------------------------------
  std::string Reference;
  bool Identical = true;
  for (unsigned Jobs : {1u, 2u, 4u}) {
    MaoUnit Unit = CorpusUnit->clone();
    Unit.rebuildStructure();
    PipelineOptions Options;
    Options.Jobs = Jobs;
    PipelineResult R = runPasses(Unit, Requests, Options);
    if (!R.Ok) {
      std::fprintf(stderr, "bench: pipeline (jobs=%u) failed\n", Jobs);
      return 1;
    }
    std::string Out = emitAssembly(Unit);
    if (Jobs == 1)
      Reference = std::move(Out);
    else
      Identical = Identical && Out == Reference;
  }
  std::printf("cross-jobs:       emitted assembly at jobs 1/2/4 %s\n",
              Identical ? "byte-identical" : "DIVERGED");
  Report.set("jobs_byte_identical", Identical ? 1.0 : 0.0);

  const bool Wrote = Report.write(benchJsonPath(argc, argv, Report.name()));
  return (Wrote && Identical) ? 0 : 1;
}
