//===- bench/bench_pattern_counts.cpp - E4: corpus pattern counts -------------===//
//
// Paper Sec. III-B, on a Google core library of ~80 complex C++ files:
//   - ~1000 redundant zero-extension patterns ("a simple prototype ...
//     catches more than 90% of the opportunities handled by the compiler")
//   - 79763 test instructions, of which 19272 (24%) are redundant
//   - 13362 redundant memory accesses
//
// The corpus generator is calibrated to those counts; this harness runs
// the passes over it and reports what they found. Set MAO_CORPUS_SCALE
// (default 0.1) to trade time for fidelity; at 1.0 the corpus matches the
// paper's absolute counts.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include <cstdlib>

using namespace maobench;

int main(int argc, char **argv) {
  BenchReport Report("pattern_counts");
  double Scale = 0.1;
  if (const char *Env = std::getenv("MAO_CORPUS_SCALE"))
    Scale = std::atof(Env);
  printHeader("E4: pattern counts on the core-library corpus (scale " +
              std::to_string(Scale) + ")");

  WorkloadSpec Spec = googleCorpusProfile(Scale);
  std::string Asm = generateWorkloadAssembly(Spec);
  ParseStats Stats;
  auto UnitOr = parseAssembly(Asm, &Stats);
  if (!UnitOr.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", UnitOr.message().c_str());
    return 1;
  }
  std::printf("corpus: %zu lines, %zu instructions, %zu functions\n",
              Stats.Lines, Stats.Instructions, UnitOr->functions().size());

  // Count total test instructions in the corpus.
  size_t TotalTests = 0;
  for (const MaoEntry &E : UnitOr->entries())
    if (E.isInstruction() && E.instruction().Mn == Mnemonic::TEST)
      ++TotalTests;

  linkAllPasses();
  std::vector<PassRequest> Requests;
  if (parseMaoOption("ZEE:REDTEST:REDMOV:ADDADD", Requests))
    return 1;
  PipelineResult Result = runPasses(*UnitOr, Requests);
  if (!Result.Ok) {
    std::fprintf(stderr, "passes failed: %s\n", Result.Error.c_str());
    return 1;
  }

  auto PaperScaled = [&](double V) { return V * Scale; };
  for (const auto &[Name, Count] : Result.Counts) {
    double Paper = 0;
    if (Name == "ZEE")
      Paper = PaperScaled(1000);
    else if (Name == "REDTEST")
      Paper = PaperScaled(19272);
    else if (Name == "REDMOV")
      Paper = PaperScaled(13362);
    else
      continue;
    std::printf("%-8s found %6u   (paper, scaled: %8.0f)\n", Name.c_str(),
                Count, Paper);
    Report.set(Name + "_found", Count);
  }
  unsigned RedTests = 0;
  for (const auto &[Name, Count] : Result.Counts)
    if (Name == "REDTEST")
      RedTests = Count;
  if (TotalTests > 0)
    std::printf("redundant tests: %u of %zu total = %.0f%%   (paper: 19272 "
                "of 79763 = 24%%)\n",
                RedTests, TotalTests,
                100.0 * RedTests / static_cast<double>(TotalTests));
  Report.set("corpus_lines", static_cast<double>(Stats.Lines));
  Report.set("corpus_instructions", static_cast<double>(Stats.Instructions));
  Report.set("total_tests", static_cast<double>(TotalTests));
  Report.set("redundant_tests", RedTests);
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
