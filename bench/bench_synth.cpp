//===- bench/bench_synth.cpp - E22: superoptimizer rule synthesis -------------===//
//
// Throughput of the offline rule-synthesis loop (src/synth, the engine
// behind `maosynth`): harvest windows from the workload generator's
// google-corpus profile, enumerate candidate replacements, prove them
// through the symbolic oracle plus the SemanticValidator recheck, and
// score the survivors on the Core-2 model. The headline metrics are the
// candidate throughput of the prover funnel and the rate at which fully
// verified rules come out the other end — the numbers that bound how big
// a corpus an overnight synthesis run can digest.
//
// Runs through the public facade (Session::synthesize) and additionally
// reports the funnel shape (windows, candidates, proven, verified,
// emitted) so a regression in any one stage is visible in the trajectory.
//
//===----------------------------------------------------------------------===//

#include "ApiBenchUtil.h"
#include "BenchJson.h"

#include <chrono>

using namespace maobench;

int main(int argc, char **argv) {
  BenchReport Report("synth");
  printHeader("E22: superoptimizer rule synthesis (maosynth engine, "
              "workload corpus, Core-2 model, seed 1)");

  mao::api::Session Session;
  mao::api::SynthOptions Options;
  Options.IncludeWorkloads = true; // The generated google-corpus profile.
  Options.MaxWindow = 2;
  Options.MaxRules = 16;
  Options.Jobs = 0; // All hardware threads; the table is jobs-invariant.

  mao::api::SynthSummary Summary;
  using Clock = std::chrono::steady_clock;
  const Clock::time_point Start = Clock::now();
  if (mao::api::Status S = Session.synthesize(Options, Summary); !S.Ok) {
    std::fprintf(stderr, "bench: synthesis failed: %s\n", S.Message.c_str());
    return 1;
  }
  const double Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();

  std::printf("corpus %llu files  windows %llu (%llu unique)\n",
              (unsigned long long)Summary.CorpusFiles,
              (unsigned long long)Summary.WindowsHarvested,
              (unsigned long long)Summary.UniqueWindows);
  std::printf("funnel: %llu candidates -> %llu proven -> %llu verified -> "
              "%llu rules (%llu shard failures)\n",
              (unsigned long long)Summary.CandidatesTried,
              (unsigned long long)Summary.CandidatesProven,
              (unsigned long long)Summary.CandidatesVerified,
              (unsigned long long)Summary.RulesEmitted,
              (unsigned long long)Summary.ShardFailures);
  const double CandidatesPerS =
      Seconds > 0 ? Summary.CandidatesTried / Seconds : 0.0;
  const double ProvenPerS =
      Seconds > 0 ? Summary.CandidatesVerified / Seconds : 0.0;
  std::printf("throughput: %.0f candidates/s, %.1f rules proven/s "
              "(%.2f s total)\n",
              CandidatesPerS, ProvenPerS, Seconds);
  for (const mao::api::RuleInfo &R : Summary.Rules)
    std::printf("  %-24s support %-6llu %s\n", R.Name.c_str(),
                (unsigned long long)R.Fires, R.Provenance.c_str());

  Report.set("candidates_per_s", CandidatesPerS);
  Report.set("rules_proven_per_s", ProvenPerS);
  Report.set("unique_windows", static_cast<double>(Summary.UniqueWindows));
  Report.set("candidates_tried",
             static_cast<double>(Summary.CandidatesTried));
  Report.set("candidates_proven",
             static_cast<double>(Summary.CandidatesProven));
  Report.set("candidates_verified",
             static_cast<double>(Summary.CandidatesVerified));
  Report.set("rules_emitted", static_cast<double>(Summary.RulesEmitted));
  Report.set("shard_failures", static_cast<double>(Summary.ShardFailures));
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
