//===- bench/bench_instrument.cpp - E18: dynamic instrumentation NOPs ---------===//
//
// Paper Sec. III-E-l: placing single 5-byte NOPs at function entry and
// exit points (never crossing a cache line) enables atomic patching for
// dynamic instrumentation. "Remarkably, while the insertion of the nop
// instructions was expected to result in degradations ... it actually
// resulted in no degradations overall, as well as an unexpected 8%
// improvement in an image processing benchmark" — an alignment effect.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include "analysis/Relaxer.h"

using namespace maobench;

int main(int argc, char **argv) {
  BenchReport Report("instrument");
  printHeader("E18: INSTRUMENT - patchable 5-byte NOPs at entry/exit");
  linkAllPasses();
  ProcessorConfig Core2 = ProcessorConfig::core2();

  std::printf("%-14s %9s %9s %8s  %s\n", "benchmark", "base", "instr",
              "delta", "5-byte NOPs (all within one cache line)");
  double Worst = 0, Best = 0;
  for (const char *Name : {"164.gzip", "181.mcf", "256.bzip2", "252.eon",
                           "300.twolf"}) {
    const WorkloadSpec *Spec = findBenchmarkProfile(Name);
    std::string Asm = generateWorkloadAssembly(*Spec);
    MaoUnit Base = parseOrDie(Asm);
    MaoUnit Instr = parseOrDie(Asm);
    unsigned Sites = applyPasses(Instr, "INSTRUMENT");

    // Verify the pass's contract: no instrumentation NOP crosses a
    // 64-byte cache line.
    relaxUnit(Instr);
    unsigned Crossing = 0;
    for (const MaoEntry &E : Instr.entries())
      if (E.isInstruction() && E.instruction().isNop() &&
          E.instruction().NopLength == 5 && E.Address / 64 != (E.Address + 4) / 64)
        ++Crossing;

    uint64_t C0 = measure(Base, Core2).CpuCycles;
    uint64_t C1 = measure(Instr, Core2).CpuCycles;
    double Delta = percentGain(C0, C1);
    Worst = std::min(Worst, Delta);
    Best = std::max(Best, Delta);
    std::printf("%-14s %9llu %9llu %+7.2f%%  %u sites, %u crossing\n", Name,
                (unsigned long long)C0, (unsigned long long)C1, Delta, Sites,
                Crossing);
    Report.set(std::string(Name) + "_delta_pct", Delta);
    Report.set(std::string(Name) + "_crossing", Crossing);
  }
  std::printf("\npaper: no degradations overall, one unexpected +8%% from "
              "an alignment\neffect; measured range here: %+.2f%% .. "
              "%+.2f%%\n",
              Worst, Best);
  Report.set("worst_delta_pct", Worst);
  Report.set("best_delta_pct", Best);
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
