//===- bench/BenchJson.h - Shared BENCH_<name>.json emission ----*- C++ -*-===//
///
/// \file
/// Every bench binary emits a machine-readable summary next to its
/// human-readable output, all in one shared shape:
///
///   {"bench": "<name>", "schema": 1, "metrics": {"<key>": <number>, ...}}
///
/// scripts/bench_trajectory.sh validates every emitted file against this
/// schema, which is what makes the bench suite a *trajectory*: a run is
/// comparable to any other run, metric by metric, across commits.
///
/// Two usage styles, matching the two harness styles in this directory:
///
///   - printf harnesses call Report.set("key", value) for the numbers they
///     already print, then Report.write(Path) before returning;
///   - google-benchmark harnesses run through runCapturedBenchmarks(),
///     which records every benchmark's per-iteration time and user
///     counters automatically.
///
/// The output path is `--bench-json=PATH` when given, else the first bare
/// argument ending in ".json" (bench_serve's historical convention), else
/// `BENCH_<name>.json` in the working directory. write() always includes a
/// "harness_wall_ms" metric so no valid run can produce an empty metrics
/// object.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_BENCH_BENCHJSON_H
#define MAO_BENCH_BENCHJSON_H

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>

namespace maobench {

/// Metric keys stay within [A-Za-z0-9_]; everything else (the '/' and ':'
/// google-benchmark puts into parameterized names) becomes '_'.
inline std::string sanitizeMetricKey(std::string_view Raw) {
  std::string Key;
  Key.reserve(Raw.size());
  for (char C : Raw) {
    const bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                    (C >= '0' && C <= '9') || C == '_';
    Key += Ok ? C : '_';
  }
  return Key;
}

class BenchReport {
public:
  explicit BenchReport(std::string Name)
      : Name(std::move(Name)), Start(std::chrono::steady_clock::now()) {}

  const std::string &name() const { return Name; }

  /// Records one metric; NaN/Inf are clamped to 0 so the file is always
  /// valid JSON. Keys are sanitized, later sets overwrite earlier ones.
  void set(std::string_view Key, double Value) {
    Metrics[sanitizeMetricKey(Key)] = std::isfinite(Value) ? Value : 0.0;
  }

  /// Writes the schema-shaped JSON to \p Path. Returns false (with a
  /// message on stderr) when the file cannot be written; benches treat
  /// that as a harness failure.
  bool write(const std::string &Path) {
    const double WallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - Start)
            .count();
    Metrics["harness_wall_ms"] = WallMs;
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "bench: cannot write %s\n", Path.c_str());
      return false;
    }
    std::fprintf(F, "{\"bench\": \"%s\", \"schema\": 1, \"metrics\": {",
                 Name.c_str());
    bool First = true;
    for (const auto &[Key, Value] : Metrics) {
      std::fprintf(F, "%s\"%s\": %.17g", First ? "" : ", ", Key.c_str(),
                   Value);
      First = false;
    }
    std::fprintf(F, "}}\n");
    std::fclose(F);
    std::printf("wrote %s\n", Path.c_str());
    return true;
  }

private:
  std::string Name;
  std::map<std::string, double> Metrics; ///< Sorted => deterministic file.
  std::chrono::steady_clock::time_point Start;
};

/// Resolves where this bench's JSON goes (see file comment for the rules).
inline std::string benchJsonPath(int argc, char **argv,
                                 const std::string &Name) {
  const std::string_view Flag = "--bench-json=";
  for (int I = 1; I < argc; ++I) {
    std::string_view Arg = argv[I];
    if (Arg.substr(0, Flag.size()) == Flag)
      return std::string(Arg.substr(Flag.size()));
  }
  for (int I = 1; I < argc; ++I) {
    std::string_view Arg = argv[I];
    if (!Arg.empty() && Arg[0] != '-' && Arg.size() > 5 &&
        Arg.substr(Arg.size() - 5) == ".json")
      return std::string(Arg);
  }
  return "BENCH_" + Name + ".json";
}

/// Console reporter that additionally records every finished run into a
/// BenchReport: per-iteration real time in milliseconds plus every user
/// counter, keyed by the (sanitized) benchmark name.
class CaptureReporter : public benchmark::ConsoleReporter {
public:
  explicit CaptureReporter(BenchReport &Report) : Report(Report) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    benchmark::ConsoleReporter::ReportRuns(Runs);
    for (const Run &R : Runs) {
      if (R.error_occurred)
        continue;
      const std::string Key = sanitizeMetricKey(R.benchmark_name());
      const double Iters = R.iterations > 0
                               ? static_cast<double>(R.iterations)
                               : 1.0;
      Report.set(Key + "_ms_per_iter",
                 R.real_accumulated_time * 1e3 / Iters);
      for (const auto &[CounterName, Counter] : R.counters)
        Report.set(Key + "_" + CounterName, Counter.value);
    }
  }

private:
  BenchReport &Report;
};

/// Initializes google-benchmark, runs the registered benchmarks with a
/// CaptureReporter feeding \p Report, and writes the JSON. Returns the
/// process exit code.
inline int runCapturedBenchmarks(int argc, char **argv, BenchReport &Report) {
  const std::string OutPath = benchJsonPath(argc, argv, Report.name());
  benchmark::Initialize(&argc, argv);
  CaptureReporter Reporter(Report);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  return Report.write(OutPath) ? 0 : 1;
}

} // namespace maobench

#endif // MAO_BENCH_BENCHJSON_H
