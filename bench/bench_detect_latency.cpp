//===- bench/bench_detect_latency.cpp - E16: parameter detection --------------===//
//
// Paper Sec. IV / Fig. 6: the microbenchmark framework determines an
// instruction's latency by generating a CYCLE dependence chain, running it
// in isolation, and dividing CPU cycles by dynamic instructions. Beyond
// the paper's case study, this harness runs the further detectors the
// framework motivates ("an ambitious goal is to discover ... features
// automatically") and checks each recovered parameter against the
// simulator's configured ground truth — the semi-automatic discovery loop
// the paper proposes, closed.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include "detect/Detect.h"

using namespace maobench;

namespace {

unsigned Matches = 0, Probes = 0;

void report(const char *What, ErrorOr<unsigned> Detected, unsigned Truth) {
  ++Probes;
  if (!Detected.ok()) {
    std::printf("  %-26s detection failed: %s\n", What,
                Detected.message().c_str());
    return;
  }
  if (*Detected == Truth)
    ++Matches;
  std::printf("  %-26s detected %3u   (configured: %3u)  %s\n", What,
              *Detected, Truth, *Detected == Truth ? "MATCH" : "off");
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("detect_latency");
  printHeader("E16: micro-architectural parameter detection (Sec. IV, "
              "Fig. 6)");
  struct Machine {
    ProcessorConfig Config;
  } Machines[] = {{ProcessorConfig::core2()},
                  {ProcessorConfig::opteron()},
                  {ProcessorConfig::pentium4()}};

  for (const Machine &M : Machines) {
    DetectProcessor Proc(M.Config);
    std::printf("%s:\n", M.Config.Name.c_str());
    report("latency(addl)",
           detectInstructionLatency(Proc, InstructionTemplate::add()), 1);
    report("latency(imull)",
           detectInstructionLatency(Proc, InstructionTemplate::imul()), 3);
    report("decode line bytes", detectDecodeLineBytes(Proc),
           M.Config.DecodeLineBytes);
    report("LSD capacity (lines)", detectLsdMaxLines(Proc),
           M.Config.HasLsd ? M.Config.LsdMaxLines : 0);
    report("predictor index shift", detectPredictorIndexShift(Proc),
           M.Config.BtbIndexShift);
    report("forwarding bandwidth", detectForwardingBandwidth(Proc),
           M.Config.ForwardingBandwidth);
  }
  std::printf("\nEach parameter is recovered black-box from PMU-style "
              "counters on generated\nmicrobenchmarks, as the paper's "
              "Python framework does on real hardware.\n");
  Report.set("probes", Probes);
  Report.set("matches", Matches);
  Report.set("match_rate", Probes ? 100.0 * Matches / Probes : 0.0);
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
