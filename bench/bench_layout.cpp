//===- bench/bench_layout.cpp - I-side hierarchy and code-layout passes -------===//
//
// The cache-aware layout passes against the instruction-side memory
// hierarchy (L1I, ITLB, shared L2) of the Core-2 model:
//
//   - HOTCOLD on a unit whose live functions are interleaved with cold
//     page-aligned padding functions: before the pass every iteration
//     touches 17 code pages (thrashing the 16-entry ITLB) and funnels all
//     helper lines into L1I set 0; after it the hot set packs onto one
//     page and a handful of lines.
//   - BBREORDER on a loop whose extent is inflated past the LSD's
//     four-line limit by a dead jumped-over block: moving the block
//     behind the ret lets the loop stream again.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

using namespace maobench;

namespace {

/// The examples/layout_hotcold.s shape: round-robin calls to \p Funcs tiny
/// helpers, each pushed onto its own 4 KiB page by a cold padding function.
std::string hotColdKernel(unsigned Funcs, unsigned Iterations) {
  std::string S;
  S += "\t.text\n\t.globl bench_main\n\t.type bench_main, @function\n";
  S += "bench_main:\n";
  S += "\tmovl $" + std::to_string(Iterations) + ", %r10d\n";
  S += "\txorl %eax, %eax\n";
  S += ".Lloop:\n";
  for (unsigned I = 0; I < Funcs; ++I)
    S += "\tcall f" + std::to_string(I) + "\n";
  S += "\tsubl $1, %r10d\n";
  S += "\tjne .Lloop\n";
  S += "\tmovl $0, %eax\n\tret\n";
  S += "\t.size bench_main, .-bench_main\n";
  for (unsigned I = 0; I < Funcs; ++I) {
    const std::string Cold = "cold" + std::to_string(I);
    const std::string Hot = "f" + std::to_string(I);
    S += "\t.type " + Cold + ", @function\n";
    S += Cold + ":\n\tret\n\t.p2align 12\n";
    S += "\t.size " + Cold + ", .-" + Cold + "\n";
    S += "\t.globl " + Hot + "\n\t.type " + Hot + ", @function\n";
    S += Hot + ":\n\taddl $1, %eax\n\tret\n";
    S += "\t.size " + Hot + ", .-" + Hot + "\n";
  }
  return S;
}

/// The examples/layout_reorder.s shape: a two-line hot loop with a dead
/// error-handling block parked mid-extent.
std::string reorderKernel(unsigned Iterations) {
  std::string S;
  S += "\t.text\n\t.globl bench_main\n\t.type bench_main, @function\n";
  S += "bench_main:\n";
  S += "\tmovl $" + std::to_string(Iterations) + ", %r10d\n";
  S += "\txorl %eax, %eax\n\txorl %edx, %edx\n\txorl %esi, %esi\n";
  S += "\t.p2align 4\n";
  S += ".L0:\n";
  S += "\taddl $1, %eax\n";
  S += "\taddl $2, %edx\n";
  S += "\tjmp .L2\n";
  S += ".Lcold:\n";
  for (int I = 0; I < 8; ++I)
    S += "\taddl $" + std::to_string(1000 + I) + ", %r9d\n";
  S += "\tjmp .L2\n";
  S += ".L2:\n";
  S += "\taddl $3, %esi\n";
  S += "\tsubl $1, %r10d\n";
  S += "\tjne .L0\n";
  S += "\tmovl $0, %eax\n\tret\n";
  S += "\t.size bench_main, .-bench_main\n";
  return S;
}

double speedup(const PmuCounters &Before, const PmuCounters &After) {
  return static_cast<double>(Before.CpuCycles) /
         static_cast<double>(After.CpuCycles);
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("layout");
  printHeader("Code layout vs the instruction-side memory hierarchy "
              "(Core-2 model)");
  ProcessorConfig Core2 = ProcessorConfig::core2();

  // HOTCOLD: pack the live functions, stop the ITLB/L1I thrash.
  MaoUnit HcBefore = parseOrDie(hotColdKernel(16, 600));
  MaoUnit HcAfter = parseOrDie(hotColdKernel(16, 600));
  unsigned Moves = applyPasses(HcAfter, "HOTCOLD");
  PmuCounters H0 = measure(HcBefore, Core2);
  PmuCounters H1 = measure(HcAfter, Core2);
  std::printf("HOTCOLD moved %u cold spans\n", Moves);
  std::printf("ITLB misses:            before %llu, after %llu\n",
              (unsigned long long)H0.ItlbMisses,
              (unsigned long long)H1.ItlbMisses);
  std::printf("L1I misses:             before %llu, after %llu\n",
              (unsigned long long)H0.L1IMisses,
              (unsigned long long)H1.L1IMisses);
  std::printf("cycles:                 before %llu, after %llu -> "
              "speedup %.2fx\n",
              (unsigned long long)H0.CpuCycles,
              (unsigned long long)H1.CpuCycles, speedup(H0, H1));

  // BBREORDER: evict the dead block from the loop extent, stream again.
  MaoUnit RoBefore = parseOrDie(reorderKernel(2000));
  MaoUnit RoAfter = parseOrDie(reorderKernel(2000));
  unsigned BlockMoves = applyPasses(RoAfter, "BBREORDER");
  PmuCounters R0 = measure(RoBefore, Core2);
  PmuCounters R1 = measure(RoAfter, Core2);
  std::printf("BBREORDER moved %u blocks\n", BlockMoves);
  std::printf("LSD uops streamed:      before %llu, after %llu\n",
              (unsigned long long)R0.LsdUops, (unsigned long long)R1.LsdUops);
  std::printf("cycles:                 before %llu, after %llu -> "
              "speedup %.2fx\n",
              (unsigned long long)R0.CpuCycles,
              (unsigned long long)R1.CpuCycles, speedup(R0, R1));

  Report.set("hotcold_moves", Moves);
  Report.set("hotcold_itlb_misses_before", H0.ItlbMisses);
  Report.set("hotcold_itlb_misses_after", H1.ItlbMisses);
  Report.set("hotcold_l1i_misses_before", H0.L1IMisses);
  Report.set("hotcold_l1i_misses_after", H1.L1IMisses);
  Report.set("hotcold_speedup_x", speedup(H0, H1));
  Report.set("bbreorder_moves", BlockMoves);
  Report.set("bbreorder_lsd_uops_after", R1.LsdUops);
  Report.set("bbreorder_speedup_x", speedup(R0, R1));
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
