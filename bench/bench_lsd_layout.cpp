//===- bench/bench_lsd_layout.cpp - E5: Figs. 4/5 - LSD decode-line fit -------===//
//
// Paper Figs. 4/5: a three-basic-block loop physically spans six 16-byte
// decoding lines; inserting six NOPs moves it to span only four, making it
// eligible for the Loop Stream Detector — "the insertion of these nop
// instructions speeds the loop up by a factor of two."
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include "analysis/Relaxer.h"

using namespace maobench;

namespace {

/// The Figs. 4/5 loop: three blocks, ~60 bytes, placed at offset 9 so it
/// spans six decode lines; LSDOPT (or the hand NOPs of the figure) aligns
/// it into four.
std::string lsdLoop(unsigned Iterations) {
  std::string S;
  S += "\t.text\n\t.globl bench_main\n\t.type bench_main, @function\n";
  S += "bench_main:\n";
  S += "\tpushq %rbp\n\tmovq %rsp, %rbp\n";
  S += "\tmovl $" + std::to_string(Iterations) + ", %r10d\n";
  S += "\tmovl $0, %r8d\n";
  S += "\tmovl $1, %ecx\n\tmovl $2, %edx\n";
  S += "\t.p2align 4\n";
  S += "\tnop15\n"; // deliberate bad placement: offset 15 -> extra lines
  S += ".L0:\n";
  S += "\tcmpl %ecx, %edx\n";
  S += "\tjne .L1\n";
  S += "\taddl $3, %r9d\n";
  S += "\tjmp .L1\n"; // second physical block split
  S += ".L1:\n";
  S += "\taddl $7, %r9d\n";
  S += "\tmovl %ecx, %edx\n";
  S += "\taddl $1, %esi\n";
  S += "\taddl $2, %edi\n";
  S += "\taddl $3, %r11d\n";
  S += "\taddl $4, %esi\n";
  S += "\taddl $5, %edi\n";
  S += "\taddl $6, %r11d\n";
  S += "\taddl $7, %esi\n";
  S += "\tjmp .L2\n"; // the physical block split of Fig. 4
  S += ".L2:\n";
  S += "\taddl $1, %r10d\n";
  S += "\taddl $9, %r8d\n";
  S += "\taddl $1, %esi\n";
  S += "\tsubl $2, %r10d\n";
  S += "\tjne .L0\n";
  S += "\tmovl $0, %eax\n\tleave\n\tret\n";
  S += "\t.size bench_main, .-bench_main\n";
  return S;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("lsd_layout");
  printHeader("E5: Figs. 4/5 - fitting a loop into the Loop Stream "
              "Detector (Core-2 model)");
  ProcessorConfig Core2 = ProcessorConfig::core2();

  MaoUnit Before = parseOrDie(lsdLoop(2000));
  MaoUnit After = parseOrDie(lsdLoop(2000));
  unsigned Pads = applyPasses(After, "LSDOPT");

  // Report the decode-line layout before/after, like the figures.
  auto LoopLines = [](MaoUnit &Unit) {
    RelaxationResult R = relaxUnit(Unit);
    int64_t Begin = -1, End = -1;
    for (const MaoEntry &E : Unit.entries()) {
      if (!E.isLabel())
        continue;
      if (E.labelName() == ".L0")
        Begin = E.Address;
    }
    for (const MaoEntry &E : Unit.entries())
      if (E.isInstruction() && E.instruction().isCondJump() &&
          E.instruction().branchTarget()->Sym == ".L0")
        End = E.Address + E.Size - 1;
    return static_cast<unsigned>((End >> 4) - (Begin >> 4) + 1);
  };
  unsigned LinesBefore = LoopLines(Before);
  unsigned LinesAfter = LoopLines(After);

  PmuCounters P0 = measure(Before, Core2);
  PmuCounters P1 = measure(After, Core2);
  std::printf("decode lines spanned:   before %u (paper: 6), after %u "
              "(paper: 4); pass inserted %u pad(s)\n",
              LinesBefore, LinesAfter, Pads);
  std::printf("LSD uops streamed:      before %llu, after %llu\n",
              (unsigned long long)P0.LsdUops, (unsigned long long)P1.LsdUops);
  std::printf("cycles:                 before %llu, after %llu -> speedup "
              "%.2fx (paper: ~2x)\n",
              (unsigned long long)P0.CpuCycles,
              (unsigned long long)P1.CpuCycles,
              static_cast<double>(P0.CpuCycles) /
                  static_cast<double>(P1.CpuCycles));
  Report.set("lines_before", LinesBefore);
  Report.set("lines_after", LinesAfter);
  Report.set("speedup_x", static_cast<double>(P0.CpuCycles) /
                              static_cast<double>(P1.CpuCycles));
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
