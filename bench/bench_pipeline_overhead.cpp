//===- bench/bench_pipeline_overhead.cpp - Robustness cost ------------------==//
//
// Measures what the transactional machinery adds to pipeline wall-clock:
// the same pass sequence over the same corpus under (a) the legacy abort
// policy with no verification, (b) per-pass verification only, and (c) the
// rollback policy (pipeline checkpoint + per-pass verification). The
// acceptance bar for the robustness work is (c) staying within 15% of (a):
// BM_PipelineOverhead_RollbackVsBaseline interleaves the two
// configurations and reports the comparison directly as its overhead_pct
// counter (the separately-run configs are kept for absolute numbers, but
// clock drift between them can skew a naive A-minus-B reading).
//
// Two design choices keep (c) near (a), and the remaining benchmarks
// attribute their costs: rollback snapshots once per pipeline and replays
// committed passes on failure instead of cloning before every pass
// (BM_UnitClone is the per-snapshot price), and the per-pass verifier runs
// only the label invariants (BM_VerifyLabelsOnly) while the full
// configuration (BM_VerifyFull, decomposed into its invariant groups
// below) runs once in the driver's final gate.
//
//===----------------------------------------------------------------------==//

#include "BenchJson.h"

#include "analysis/Relaxer.h"
#include "asm/Parser.h"
#include "ir/Verifier.h"
#include "pass/MaoPass.h"
#include "workload/Workload.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace mao;

namespace {

const std::string &corpusAssembly() {
  static const std::string Asm =
      generateWorkloadAssembly(googleCorpusProfile(0.02));
  return Asm;
}

std::vector<PassRequest> pipelineRequests() {
  std::vector<PassRequest> Requests;
  if (parseMaoOption("ZEE:REDTEST:REDMOV:ADDADD:LOOP16:SCHED", Requests))
    Requests.clear();
  return Requests;
}

void runConfig(benchmark::State &State, const PipelineOptions &Options) {
  linkAllPasses();
  const std::string &Asm = corpusAssembly();
  const std::vector<PassRequest> Requests = pipelineRequests();
  // Same lazy-checkpoint configuration as the mao driver and maofuzz: the
  // rollback snapshot is reconstructed by re-parsing only when a rollback
  // actually happens.
  PipelineOptions Configured = Options;
  Configured.CheckpointProvider = [&Asm] { return parseAssembly(Asm); };
  for (auto _ : State) {
    auto Unit = parseAssembly(Asm);
    if (!Unit.ok())
      State.SkipWithError("parse failed");
    PipelineResult R = runPasses(*Unit, Requests, Configured);
    if (!R.Ok)
      State.SkipWithError("pass failed");
    benchmark::DoNotOptimize(R.Counts);
  }
}

void BM_PipelineOverhead_Baseline(benchmark::State &State) {
  runConfig(State, PipelineOptions());
}
BENCHMARK(BM_PipelineOverhead_Baseline)->Unit(benchmark::kMillisecond);

void BM_PipelineOverhead_VerifyOnly(benchmark::State &State) {
  PipelineOptions Options;
  Options.VerifyAfterEachPass = true;
  runConfig(State, Options);
}
BENCHMARK(BM_PipelineOverhead_VerifyOnly)->Unit(benchmark::kMillisecond);

void BM_PipelineOverhead_Rollback(benchmark::State &State) {
  PipelineOptions Options;
  Options.OnError = OnErrorPolicy::Rollback;
  Options.VerifyAfterEachPass = true;
  runConfig(State, Options);
}
BENCHMARK(BM_PipelineOverhead_Rollback)->Unit(benchmark::kMillisecond);

/// The acceptance metric in one number: runs the legacy-abort and rollback
/// configurations alternately within a single benchmark, so clock-speed
/// drift between separately-run benchmarks cannot skew the comparison, and
/// reports the rollback configuration's cost over the baseline as the
/// "overhead_pct" counter. The robustness acceptance bar is
/// overhead_pct < 15.
void BM_PipelineOverhead_RollbackVsBaseline(benchmark::State &State) {
  linkAllPasses();
  const std::string &Asm = corpusAssembly();
  const std::vector<PassRequest> Requests = pipelineRequests();
  PipelineOptions Base;
  PipelineOptions Roll;
  Roll.OnError = OnErrorPolicy::Rollback;
  Roll.VerifyAfterEachPass = true;
  Roll.CheckpointProvider = [&Asm] { return parseAssembly(Asm); };
  using Clock = std::chrono::steady_clock;
  auto RunOne = [&](const PipelineOptions &Options) {
    Clock::time_point T0 = Clock::now();
    auto Unit = parseAssembly(Asm);
    if (!Unit.ok())
      State.SkipWithError("parse failed");
    PipelineResult R = runPasses(*Unit, Requests, Options);
    if (!R.Ok)
      State.SkipWithError("pass failed");
    benchmark::DoNotOptimize(R.Counts);
    return std::chrono::duration<double, std::milli>(Clock::now() - T0)
        .count();
  };
  double BaseMs = 0, RollMs = 0;
  for (auto _ : State) {
    BaseMs += RunOne(Base);
    RollMs += RunOne(Roll);
  }
  State.counters["overhead_pct"] =
      BaseMs > 0 ? 100.0 * (RollMs - BaseMs) / BaseMs : 0.0;
}
BENCHMARK(BM_PipelineOverhead_RollbackVsBaseline)
    ->Unit(benchmark::kMillisecond);

/// The expensive configuration (--mao-verify under rollback): the full
/// verifier after every pass instead of the cheap label invariants. Not
/// subject to the 15% bar; kept to document what the per-pass/final split
/// saves.
void BM_PipelineOverhead_RollbackFullVerify(benchmark::State &State) {
  PipelineOptions Options;
  Options.OnError = OnErrorPolicy::Rollback;
  Options.VerifyAfterEachPass = true;
  Options.PerPassVerify = VerifierOptions();
  runConfig(State, Options);
}
BENCHMARK(BM_PipelineOverhead_RollbackFullVerify)
    ->Unit(benchmark::kMillisecond);

/// Snapshot cost in isolation: one clone per iteration over the parsed
/// corpus — the eager checkpoint price (library callers without a
/// CheckpointProvider), and the per-restore price on each rollback.
void BM_UnitClone(benchmark::State &State) {
  auto Unit = parseAssembly(corpusAssembly());
  if (!Unit.ok())
    State.SkipWithError("parse failed");
  for (auto _ : State) {
    MaoUnit Copy = Unit->clone();
    benchmark::DoNotOptimize(Copy.entries().size());
  }
}
BENCHMARK(BM_UnitClone)->Unit(benchmark::kMillisecond);

/// Per-check verifier cost over the corpus, to attribute the per-pass
/// verification price to its invariant groups.
void runVerify(benchmark::State &State, const VerifierOptions &Options) {
  auto Unit = parseAssembly(corpusAssembly());
  if (!Unit.ok())
    State.SkipWithError("parse failed");
  for (auto _ : State) {
    VerifierReport Report = verifyUnit(*Unit, Options);
    if (!Report.clean())
      State.SkipWithError("verifier failed");
    benchmark::DoNotOptimize(Report.Issues.size());
  }
}

void BM_RebuildStructure(benchmark::State &State) {
  auto Unit = parseAssembly(corpusAssembly());
  if (!Unit.ok())
    State.SkipWithError("parse failed");
  for (auto _ : State) {
    Unit->rebuildStructure();
    benchmark::DoNotOptimize(Unit->functions().size());
  }
}
BENCHMARK(BM_RebuildStructure)->Unit(benchmark::kMillisecond);

void BM_RelaxOnly(benchmark::State &State) {
  auto Unit = parseAssembly(corpusAssembly());
  if (!Unit.ok())
    State.SkipWithError("parse failed");
  for (auto _ : State) {
    RelaxationResult R = relaxUnit(*Unit);
    benchmark::DoNotOptimize(R.Iterations);
  }
}
BENCHMARK(BM_RelaxOnly)->Unit(benchmark::kMillisecond);

void BM_VerifyFull(benchmark::State &State) {
  runVerify(State, VerifierOptions());
}
BENCHMARK(BM_VerifyFull)->Unit(benchmark::kMillisecond);

/// What the pass runner actually pays after every pass.
void BM_VerifyLabelsOnly(benchmark::State &State) {
  runVerify(State, VerifierOptions::fast());
}
BENCHMARK(BM_VerifyLabelsOnly)->Unit(benchmark::kMillisecond);

void BM_VerifyStructureLabels(benchmark::State &State) {
  VerifierOptions Options;
  Options.CheckEncodings = false;
  Options.CheckLayout = false;
  runVerify(State, Options);
}
BENCHMARK(BM_VerifyStructureLabels)->Unit(benchmark::kMillisecond);

void BM_VerifyEncodings(benchmark::State &State) {
  VerifierOptions Options;
  Options.CheckStructure = false;
  Options.CheckLabels = false;
  Options.CheckLayout = false;
  runVerify(State, Options);
}
BENCHMARK(BM_VerifyEncodings)->Unit(benchmark::kMillisecond);

void BM_VerifyLayout(benchmark::State &State) {
  VerifierOptions Options;
  Options.CheckStructure = false;
  Options.CheckLabels = false;
  Options.CheckEncodings = false;
  runVerify(State, Options);
}
BENCHMARK(BM_VerifyLayout)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  maobench::BenchReport Report("pipeline_overhead");
  return maobench::runCapturedBenchmarks(argc, argv, Report);
}
