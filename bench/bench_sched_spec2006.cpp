//===- bench/bench_sched_spec2006.cpp - E14: SCHED on SPEC2006 ----------------===//
//
// Paper Sec. V-B, fifth table: single-basic-block list scheduling.
//
//   Benchmark       SCHED
//   410.bwaves      +1.29%
//   434.zeusmp      +1.20%
//   483.xalancbmk   +1.25%
//   429.mcf         +1.43%
//   464.h264ref     +1.75%
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

using namespace maobench;

int main(int argc, char **argv) {
  BenchReport Report("sched_spec2006");
  printHeader("E14: SCHED list scheduling (Core-2 model)");
  ProcessorConfig Core2 = ProcessorConfig::core2();
  struct Row {
    const char *Benchmark;
    double Paper;
  } Rows[] = {{"410.bwaves", 1.29},
              {"434.zeusmp", 1.20},
              {"483.xalancbmk", 1.25},
              {"429.mcf", 1.43},
              {"464.h264ref", 1.75}};
  for (const Row &R : Rows) {
    const double Delta = benchmarkDelta(R.Benchmark, "SCHED", Core2);
    printRow(R.Benchmark, R.Paper, Delta);
    Report.set(std::string(R.Benchmark) + "_delta_pct", Delta);
  }
  std::printf("\nThe critical-path cost function hoists the consumer chain "
              "of a\nmulti-fan-out producer ahead of its slack siblings, "
              "avoiding the\nforwarding-bandwidth stall "
              "(RESOURCE_STALLS:RS_FULL, Sec. III-F).\n");
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
