//===- bench/bench_sched_spec2006.cpp - E14: SCHED on SPEC2006 ----------------===//
//
// Paper Sec. V-B, fifth table: single-basic-block list scheduling.
//
//   Benchmark       SCHED
//   410.bwaves      +1.29%
//   434.zeusmp      +1.20%
//   483.xalancbmk   +1.25%
//   429.mcf         +1.43%
//   464.h264ref     +1.75%
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace maobench;

int main() {
  printHeader("E14: SCHED list scheduling (Core-2 model)");
  ProcessorConfig Core2 = ProcessorConfig::core2();
  printRow("410.bwaves", 1.29, benchmarkDelta("410.bwaves", "SCHED", Core2));
  printRow("434.zeusmp", 1.20, benchmarkDelta("434.zeusmp", "SCHED", Core2));
  printRow("483.xalancbmk", 1.25,
           benchmarkDelta("483.xalancbmk", "SCHED", Core2));
  printRow("429.mcf", 1.43, benchmarkDelta("429.mcf", "SCHED", Core2));
  printRow("464.h264ref", 1.75,
           benchmarkDelta("464.h264ref", "SCHED", Core2));
  std::printf("\nThe critical-path cost function hoists the consumer chain "
              "of a\nmulti-fan-out producer ahead of its slack siblings, "
              "avoiding the\nforwarding-bandwidth stall "
              "(RESOURCE_STALLS:RS_FULL, Sec. III-F).\n");
  return 0;
}
