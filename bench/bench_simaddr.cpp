//===- bench/bench_simaddr.cpp - E8: address-recovery multiplication ----------===//
//
// Paper Sec. III-E-m: for the RACEZ sampling-based race detector, forward
// and backward instruction simulation from each PMU sample (which carries
// the register file) recovers additional effective addresses, multiplying
// the sampled-address count "by factors ranging from 4.1 to 6.3".
//
// This harness emulates the paper's workloads, samples every Nth memory
// instruction (with its true pre-execution register file, exactly what the
// PMU delivers), applies simulateAddresses, and reports the factor.
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include "analysis/CFG.h"
#include "passes/SimAddr.h"
#include "sim/Emulator.h"

using namespace maobench;

namespace {

double factorForBenchmark(const std::string &Name, unsigned SamplePeriod) {
  const WorkloadSpec *Spec = findBenchmarkProfile(Name);
  std::string Asm = generateWorkloadAssembly(*Spec);
  MaoUnit Unit = parseOrDie(Asm);

  // Build per-function CFGs and an entry-id -> (block, index) index.
  struct Site {
    const CFG *Graph;
    unsigned Block;
    size_t Index;
  };
  std::vector<std::unique_ptr<CFG>> Graphs;
  std::unordered_map<uint32_t, Site> Sites;
  for (MaoFunction &Fn : Unit.functions()) {
    Graphs.push_back(std::make_unique<CFG>(CFG::build(Fn)));
    const CFG &G = *Graphs.back();
    for (const BasicBlock &BB : G.blocks())
      for (size_t I = 0; I < BB.Insns.size(); ++I)
        Sites[BB.Insns[I]->Id] = {&G, BB.Index, I};
  }

  // Emulate, sampling every Nth instruction that has a memory operand.
  uint64_t Sampled = 0, Recovered = 0, Countdown = SamplePeriod;
  Emulator Em(Unit);
  Emulator::Config Cfg;
  Cfg.MaxSteps = 20'000'000;
  Cfg.OnStep = [&](const MaoEntry &Entry, const MachineState &State) {
    const Instruction &Insn = Entry.instruction();
    if (!Insn.memOperand() || Insn.isOpaque())
      return true;
    if (--Countdown > 0)
      return true;
    Countdown = SamplePeriod;
    auto SiteIt = Sites.find(Entry.Id);
    if (SiteIt == Sites.end())
      return true;
    RegSnapshot Snapshot;
    for (unsigned R = 0; R < NumGprSupers; ++R)
      Snapshot.Gpr[R] = static_cast<int64_t>(State.Gpr[R]);
    // RACEZ-style bounded simulation window around the sample.
    auto Addresses = simulateAddresses(
        SiteIt->second.Graph->blocks()[SiteIt->second.Block],
        SiteIt->second.Index, Snapshot, /*Window=*/8);
    bool SampleCounted = false;
    for (const RecoveredAddress &A : Addresses)
      SampleCounted |= A.FromSample;
    if (!SampleCounted)
      return true;
    ++Sampled;
    Recovered += Addresses.size();
    return true;
  };
  EmulationResult R = Em.run("bench_main", MachineState(), Cfg);
  if (R.Reason != StopReason::Returned || Sampled == 0)
    return 0.0;
  return static_cast<double>(Recovered) / static_cast<double>(Sampled);
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("simaddr");
  printHeader("E8: forward/backward simulation address recovery "
              "(paper: 4.1x - 6.3x)");
  for (const char *Name : {"181.mcf", "252.eon", "300.twolf", "176.gcc"}) {
    double Factor = factorForBenchmark(Name, 7);
    std::printf("%-12s sampled addresses multiplied by %.1fx\n", Name,
                Factor);
    Report.set(std::string(Name) + "_factor_x", Factor);
  }
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
