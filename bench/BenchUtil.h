//===- bench/BenchUtil.h - Shared helpers for experiment harnesses -*- C++ -*-===//
///
/// \file
/// Common plumbing for the per-table/figure reproduction harnesses: parse
/// a workload, apply a pass line, measure on a uarch model, and print
/// paper-vs-measured rows. Every bench binary prints the rows of the
/// corresponding paper artifact; EXPERIMENTS.md records the comparison.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_BENCH_BENCHUTIL_H
#define MAO_BENCH_BENCHUTIL_H

#include "asm/Parser.h"
#include "pass/MaoPass.h"
#include "support/Options.h"
#include "uarch/Runner.h"
#include "workload/Workload.h"

#include <cstdio>
#include <string>

namespace maobench {

using namespace mao;

/// Parses assembly, aborting the bench on failure.
inline MaoUnit parseOrDie(const std::string &Asm) {
  auto UnitOr = parseAssembly(Asm);
  if (!UnitOr.ok()) {
    std::fprintf(stderr, "bench: parse error: %s\n", UnitOr.message().c_str());
    std::exit(1);
  }
  return std::move(*UnitOr);
}

/// Runs a ':'-separated pass line over the unit; returns total transforms.
inline unsigned applyPasses(MaoUnit &Unit, const std::string &PassLine) {
  linkAllPasses();
  std::vector<PassRequest> Requests;
  if (MaoStatus S = parseMaoOption(PassLine, Requests)) {
    std::fprintf(stderr, "bench: bad pass line '%s': %s\n", PassLine.c_str(),
                 S.message().c_str());
    std::exit(1);
  }
  PipelineResult Result = runPasses(Unit, Requests);
  if (!Result.Ok) {
    std::fprintf(stderr, "bench: %s\n", Result.Error.c_str());
    std::exit(1);
  }
  unsigned Total = 0;
  for (const auto &[Name, Count] : Result.Counts)
    Total += Count;
  return Total;
}

/// Measures bench_main cycles on the given machine model.
inline PmuCounters measure(MaoUnit &Unit, const ProcessorConfig &Config,
                           const std::string &Entry = "bench_main") {
  MeasureOptions Options;
  Options.Config = Config;
  Options.MaxSteps = 50'000'000;
  auto Result = measureFunction(Unit, Entry, Options);
  if (!Result.ok()) {
    std::fprintf(stderr, "bench: measurement failed: %s\n",
                 Result.message().c_str());
    std::exit(1);
  }
  return Result->Pmu;
}

/// Percent improvement of Optimized over Base (positive = faster).
inline double percentGain(uint64_t Base, uint64_t Optimized) {
  if (Base == 0)
    return 0.0;
  return 100.0 * (static_cast<double>(Base) - static_cast<double>(Optimized)) /
         static_cast<double>(Base);
}

/// Generates a benchmark's workload, measures base vs. pass-optimized
/// cycles on \p Config, and returns the percent gain.
inline double benchmarkDelta(const std::string &Benchmark,
                             const std::string &PassLine,
                             const ProcessorConfig &Config) {
  const WorkloadSpec *Spec = findBenchmarkProfile(Benchmark);
  if (!Spec) {
    std::fprintf(stderr, "bench: unknown benchmark %s\n", Benchmark.c_str());
    std::exit(1);
  }
  std::string Asm = generateWorkloadAssembly(*Spec);
  MaoUnit Base = parseOrDie(Asm);
  MaoUnit Opt = parseOrDie(Asm);
  applyPasses(Opt, PassLine);
  uint64_t C0 = measure(Base, Config).CpuCycles;
  uint64_t C1 = measure(Opt, Config).CpuCycles;
  return percentGain(C0, C1);
}

/// Prints one paper-vs-measured row.
inline void printRow(const std::string &Label, double PaperPct,
                     double MeasuredPct) {
  std::printf("%-22s paper: %+7.2f%%   measured: %+7.2f%%\n", Label.c_str(),
              PaperPct, MeasuredPct);
}

inline void printHeader(const std::string &Title) {
  std::printf("==== %s ====\n", Title.c_str());
}

} // namespace maobench

#endif // MAO_BENCH_BENCHUTIL_H
