//===- bench/bench_sched_hash.cpp - E7: the hashing microbenchmark ------------===//
//
// Paper Sec. III-F: a hashing microbenchmark where the xorl feeding three
// independent, same-latency instructions showed 21% spread between hand
// schedules, correlated with RESOURCE_STALLS:RS_FULL. The list-scheduling
// pass with the critical-path cost function recovered 15% on the
// microbenchmark (and 0.6% across the suite).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

using namespace maobench;

namespace {

/// The paper's exact consumer ordering (worst case: the critical-path mov
/// is the third consumer) inside a hot hashing loop.
std::string hashLoop(unsigned Iterations) {
  std::string S;
  S += "\t.text\n\t.globl bench_main\n\t.type bench_main, @function\n";
  S += "bench_main:\n";
  S += "\tpushq %rbp\n\tmovq %rsp, %rbp\n";
  S += "\tmovl $" + std::to_string(Iterations) + ", %ecx\n";
  S += "\tmovl $0x9e3779b9, %edi\n";
  S += "\t.p2align 4\n";
  S += ".LHASH:\n";
  S += "\txorl %edi, %ebx\n"; // the producer with three consumers
  S += "\tsubl %ebx, %r8d\n";
  S += "\tsubl %ebx, %edx\n";
  S += "\tmovl %ebx, %esi\n"; // critical path: mov -> shr -> xor -> add
  S += "\tshrl $12, %esi\n";
  S += "\txorl %esi, %edx\n";
  S += "\taddl %edx, %edi\n";
  S += "\tsubl $1, %ecx\n";
  S += "\tjne .LHASH\n";
  S += "\tmovl %edi, %eax\n\tleave\n\tret\n";
  S += "\t.size bench_main, .-bench_main\n";
  return S;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("sched_hash");
  printHeader("E7: Sec. III-F - hashing microbenchmark scheduling "
              "(Core-2 model)");
  ProcessorConfig Core2 = ProcessorConfig::core2();

  MaoUnit Before = parseOrDie(hashLoop(20000));
  MaoUnit After = parseOrDie(hashLoop(20000));
  unsigned Moved = applyPasses(After, "SCHED");

  PmuCounters P0 = measure(Before, Core2);
  PmuCounters P1 = measure(After, Core2);
  std::printf("SCHED moved %u instructions\n", Moved);
  std::printf("RESOURCE_STALLS:RS_FULL: before %llu, after %llu "
              "(the paper's correlated counter)\n",
              (unsigned long long)P0.RsFullStalls,
              (unsigned long long)P1.RsFullStalls);
  printRow("hashing microbenchmark", 15.00,
           percentGain(P0.CpuCycles, P1.CpuCycles));
  Report.set("moved", Moved);
  Report.set("rs_full_before", static_cast<double>(P0.RsFullStalls));
  Report.set("rs_full_after", static_cast<double>(P1.RsFullStalls));
  Report.set("gain_pct", percentGain(P0.CpuCycles, P1.CpuCycles));
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
