//===- bench/LegacyParser.h - Frozen pre-arena parser -----------*- C++ -*-===//
///
/// \file
/// A verbatim snapshot of src/asm/Parser.cpp as it stood before the
/// string_view lexer rewrite (substr/trim per token, phantom final line and
/// all). bench_core parses the same corpus through both front ends so the
/// parse-MB/s headline in BENCH_core.json is an apples-to-apples ratio
/// against the real pre-PR code, not a synthetic strawman.
///
/// Benchmark-only: nothing in src/ may include this.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_BENCH_LEGACYPARSER_H
#define MAO_BENCH_LEGACYPARSER_H

#include "asm/Parser.h"

namespace maobench {

/// The pre-PR parseAssembly, bit-for-bit the old algorithm (including its
/// phantom empty final line for newline-terminated input).
mao::ErrorOr<mao::MaoUnit> legacyParseAssembly(const std::string &Text,
                                               mao::ParseStats *Stats);

} // namespace maobench

#endif // MAO_BENCH_LEGACYPARSER_H
