//===- bench/ApiBenchUtil.h - Facade-based bench plumbing -------*- C++ -*-===//
///
/// \file
/// The BenchUtil.h helpers re-expressed over the public facade
/// (mao/Mao.h). Benches ported to the facade include this instead of
/// BenchUtil.h and exercise the same surface an external embedder would —
/// they double as integration coverage for mao::api.
///
//===----------------------------------------------------------------------===//

#ifndef MAO_BENCH_APIBENCHUTIL_H
#define MAO_BENCH_APIBENCHUTIL_H

#include "mao/Mao.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace maobench {

/// Parses assembly through the facade, aborting the bench on failure.
inline mao::api::Program parseOrDie(mao::api::Session &Session,
                                    const std::string &Asm) {
  mao::api::Program Program;
  if (mao::api::Status S =
          Session.parseText(Asm, "<bench>", Program);
      !S.Ok) {
    std::fprintf(stderr, "bench: parse error: %s\n", S.Message.c_str());
    std::exit(1);
  }
  return Program;
}

/// Runs a classic ':'-separated pass line; returns total transformations.
inline unsigned applyPasses(mao::api::Session &Session,
                            mao::api::Program &Program,
                            const std::string &PassLine) {
  std::vector<mao::api::PassSpec> Pipeline;
  if (mao::api::Status S =
          mao::api::Session::parseClassicSpec(PassLine, Pipeline);
      !S.Ok) {
    std::fprintf(stderr, "bench: bad pass line '%s': %s\n", PassLine.c_str(),
                 S.Message.c_str());
    std::exit(1);
  }
  mao::api::OptimizeResult Result =
      Session.optimize(Program, Pipeline, mao::api::OptimizeOptions());
  if (!Result.Ok) {
    std::fprintf(stderr, "bench: %s\n", Result.Error.c_str());
    std::exit(1);
  }
  return Result.TotalTransformations;
}

/// Measures bench_main on the named machine model through the facade.
inline mao::api::MeasureSummary measure(mao::api::Session &Session,
                                        mao::api::Program &Program,
                                        const std::string &Config,
                                        const std::string &Entry =
                                            "bench_main") {
  mao::api::MeasureRequest Request;
  Request.Function = Entry;
  Request.Config = Config;
  mao::api::MeasureSummary Summary;
  if (mao::api::Status S = Session.measure(Program, Request, Summary);
      !S.Ok) {
    std::fprintf(stderr, "bench: measurement failed: %s\n",
                 S.Message.c_str());
    std::exit(1);
  }
  return Summary;
}

/// Percent improvement of Optimized over Base (positive = faster).
inline double percentGain(uint64_t Base, uint64_t Optimized) {
  if (Base == 0)
    return 0.0;
  return 100.0 *
         (static_cast<double>(Base) - static_cast<double>(Optimized)) /
         static_cast<double>(Base);
}

inline void printRow(const std::string &Label, double PaperPct,
                     double MeasuredPct) {
  std::printf("%-28s paper %+6.2f%%   measured %+6.2f%%\n", Label.c_str(),
              PaperPct, MeasuredPct);
}

inline void printHeader(const std::string &Title) {
  std::printf("== %s ==\n", Title.c_str());
}

} // namespace maobench

#endif // MAO_BENCH_APIBENCHUTIL_H
