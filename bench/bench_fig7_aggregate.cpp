//===- bench/bench_fig7_aggregate.cpp - E15: Fig. 7 ----------------------------===//
//
// Paper Fig. 7: transformation counts per SPEC2000-int benchmark when all
// basic passes run together (L = LOOP16, NOP = Nopinizer insertions,
// M = REDMOV, T = REDTEST, SCHED = instructions moved) and the aggregate
// performance effect, geomean +0.38% (+0.61% excluding 253.perlbmk).
//
// The synthetic workloads are scaled to ~1/10 the paper's code volume, so
// the NOPIN and SCHED columns are expected at roughly one tenth of the
// paper's values, while the L/M/T columns reproduce the paper's counts
// directly (they are structural properties of each profile).
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

#include <cmath>
#include <map>

using namespace maobench;

namespace {

struct PaperRow {
  const char *Name;
  int L, Nop, M, T, Sched; // -1 when the paper shows '-'
  double Perf;
};

const PaperRow PaperRows[] = {
    {"164.gzip", 1, 664, 0, 5, 427, 0.02},
    {"175.vpr", 3, 1425, 7, 4, 1778, 1.06},
    {"176.gcc", 62, 27471, 35, 57, 8891, 1.29},
    {"181.mcf", 0, 185, 1, 0, 236, 0.13},
    {"186.crafty", 3, 1987, 7, 18, 2648, 0.43},
    {"197.parser", 13, 2134, 4, 0, 1106, 0.18},
    {"252.eon", 1, 2373, 10, 6, 12215, 1.01},
    {"253.perlbmk", 21, 11870, 9, 21, 5178, -2.14},
    {"254.gap", 62, 9216, 23, 9, 6466, 0.12},
    {"255.vortex", 1, 6860, 3, 5, 6905, 0.44},
    {"256.bzip2", 2, 396, 3, 0, 637, 1.04},
    {"300.twolf", 18, 3009, 24, 43, 2800, 0.97},
};

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("fig7_aggregate");
  printHeader("E15: Fig. 7 - transformation counts and aggregate "
              "performance (Core-2 model)");
  linkAllPasses();
  ProcessorConfig Core2 = ProcessorConfig::core2();

  std::printf("%-13s %5s %6s %5s %5s %7s %9s   (paper: L/NOP/M/T/SCHED, "
              "perf)\n",
              "Benchmark", "L", "NOP", "M", "T", "SCHED", "Perf");

  double LogSum = 0.0, LogSumNoPerl = 0.0;
  int N = 0, NNoPerl = 0;
  for (const PaperRow &Row : PaperRows) {
    const WorkloadSpec *Spec = findBenchmarkProfile(Row.Name);
    if (!Spec) {
      std::fprintf(stderr, "missing profile for %s\n", Row.Name);
      return 1;
    }
    std::string Asm = generateWorkloadAssembly(*Spec);
    MaoUnit Base = parseOrDie(Asm);
    MaoUnit Opt = parseOrDie(Asm);

    // The paper's aggregate pipeline: alignment, peepholes, scheduling.
    std::vector<PassRequest> Requests;
    if (parseMaoOption(
            "LOOP16:REDMOV:REDTEST:SCHED:NOPIN=seed[7],density[10]",
            Requests))
      return 1;
    PipelineResult Result = runPasses(Opt, Requests);
    if (!Result.Ok) {
      std::fprintf(stderr, "%s: %s\n", Row.Name, Result.Error.c_str());
      return 1;
    }
    std::map<std::string, unsigned> Counts;
    for (const auto &[Name, Count] : Result.Counts)
      Counts[Name] += Count;

    const uint64_t C0 = measure(Base, Core2).CpuCycles;
    const uint64_t C1 = measure(Opt, Core2).CpuCycles;
    const double Gain = percentGain(C0, C1);

    std::printf("%-13s %5u %6u %5u %5u %7u %+8.2f%%  (%5d %6d %4d %4d %6d "
                "%+6.2f%%)\n",
                Row.Name, Counts["LOOP16"], Counts["NOPIN"],
                Counts["REDMOV"], Counts["REDTEST"], Counts["SCHED"], Gain,
                Row.L, Row.Nop, Row.M, Row.T, Row.Sched, Row.Perf);

    LogSum += std::log1p(Gain / 100.0);
    ++N;
    if (std::string(Row.Name) != "253.perlbmk") {
      LogSumNoPerl += std::log1p(Gain / 100.0);
      ++NNoPerl;
    }
  }
  const double Geo = (std::exp(LogSum / N) - 1.0) * 100.0;
  const double GeoNoPerl = (std::exp(LogSumNoPerl / NNoPerl) - 1.0) * 100.0;
  std::printf("\nGeomean:                 %+0.2f%%  (paper: +0.38%%)\n", Geo);
  std::printf("Geomean w/o 253.perlbmk: %+0.2f%%  (paper: +0.61%%)\n",
              GeoNoPerl);
  Report.set("geomean_pct", Geo);
  Report.set("geomean_no_perlbmk_pct", GeoNoPerl);
  Report.set("benchmarks", N);
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
