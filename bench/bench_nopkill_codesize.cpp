//===- bench/bench_nopkill_codesize.cpp - E17: Nop Killer code size -----------===//
//
// Paper Sec. III-E-j: removing all alignment NOPs changed performance only
// within noise on most benchmarks but "resulted in a code size improvement
// of about 1%."
//
// This bench runs entirely through the public facade (mao/Mao.h): parse,
// optimize, and assemble are the same calls an external embedder makes.
//
//===----------------------------------------------------------------------===//

#include "ApiBenchUtil.h"
#include "BenchJson.h"

#include "workload/Workload.h"

using namespace maobench;

namespace {

uint64_t textBytes(mao::api::Session &Session, mao::api::Program &Program) {
  mao::api::AssembledBytes Bytes;
  if (mao::api::Status S = Session.assemble(Program, Bytes); !S.Ok) {
    std::fprintf(stderr, "assemble failed: %s\n", S.Message.c_str());
    std::exit(1);
  }
  uint64_t Total = 0;
  for (const auto &[Section, Data] : Bytes)
    if (Section.rfind(".text", 0) == 0)
      Total += Data.size();
  return Total;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("nopkill_codesize");
  printHeader("E17: NOPKILL code-size effect (paper: ~1% smaller, perf in "
              "the noise)");
  mao::api::Session Session;

  double TotalBase = 0, TotalKilled = 0;
  std::printf("%-14s %10s %10s %8s\n", "benchmark", "bytes", "killed",
              "saving");
  for (const mao::WorkloadSpec &Spec : mao::spec2000IntProfiles()) {
    std::string Asm = mao::generateWorkloadAssembly(Spec);
    mao::api::Program Base = parseOrDie(Session, Asm);
    mao::api::Program Killed = parseOrDie(Session, Asm);
    applyPasses(Session, Killed, "NOPKILL");
    uint64_t B0 = textBytes(Session, Base);
    uint64_t B1 = textBytes(Session, Killed);
    TotalBase += static_cast<double>(B0);
    TotalKilled += static_cast<double>(B1);
    std::printf("%-14s %10llu %10llu %+7.2f%%\n", Spec.Name.c_str(),
                (unsigned long long)B0, (unsigned long long)B1,
                100.0 * (static_cast<double>(B0) - static_cast<double>(B1)) /
                    static_cast<double>(B0));
  }
  std::printf("\nsuite total: %.0f -> %.0f bytes, %.2f%% smaller "
              "(paper: ~1%%)\n",
              TotalBase, TotalKilled,
              100.0 * (TotalBase - TotalKilled) / TotalBase);
  Report.set("suite_bytes_base", TotalBase);
  Report.set("suite_bytes_killed", TotalKilled);
  Report.set("saving_pct", 100.0 * (TotalBase - TotalKilled) / TotalBase);
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
