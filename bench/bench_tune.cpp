//===- bench/bench_tune.cpp - E19: simulator-guided autotuning ----------------===//
//
// The `mao --tune` search (src/tune) on three kernels where a fixed
// heuristic pipeline is not optimal:
//
//  - fig1:  the Fig. 1 181.mcf loop without its strategic NOP — the win
//           is a directed NOP insertion the default pipeline cannot place.
//  - lsd:   the Figs. 4/5 decode-line-split loop — the win is a joint
//           alignment/padding choice beyond LSDOPT's fixed parameters.
//  - alias: the 252.eon bucket-sensitive pair — the default pipeline
//           DEGRADES this code (LOOP16 padding aliases two branches); the
//           tuner's win is disabling the harmful pass.
//
// For each kernel the bench reports baseline, default-pipeline, and tuned
// cycles plus the search statistics. Runs through the public facade.
//
//===----------------------------------------------------------------------===//

#include "ApiBenchUtil.h"
#include "BenchJson.h"

#include <chrono>

using namespace maobench;

namespace {

std::string fig1Kernel() {
  return "\t.text\n\t.globl bench_main\n\t.type bench_main, @function\n"
         "bench_main:\n"
         "\tpushq %rbp\n\tmovq %rsp, %rbp\n"
         "\tmovq $0x300000, %rdi\n\tmovq $0x340000, %rsi\n"
         "\txorq %r8, %r8\n\tmovl $600, %r9d\n\txorl %r10d, %r10d\n"
         "\t.p2align 5\n\tnop12\n"
         ".L3:\n"
         "\tmovsbl 1(%rdi,%r8,4), %edx\n\tmovsbl (%rdi,%r8,4), %eax\n"
         "\taddl %eax, %edx\n\tmovl %edx, (%rsi,%r8,4)\n"
         "\taddq $1, %r8\n\tcmpl $1, %r10d\n\tje .LEXIT\n"
         ".L5:\n"
         "\tmovsbl 1(%rdi,%r8,4), %edx\n\tmovsbl (%rdi,%r8,4), %eax\n"
         "\taddl %eax, %edx\n\tmovl %edx, (%rsi,%r8,4)\n"
         "\taddq $1, %r8\n\tcmpl %r8d, %r9d\n\tjg .L3\n"
         ".LEXIT:\n\tmovl $0, %eax\n\tleave\n\tret\n"
         "\t.size bench_main, .-bench_main\n";
}

std::string lsdKernel() {
  return "\t.text\n\t.globl bench_main\n\t.type bench_main, @function\n"
         "bench_main:\n"
         "\tpushq %rbp\n\tmovq %rsp, %rbp\n"
         "\tmovl $600, %r10d\n\tmovl $0, %r8d\n"
         "\tmovl $1, %ecx\n\tmovl $2, %edx\n"
         "\t.p2align 4\n\tnop15\n"
         ".L0:\n\tcmpl %ecx, %edx\n\tjne .L1\n"
         "\taddl $3, %r9d\n\tjmp .L1\n"
         ".L1:\n\taddl $7, %r9d\n\tmovl %ecx, %edx\n"
         "\taddl $1, %esi\n\taddl $2, %edi\n\taddl $3, %r11d\n"
         "\taddl $4, %esi\n\taddl $5, %edi\n\taddl $6, %r11d\n"
         "\taddl $7, %esi\n\tjmp .L2\n"
         ".L2:\n\taddl $1, %r10d\n\taddl $9, %r8d\n\taddl $1, %esi\n"
         "\tsubl $2, %r10d\n\tjne .L0\n"
         "\tmovl $0, %eax\n\tleave\n\tret\n"
         "\t.size bench_main, .-bench_main\n";
}

std::string aliasKernel() {
  return "\t.text\n\t.globl bench_main\n\t.type bench_main, @function\n"
         "bench_main:\n"
         "\tpushq %rbp\n\tmovq %rsp, %rbp\n"
         "\txorl %eax, %eax\n\txorl %ebx, %ebx\n"
         "\tmovl $7, %r14d\n\tmovl $400, %r15d\n"
         "\t.p2align 5\n\tnop6\n"
         ".LOuter:\n\tmovl $2, %ecx\n"
         ".LSplit:\n\taddl $1, %eax\n\tsubl $1, %ecx\n\tjne .LSplit\n"
         "\tmovl $8, %ecx\n"
         ".LInner:\n\taddl $1, %ebx\n\tsubl $1, %ecx\n\tjne .LInner\n"
         "\tcmpl $0, %r14d\n\tje .LNever\n"
         "\tnop15\n\tnop11\n"
         "\tsubl $1, %r15d\n\tjne .LOuter\n\tjmp .LDone\n"
         ".LNever:\n\taddl $7, %eax\n\tjmp .LDone\n"
         ".LDone:\n\tmovl $0, %eax\n\tleave\n\tret\n"
         "\t.size bench_main, .-bench_main\n";
}

void tuneOne(mao::api::Session &Session, BenchReport &Report,
             const std::string &Label, const std::string &Asm) {
  mao::api::Program Program = parseOrDie(Session, Asm);
  mao::api::TuneRequest Request;
  Request.Budget = "medium";
  Request.Jobs = 0; // All hardware threads; the result is seed-determined.
  mao::api::TuneSummary Tune;
  using Clock = std::chrono::steady_clock;
  const Clock::time_point Start = Clock::now();
  if (mao::api::Status S = Session.tune(Program, Request, Tune); !S.Ok) {
    std::fprintf(stderr, "bench: tune failed: %s\n", S.Message.c_str());
    std::exit(1);
  }
  const double Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  std::printf("%-6s baseline %7llu  default %7llu  tuned %7llu cycles  "
              "(%+.2f%% vs default; %u evals, %llu cache hits)\n",
              Label.c_str(), (unsigned long long)Tune.BaselineCycles,
              (unsigned long long)Tune.DefaultCycles,
              (unsigned long long)Tune.TunedCycles,
              percentGain(Tune.DefaultCycles, Tune.TunedCycles),
              Tune.Evaluations, (unsigned long long)Tune.ScoreCacheHits);
  std::printf("       winner: --mao-passes=%s\n", Tune.TunedPipeline.c_str());
  Report.set(Label + "_gain_vs_default_pct",
             percentGain(Tune.DefaultCycles, Tune.TunedCycles));
  Report.set(Label + "_evaluations", Tune.Evaluations);
  Report.set(Label + "_candidates_per_s",
             Seconds > 0 ? Tune.Evaluations / Seconds : 0.0);
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("tune");
  printHeader("E19: simulator-guided autotuning (mao --tune, Core-2 model, "
              "seed 1, medium budget)");
  mao::api::Session Session;
  tuneOne(Session, Report, "fig1", fig1Kernel());
  tuneOne(Session, Report, "lsd", lsdKernel());
  tuneOne(Session, Report, "alias", aliasKernel());
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
