//===- bench/bench_branch_alias.cpp - E6: branch-predictor aliasing -----------===//
//
// Paper Sec. III-C-g: two short-running loops place their back branches in
// the same PC>>5 predictor bucket; the constantly-confused shared counter
// mispredicts chronically. "Moving the second branch instruction down via
// NOP insertion ... speeds up a full image manipulation benchmark by 3%."
// The BRALIGN pass automates the separation.
//
// This bench runs entirely through the public facade (mao/Mao.h): parse,
// optimize, and measure are the same calls an external embedder makes.
//
//===----------------------------------------------------------------------===//

#include "ApiBenchUtil.h"
#include "BenchJson.h"

using namespace maobench;

namespace {

/// Two short loops re-entered from an outer loop, plus enough surrounding
/// "image manipulation" work that the aliasing costs a few percent overall.
std::string imageBenchmark(unsigned NeutralIters) {
  std::string S;
  S += "\t.text\n\t.globl bench_main\n\t.type bench_main, @function\n";
  S += "bench_main:\n";
  S += "\tpushq %rbp\n\tmovq %rsp, %rbp\n";
  // Surrounding latency-bound work.
  S += "\tmovl $" + std::to_string(NeutralIters) + ", %ecx\n";
  S += ".LWORK:\n";
  S += "\timull $3, %eax, %eax\n";
  S += "\timull $5, %eax, %eax\n";
  S += "\tsubl $1, %ecx\n";
  S += "\tjne .LWORK\n";
  // The paper's two-deep nest: two short-running loops (iteration counts
  // 1 and 2) whose back branches land in the same 32-byte bucket. Their
  // taken patterns conflict — the shared 2-bit counter mispredicts on
  // nearly every branch until BRALIGN moves the second one out.
  S += "\tmovl $800, %r15d\n";
  S += "\t.p2align 5\n";
  S += ".LOUTER:\n";
  S += "\tmovl $1, %ecx\n";
  S += ".LI1:\n";
  S += "\taddl $1, %eax\n";
  S += "\tsubl $1, %ecx\n";
  S += "\tjne .LI1\n"; // Iteration count 1: never taken.
  S += "\tmovl $2, %ecx\n";
  S += ".LI2:\n";
  S += "\taddl $1, %edx\n";
  S += "\tsubl $1, %ecx\n";
  S += "\tjne .LI2\n"; // Iteration count 2: alternates taken/not-taken.
  S += "\tsubl $1, %r15d\n";
  S += "\tjne .LOUTER\n";
  S += ".LDONE:\n";
  S += "\tmovl $0, %eax\n\tleave\n\tret\n";
  S += "\t.size bench_main, .-bench_main\n";
  return S;
}

} // namespace

int main(int argc, char **argv) {
  BenchReport Report("branch_alias");
  printHeader("E6: branch-predictor aliasing by PC>>5 and the BRALIGN "
              "pass (Core-2 model)");
  mao::api::Session Session;

  mao::api::Program Before = parseOrDie(Session, imageBenchmark(200000));
  mao::api::Program After = parseOrDie(Session, imageBenchmark(200000));
  unsigned Fixes = applyPasses(Session, After, "BRALIGN");

  mao::api::MeasureSummary P0 = measure(Session, Before, "core2");
  mao::api::MeasureSummary P1 = measure(Session, After, "core2");
  std::printf("BRALIGN separated %u colliding branch pair(s)\n", Fixes);
  std::printf("mispredicts: before %llu, after %llu\n",
              (unsigned long long)P0.BranchMispredicts,
              (unsigned long long)P1.BranchMispredicts);
  printRow("image benchmark", 3.00, percentGain(P0.Cycles, P1.Cycles));
  Report.set("separated_pairs", Fixes);
  Report.set("mispredicts_before", static_cast<double>(P0.BranchMispredicts));
  Report.set("mispredicts_after", static_cast<double>(P1.BranchMispredicts));
  Report.set("gain_pct", percentGain(P0.Cycles, P1.Cycles));
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
