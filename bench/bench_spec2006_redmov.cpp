//===- bench/bench_spec2006_redmov.cpp - E13: SPEC2006 REDMOV/REDTEST ---------===//
//
// Paper Sec. V-B, fourth table (AMD Opteron): removing redundant moves or
// tests wins big on 454.calculix, modestly on 447.dealII; removing
// alignment directives (NOPKILL) regresses calculix by 8.8%.
//
//   Benchmark      REDMOV   REDTEST  NOPKILL
//   447.dealII     +2.78%   +3.21%   -0.12%
//   454.calculix   +20.12%  +20.58%  -8.81%
//
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "BenchUtil.h"

using namespace maobench;

int main(int argc, char **argv) {
  BenchReport Report("spec2006_redmov");
  printHeader("E13: SPEC2006 REDMOV / REDTEST / NOPKILL (Opteron model)");
  ProcessorConfig Opteron = ProcessorConfig::opteron();
  struct Row {
    const char *Benchmark, *PassLine;
    double Paper;
  } Rows[] = {{"447.dealII", "REDMOV", 2.78},
              {"447.dealII", "REDTEST", 3.21},
              {"447.dealII", "NOPKILL", -0.12},
              {"454.calculix", "REDMOV", 20.12},
              {"454.calculix", "REDTEST", 20.58},
              {"454.calculix", "NOPKILL", -8.81}};
  for (const Row &R : Rows) {
    const double Delta = benchmarkDelta(R.Benchmark, R.PassLine, Opteron);
    printRow(std::string(R.Benchmark) + " " + R.PassLine, R.Paper, Delta);
    Report.set(std::string(R.Benchmark) + "_" + R.PassLine + "_delta_pct",
               Delta);
  }
  std::printf("\ncalculix's runtime concentrates in decode-bound loops "
              "carrying removable\ninstructions (the paper's unexplained "
              "second-order AMD effect, modelled\nas load-heavy decode "
              "cost); both removal passes win large, and removing\nthe "
              "loops' alignment directives regresses.\n");
  return Report.write(benchJsonPath(argc, argv, Report.name())) ? 0 : 1;
}
