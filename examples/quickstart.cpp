//===- examples/quickstart.cpp - MAO public-API quickstart --------------------===//
//
// The five-minute tour: parse compiler-generated assembly into the MAO IR,
// look at the higher-level structure (functions, CFG, loops), run a couple
// of optimization passes, and emit assembly again — the assembly-to-
// assembly flow of the paper's Fig. 2.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Loops.h"
#include "analysis/Relaxer.h"
#include "asm/AsmEmitter.h"
#include "asm/Parser.h"
#include "pass/MaoPass.h"

#include <cstdio>

using namespace mao;

// Assembly as GCC 4.4 would emit it, containing two of the paper's
// patterns: a redundant zero extension and a redundant test.
static const char *Input = R"(	.text
	.globl	checksum
	.type	checksum, @function
checksum:
	pushq	%rbp
	movq	%rsp, %rbp
	movl	$0, %eax
	movl	$0, %ecx
.L2:
	movzbl	(%rdi,%rcx,1), %edx
	andl	$255, %edx
	movl	%edx, %edx
	addl	%edx, %eax
	addl	$1, %ecx
	subl	$1, %esi
	testl	%esi, %esi
	jne	.L2
	leave
	ret
	.size	checksum, .-checksum
)";

int main() {
  linkAllPasses();

  // 1. Parse into the IR: one long list of entries, plus functions.
  auto UnitOr = parseAssembly(Input);
  if (!UnitOr.ok()) {
    std::fprintf(stderr, "parse error: %s\n", UnitOr.message().c_str());
    return 1;
  }
  MaoUnit &Unit = *UnitOr;
  std::printf("parsed %zu entries, %zu function(s)\n",
              Unit.entries().size(), Unit.functions().size());

  // 2. Higher-level structure: CFG and the Havlak loop structure graph.
  MaoFunction &Fn = Unit.functions()[0];
  CFG Graph = CFG::build(Fn);
  LoopStructureGraph LSG = LoopStructureGraph::build(Graph);
  std::printf("function %s: %zu basic blocks, %zu loop(s)\n",
              Fn.name().c_str(), Graph.blocks().size(), LSG.loopCount());

  // 3. Exact layout via repeated relaxation: every entry gets an address.
  RelaxationResult Relax = relaxUnit(Unit);
  std::printf("relaxation converged after %u iteration(s); .text is %lld "
              "bytes\n",
              Relax.Iterations,
              static_cast<long long>(Relax.SectionSizes.at(".text")));

  // 4. Run passes, exactly as `mao --mao=ZEE:REDTEST in.s` would.
  std::vector<PassRequest> Requests;
  if (parseMaoOption("ZEE:REDTEST", Requests))
    return 1;
  PipelineResult Result = runPasses(Unit, Requests);
  for (const auto &[Pass, Count] : Result.Counts)
    std::printf("pass %-8s removed %u redundant instruction(s)\n",
                Pass.c_str(), Count);

  // 5. Emit legible textual assembly again.
  std::printf("\noptimized assembly:\n%s", emitAssembly(Unit).c_str());
  return 0;
}
