//===- examples/spec_pipeline.cpp - Full measurement pipeline -----------------===//
//
// The evaluation workflow of paper Sec. V as a library client: generate a
// SPEC-like workload, run an optimization pipeline over it, and measure
// base-vs-optimized cycles and PMU counters on two machine models. This is
// what the bench/ harnesses automate for every table in the paper.
//
// Usage: ./build/examples/spec_pipeline [benchmark] [passes]
//        ./build/examples/spec_pipeline 454.calculix REDMOV:REDTEST
//
//===----------------------------------------------------------------------===//

#include "asm/Parser.h"
#include "pass/MaoPass.h"
#include "uarch/Runner.h"
#include "workload/Workload.h"

#include <cstdio>
#include <string>

using namespace mao;

static void report(const char *Label, const PmuCounters &Pmu) {
  std::printf("  %-10s %9llu cycles, IPC %.2f, %6llu mispredicts, "
              "%6llu decode lines, %6llu LSD uops\n",
              Label, (unsigned long long)Pmu.CpuCycles, Pmu.ipc(),
              (unsigned long long)Pmu.BrMispredicted,
              (unsigned long long)Pmu.DecodeLines,
              (unsigned long long)Pmu.LsdUops);
}

int main(int Argc, char **Argv) {
  linkAllPasses();
  const std::string Benchmark = Argc > 1 ? Argv[1] : "454.calculix";
  const std::string Passes = Argc > 2 ? Argv[2] : "REDMOV:REDTEST";

  const WorkloadSpec *Spec = findBenchmarkProfile(Benchmark);
  if (!Spec) {
    std::fprintf(stderr, "unknown benchmark: %s\n", Benchmark.c_str());
    return 1;
  }
  std::printf("benchmark %s (%s), passes %s\n", Spec->Name.c_str(),
              Spec->Lang.c_str(), Passes.c_str());

  const std::string Asm = generateWorkloadAssembly(*Spec);
  auto Base = parseAssembly(Asm);
  auto Opt = parseAssembly(Asm);
  if (!Base.ok() || !Opt.ok()) {
    std::fprintf(stderr, "generated workload failed to parse\n");
    return 1;
  }

  std::vector<PassRequest> Requests;
  if (MaoStatus S = parseMaoOption(Passes, Requests)) {
    std::fprintf(stderr, "bad pass line: %s\n", S.message().c_str());
    return 1;
  }
  PipelineResult PR = runPasses(*Opt, Requests);
  if (!PR.Ok) {
    std::fprintf(stderr, "pass pipeline failed: %s\n", PR.Error.c_str());
    return 1;
  }
  for (const auto &[Pass, Count] : PR.Counts)
    std::printf("  %s: %u transformation(s)\n", Pass.c_str(), Count);

  for (ProcessorConfig Config :
       {ProcessorConfig::core2(), ProcessorConfig::opteron()}) {
    MeasureOptions Options;
    Options.Config = Config;
    auto R0 = measureFunction(*Base, "bench_main", Options);
    auto R1 = measureFunction(*Opt, "bench_main", Options);
    if (!R0.ok() || !R1.ok()) {
      std::fprintf(stderr, "measurement failed\n");
      return 1;
    }
    std::printf("%s:\n", Config.Name.c_str());
    report("base", R0->Pmu);
    report("optimized", R1->Pmu);
    double Gain = 100.0 *
                  (static_cast<double>(R0->Pmu.CpuCycles) -
                   static_cast<double>(R1->Pmu.CpuCycles)) /
                  static_cast<double>(R0->Pmu.CpuCycles);
    std::printf("  -> %+.2f%%\n", Gain);
  }
  return 0;
}
