# Hot/cold function-layout kernel for the HOTCOLD pass and the
# instruction-side memory hierarchy (L1I + ITLB) in the simulator.
#
# bench_main calls sixteen tiny helpers round-robin. Each helper is
# preceded by a never-called "cold" function whose body ends with a
# .p2align 12, pushing the next helper onto its own 4 KiB page: the loop
# touches 17 code pages per iteration, thrashing the Core-2 model's
# 16-entry LRU ITLB (every helper call pays the page-walk penalty), and
# every helper's cache line maps to L1I set 0 (page-aligned starts), so
# the 8-way set thrashes too. HOTCOLD moves the cold padding functions
# behind the live ones, packing bench_main and all helpers onto one page
# and a handful of I-cache lines; `mao --tune --tune-layout-axis` finds
# the move and wins by a wide simulated-cycle margin.
	.text
	.globl	bench_main
	.type	bench_main, @function
bench_main:
	movl	$600, %r10d
	xorl	%eax, %eax
.Lloop:
	call	f0
	call	f1
	call	f2
	call	f3
	call	f4
	call	f5
	call	f6
	call	f7
	call	f8
	call	f9
	call	f10
	call	f11
	call	f12
	call	f13
	call	f14
	call	f15
	subl	$1, %r10d
	jne	.Lloop
	movl	$0, %eax
	ret
	.size	bench_main, .-bench_main

	.type	cold0, @function
cold0:
	ret
	.p2align	12
	.size	cold0, .-cold0
	.type	f0, @function
f0:
	addl	$1, %eax
	ret
	.size	f0, .-f0

	.type	cold1, @function
cold1:
	ret
	.p2align	12
	.size	cold1, .-cold1
	.type	f1, @function
f1:
	addl	$2, %eax
	ret
	.size	f1, .-f1

	.type	cold2, @function
cold2:
	ret
	.p2align	12
	.size	cold2, .-cold2
	.type	f2, @function
f2:
	addl	$3, %eax
	ret
	.size	f2, .-f2

	.type	cold3, @function
cold3:
	ret
	.p2align	12
	.size	cold3, .-cold3
	.type	f3, @function
f3:
	addl	$4, %eax
	ret
	.size	f3, .-f3

	.type	cold4, @function
cold4:
	ret
	.p2align	12
	.size	cold4, .-cold4
	.type	f4, @function
f4:
	addl	$5, %eax
	ret
	.size	f4, .-f4

	.type	cold5, @function
cold5:
	ret
	.p2align	12
	.size	cold5, .-cold5
	.type	f5, @function
f5:
	addl	$6, %eax
	ret
	.size	f5, .-f5

	.type	cold6, @function
cold6:
	ret
	.p2align	12
	.size	cold6, .-cold6
	.type	f6, @function
f6:
	addl	$7, %eax
	ret
	.size	f6, .-f6

	.type	cold7, @function
cold7:
	ret
	.p2align	12
	.size	cold7, .-cold7
	.type	f7, @function
f7:
	addl	$8, %eax
	ret
	.size	f7, .-f7

	.type	cold8, @function
cold8:
	ret
	.p2align	12
	.size	cold8, .-cold8
	.type	f8, @function
f8:
	addl	$9, %eax
	ret
	.size	f8, .-f8

	.type	cold9, @function
cold9:
	ret
	.p2align	12
	.size	cold9, .-cold9
	.type	f9, @function
f9:
	addl	$10, %eax
	ret
	.size	f9, .-f9

	.type	cold10, @function
cold10:
	ret
	.p2align	12
	.size	cold10, .-cold10
	.type	f10, @function
f10:
	addl	$11, %eax
	ret
	.size	f10, .-f10

	.type	cold11, @function
cold11:
	ret
	.p2align	12
	.size	cold11, .-cold11
	.type	f11, @function
f11:
	addl	$12, %eax
	ret
	.size	f11, .-f11

	.type	cold12, @function
cold12:
	ret
	.p2align	12
	.size	cold12, .-cold12
	.type	f12, @function
f12:
	addl	$13, %eax
	ret
	.size	f12, .-f12

	.type	cold13, @function
cold13:
	ret
	.p2align	12
	.size	cold13, .-cold13
	.type	f13, @function
f13:
	addl	$14, %eax
	ret
	.size	f13, .-f13

	.type	cold14, @function
cold14:
	ret
	.p2align	12
	.size	cold14, .-cold14
	.type	f14, @function
f14:
	addl	$15, %eax
	ret
	.size	f14, .-f14

	.type	cold15, @function
cold15:
	ret
	.p2align	12
	.size	cold15, .-cold15
	.type	f15, @function
f15:
	addl	$16, %eax
	ret
	.size	f15, .-f15
