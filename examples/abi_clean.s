# ABI-clean companion to abi_demo.s: every function conforms to the System
# V AMD64 ABI, so `mao --lint` reports zero findings — but only because the
# interprocedural summaries prove it. Under --lint-no-interproc (the
# clobber-everything call model) clean_args lights up with arg-undefined
# false positives: the first call is assumed to destroy every argument
# register and the second to read them all. The delta is pinned by
# scripts/lint_examples.sh as the false-positive-reduction check.

	.text
	.globl	ok_leaf
	.type	ok_leaf, @function
ok_leaf:
	movq	%rdi, %rax
	addq	$1, %rax
	ret
	.size	ok_leaf, .-ok_leaf

	.globl	ok_save
	.type	ok_save, @function
ok_save:
	pushq	%rbx
	movq	%rdi, %rbx
	call	ok_leaf
	addq	%rbx, %rax
	popq	%rbx
	ret
	.size	ok_save, .-ok_save

	.globl	ok_redzone_leaf
	.type	ok_redzone_leaf, @function
ok_redzone_leaf:
	movq	%rdi, -8(%rsp)
	movq	-8(%rsp), %rax
	ret
	.size	ok_redzone_leaf, .-ok_redzone_leaf

	.globl	clean_args
	.type	clean_args, @function
clean_args:
	pushq	%rbp
	movq	%rsp, %rbp
	movq	$1, %rdi
	call	ok_leaf
	call	ok_leaf
	popq	%rbp
	ret
	.size	clean_args, .-clean_args
