# A bucket-sensitive branch pair (the 252.eon shape): an 8-byte loop
# straddling offset 16 baits LOOP16 into aligning it, but the 5 bytes of
# padding slide the never-taken guard branch into the same PC>>5 predictor
# bucket as a taken-trained back branch — the default pipeline makes this
# code SLOWER. `mao --tune` discovers that disabling LOOP16 here beats the
# default, reproducing the paper's observation that a fixed heuristic
# pipeline cannot be right for every program.
	.text
	.globl bench_main
	.type bench_main, @function
bench_main:
	pushq %rbp
	movq %rsp, %rbp
	xorl %eax, %eax
	xorl %ebx, %ebx
	movl $7, %r14d
	movl $400, %r15d
	.p2align 5
	nop6
.LOuter:
	movl $2, %ecx
.LSplit:
	addl $1, %eax
	subl $1, %ecx
	jne .LSplit
	movl $8, %ecx
.LInner:
	addl $1, %ebx
	subl $1, %ecx
	jne .LInner
	cmpl $0, %r14d
	je .LNever
	nop15
	nop11
	subl $1, %r15d
	jne .LOuter
	jmp .LDone
.LNever:
	addl $7, %eax
	jmp .LDone
.LDone:
	movl $0, %eax
	leave
	ret
	.size bench_main, .-bench_main
