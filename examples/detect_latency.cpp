//===- examples/detect_latency.cpp - Fig. 6 as a library client ---------------===//
//
// The paper's Fig. 6 program, in this reproduction's C++ API instead of
// the original Python: build a CYCLE dependence chain with the
// InstructionSequence class, wrap it in a straight-line loop, execute it
// in isolation collecting CPU_CYCLES, and divide to get the latency.
//
// Usage: ./build/examples/detect_latency
//
//===----------------------------------------------------------------------===//

#include "detect/Detect.h"

#include <cstdio>

using namespace mao;

/// Fig. 6, line for line: form a loop with a cycle of instructions, one
/// dependent on the other; execute the chain, collect CPU cycles, and
/// obtain the latency.
static unsigned instructionLatency(const DetectProcessor &Proc,
                                   const InstructionTemplate &Template) {
  RandomSource Rng(1);
  InstructionSequence Seq(Proc);
  Seq.setInstructionTemplate(Template);
  Seq.setDagType(DagType::Cycle);
  Seq.setLength(16);
  Seq.generate(Rng);

  LoopSpec Loop;
  Loop.Sequences.push_back(Seq);
  Loop.TripCount = 10000;

  DetectBenchmark Bench({Loop});
  auto Results = Bench.execute(Proc, {DetectProcessor::CpuCycles});
  if (!Results.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 Results.message().c_str());
    return 0;
  }
  const uint64_t InsnsInLoop = 16ull * Loop.TripCount;
  const double Latency =
      static_cast<double>((*Results)[DetectProcessor::CpuCycles]) /
      static_cast<double>(InsnsInLoop);
  return static_cast<unsigned>(Latency + 0.5);
}

int main() {
  DetectProcessor Core2(ProcessorConfig::core2());

  struct Row {
    const char *Name;
    InstructionTemplate Template;
  } Rows[] = {
      {"addl %s, %d", InstructionTemplate::add()},
      {"movl %s, %d", InstructionTemplate::mov()},
      {"xorl %s, %d", InstructionTemplate::xorTemplate()},
      {"imull $3, %s, %d", InstructionTemplate::imul()},
  };
  std::printf("instruction latencies on the core2 model (Fig. 6 method):\n");
  for (const Row &R : Rows)
    std::printf("  %-18s %u cycle(s)\n", R.Name,
                instructionLatency(Core2, R.Template));

  // The framework generalizes beyond latency: recover structural
  // parameters the same way (Sec. IV's "automatic discovery" ambition).
  std::printf("\nstructural parameters, discovered black-box:\n");
  auto Line = detectDecodeLineBytes(Core2);
  auto Lsd = detectLsdMaxLines(Core2);
  auto Shift = detectPredictorIndexShift(Core2);
  if (Line.ok())
    std::printf("  decode line size:       %u bytes\n", *Line);
  if (Lsd.ok())
    std::printf("  LSD capacity:           %u decode lines\n", *Lsd);
  if (Shift.ok())
    std::printf("  predictor index:        PC >> %u\n", *Shift);
  return 0;
}
