# The Fig. 1 181.mcf loop (unrolled twice) WITHOUT the strategic NOP: the
# loop back branch and the never-taken guard share a PC>>5 predictor
# bucket on the Core-2 model. The default pipeline does not fix this;
# `mao --tune` finds the directed NOP insertion (NOPIN at=N,pad=1) that
# moves the back branch into the next bucket — the paper's 5% cliff.
	.text
	.globl bench_main
	.type bench_main, @function
bench_main:
	pushq %rbp
	movq %rsp, %rbp
	movq $0x300000, %rdi
	movq $0x340000, %rsi
	xorq %r8, %r8
	movl $600, %r9d
	xorl %r10d, %r10d
	.p2align 5
	nop12
.L3:
	movsbl 1(%rdi,%r8,4), %edx
	movsbl (%rdi,%r8,4), %eax
	addl %eax, %edx
	movl %edx, (%rsi,%r8,4)
	addq $1, %r8
	cmpl $1, %r10d
	je .LEXIT
.L5:
	movsbl 1(%rdi,%r8,4), %edx
	movsbl (%rdi,%r8,4), %eax
	addl %eax, %edx
	movl %edx, (%rsi,%r8,4)
	addq $1, %r8
	cmpl %r8d, %r9d
	jg .L3
.LEXIT:
	movl $0, %eax
	leave
	ret
	.size bench_main, .-bench_main
