//===- examples/nop_experiment.cpp - A Nopinizer experiment campaign ----------===//
//
// Paper Sec. III-E-i: the Nopinizer inserts random NOP sequences ("a
// random number seed can be specified to produce repeatable experiments")
// to shift code around and expose micro-architectural cliffs. The authors
// found a mysterious 4% opportunity in compression code this way.
//
// This example runs such a campaign: many seeds over one workload,
// reporting the distribution of outcomes and the best/worst layouts found
// — blind optimization in the style the paper cites from Knights/Diwan.
//
// Usage: ./build/examples/nop_experiment [benchmark] [num_seeds]
//
//===----------------------------------------------------------------------===//

#include "asm/Parser.h"
#include "pass/MaoPass.h"
#include "uarch/Runner.h"
#include "workload/Workload.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace mao;

int main(int Argc, char **Argv) {
  linkAllPasses();
  const std::string Benchmark = Argc > 1 ? Argv[1] : "256.bzip2";
  const unsigned Seeds = Argc > 2 ? static_cast<unsigned>(atoi(Argv[2])) : 16;

  const WorkloadSpec *Spec = findBenchmarkProfile(Benchmark);
  if (!Spec) {
    std::fprintf(stderr, "unknown benchmark: %s\n", Benchmark.c_str());
    return 1;
  }
  const std::string Asm = generateWorkloadAssembly(*Spec);

  MeasureOptions Options;
  Options.Config = ProcessorConfig::core2();

  auto BaseUnit = parseAssembly(Asm);
  auto Base = measureFunction(*BaseUnit, "bench_main", Options);
  if (!Base.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n", Base.message().c_str());
    return 1;
  }
  const uint64_t BaseCycles = Base->Pmu.CpuCycles;
  std::printf("%s baseline: %llu cycles\n", Benchmark.c_str(),
              (unsigned long long)BaseCycles);

  std::vector<std::pair<double, unsigned>> Outcomes;
  for (unsigned Seed = 1; Seed <= Seeds; ++Seed) {
    auto Unit = parseAssembly(Asm);
    std::vector<PassRequest> Requests;
    if (parseMaoOption("NOPIN=seed[" + std::to_string(Seed) + "],density[8]",
                       Requests))
      continue;
    PipelineResult PR = runPasses(*Unit, Requests);
    if (!PR.Ok)
      continue;
    auto R = measureFunction(*Unit, "bench_main", Options);
    if (!R.ok())
      continue;
    double Delta = 100.0 *
                   (static_cast<double>(BaseCycles) -
                    static_cast<double>(R->Pmu.CpuCycles)) /
                   static_cast<double>(BaseCycles);
    Outcomes.emplace_back(Delta, Seed);
    std::printf("  seed %3u: %+.2f%%\n", Seed, Delta);
  }
  if (Outcomes.empty())
    return 1;
  std::sort(Outcomes.begin(), Outcomes.end());
  std::printf("\nworst layout: seed %u (%+.2f%%), best layout: seed %u "
              "(%+.2f%%)\n",
              Outcomes.front().second, Outcomes.front().first,
              Outcomes.back().second, Outcomes.back().first);
  std::printf("The spread is the 'perceived unwanted randomness' of the "
              "paper's abstract:\nidentical semantics, different layout, "
              "different performance.\n");
  return 0;
}
