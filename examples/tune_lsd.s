# The Figs. 4/5 Loop-Stream-Detector loop: three blocks, ~60 bytes,
# deliberately placed at offset 15 so it spans six decode lines instead of
# four. The default pipeline's LSDOPT(maxlines=4) recovers some of the
# loss; `mao --tune` searches the alignment/padding knobs jointly and finds
# a strictly better placement for this layout.
	.text
	.globl bench_main
	.type bench_main, @function
bench_main:
	pushq %rbp
	movq %rsp, %rbp
	movl $600, %r10d
	movl $0, %r8d
	movl $1, %ecx
	movl $2, %edx
	.p2align 4
	nop15
.L0:
	cmpl %ecx, %edx
	jne .L1
	addl $3, %r9d
	jmp .L1
.L1:
	addl $7, %r9d
	movl %ecx, %edx
	addl $1, %esi
	addl $2, %edi
	addl $3, %r11d
	addl $4, %esi
	addl $5, %edi
	addl $6, %r11d
	addl $7, %esi
	jmp .L2
.L2:
	addl $1, %r10d
	addl $9, %r8d
	addl $1, %esi
	subl $2, %r10d
	jne .L0
	movl $0, %eax
	leave
	ret
	.size bench_main, .-bench_main
