# Cold-block layout kernel for the BBREORDER pass. The hot loop would fit
# comfortably in the Loop Stream Detector (two 16-byte decode lines), but a
# dead error-handling block parked in the middle of the loop extent
# inflates the back-branch span past the LSD's four-line limit, so every
# iteration pays the fetch/decode path and its taken-branch bubbles.
# BBREORDER splices the never-executed block behind the function's ret;
# the loop then spans two lines, streams from the LSD after the warm-up
# iterations, and drops a large fraction of its simulated cycles.
	.text
	.globl	bench_main
	.type	bench_main, @function
bench_main:
	movl	$600, %r10d
	xorl	%eax, %eax
	xorl	%edx, %edx
	xorl	%esi, %esi
	.p2align	4
.L0:
	addl	$1, %eax
	addl	$2, %edx
	jmp	.L2
.Lcold:
	addl	$1000, %r9d
	addl	$1001, %r9d
	addl	$1002, %r9d
	addl	$1003, %r9d
	addl	$1004, %r9d
	addl	$1005, %r9d
	addl	$1006, %r9d
	addl	$1007, %r9d
	jmp	.L2
.L2:
	addl	$3, %esi
	subl	$1, %r10d
	jne	.L0
	movl	$0, %eax
	ret
	.size	bench_main, .-bench_main
