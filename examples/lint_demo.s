# A deliberately smelly input exercising the MaoCheck linter rules:
#   - %r10 is read before any definition (not an argument register),
#   - the flags of the final test are dead (nothing consumes them),
#   - .Ldead is unreachable (no predecessor, not label/NOP-only),
#   - the call site is misaligned (no odd push/sub before the call),
#   - %rax is read at full width right after a byte-wide write (partial
#     register stall), and the byte write itself carries a false
#     dependency on the old %rax value,
#   - the indirect jump target is unresolved (no reaching jump table).
# `mao --lint examples/lint_demo.s` exits 1 and reports each finding;
# adding --mao-sarif=FILE writes them as a SARIF 2.1.0 log.
	.text
	.globl	smelly
	.type	smelly, @function
smelly:
	movq	%r10, %rcx
	call	helper
	movb	$1, %al
	movq	%rax, %rdx
	testq	%rdx, %rdx
	ret
.Ldead:
	addq	$1, %rcx
	ret
	.size	smelly, .-smelly

	.globl	dispatch
	.type	dispatch, @function
dispatch:
	jmp	*%rdi
	.size	dispatch, .-dispatch

	.globl	helper
	.type	helper, @function
helper:
	movq	$0, %rax
	ret
	.size	helper, .-helper
