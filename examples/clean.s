# A lint-clean function pair: ABI-conformant argument use, an aligned call
# site, flags written only where they are consumed, and no unreachable or
# partially-written registers. `mao --lint examples/clean.s` exits 0.
	.text
	.globl	sum_clamped
	.type	sum_clamped, @function
sum_clamped:
	pushq	%rbp
	movq	%rsp, %rbp
	movq	%rdi, %rax
	addq	%rsi, %rax
	jo	.Loverflow
	popq	%rbp
	ret
.Loverflow:
	call	saturate
	popq	%rbp
	ret
	.size	sum_clamped, .-sum_clamped

	.globl	saturate
	.type	saturate, @function
saturate:
	movq	$0x7fffffffffffffff, %rax
	ret
	.size	saturate, .-saturate
