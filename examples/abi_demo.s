# ABI conformance demo: every function below `helper_*` seeds exactly one
# class of interprocedural finding for `mao --lint` (the counts are pinned
# by scripts/lint_examples.sh — update both together):
#
#   bad_clobber  -> lint-callee-saved-clobbered (writes %rbx, never saves)
#   bad_stack    -> lint-unbalanced-stack       (push reaches ret unpopped)
#   bad_redzone  -> lint-red-zone-nonleaf       (red-zone store, then calls)
#   bad_scratch  -> lint-use-before-def         (reads %r10 after a call to
#                   a callee whose summary proves %r10 untouched; invisible
#                   to the clobber-everything call model)
#   bad_args     -> lint-dead-arg-write + lint-arg-undefined (writes %rdi
#                   for a callee that never reads it, then calls a reader
#                   of %rdi while it holds a clobbered value)

	.text
	.globl	helper_leaf
	.type	helper_leaf, @function
helper_leaf:
	movq	%rdi, %rax
	addq	$1, %rax
	ret
	.size	helper_leaf, .-helper_leaf

	.globl	helper_clobber_args
	.type	helper_clobber_args, @function
helper_clobber_args:
	movq	$0, %rdi
	movq	$0, %rax
	ret
	.size	helper_clobber_args, .-helper_clobber_args

	.globl	bad_clobber
	.type	bad_clobber, @function
bad_clobber:
	movq	$5, %rbx
	movq	%rbx, %rax
	ret
	.size	bad_clobber, .-bad_clobber

	.globl	bad_stack
	.type	bad_stack, @function
bad_stack:
	pushq	%rax
	movq	$0, %rax
	ret
	.size	bad_stack, .-bad_stack

	.globl	bad_redzone
	.type	bad_redzone, @function
bad_redzone:
	pushq	%rbp
	movq	%rsp, %rbp
	movq	$1, -8(%rsp)
	call	helper_leaf
	popq	%rbp
	ret
	.size	bad_redzone, .-bad_redzone

	.globl	bad_scratch
	.type	bad_scratch, @function
bad_scratch:
	pushq	%rbp
	movq	%rsp, %rbp
	call	helper_leaf
	movq	%r10, %rax
	popq	%rbp
	ret
	.size	bad_scratch, .-bad_scratch

	.globl	bad_args
	.type	bad_args, @function
bad_args:
	pushq	%rbp
	movq	%rsp, %rbp
	movq	$3, %rdi
	call	helper_clobber_args
	call	helper_leaf
	popq	%rbp
	ret
	.size	bad_args, .-bad_args
