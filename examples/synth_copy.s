# Compiler-style redundancy for the rule synthesizer (`mao --synth`,
# maosynth): a hot loop whose body carries a copy that is immediately
# copied back, a duplicated register move, and an add of zero — shapes a
# careless spiller or macro expansion leaves behind. The synthesis loop
# harvests these windows, proves the shorter replacements equivalent
# (flags-aware), and emits them as Window rules; scripts/synth_examples.sh
# pins the strict simulated-cycle win on this file.
	.text
	.globl bench_main
	.type bench_main, @function
bench_main:
	movq $600, %r9
	movq $7, %rax
	movq $11, %rdx
.Lloop:
	# Copy out, copy straight back: the back-copy is dead.
	movq %rax, %rcx
	movq %rcx, %rax
	# The same move twice in a row.
	movq %rdx, %rsi
	movq %rdx, %rsi
	# An add of zero: pure flag noise, and the flags die right here.
	addq $0, %rsi
	addq %rsi, %rax
	subq $1, %r9
	jne .Lloop
	movq $0, %rax
	ret
	.size bench_main, .-bench_main
